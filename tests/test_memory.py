"""Unit tests for the sparse paged memory."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryAccessError
from repro.rv64.memory import Memory, PAGE_SIZE


class TestByteAccess:
    def test_default_zero(self):
        mem = Memory()
        assert mem.load_u8(0x1234) == 0
        assert mem.load_u64(0x8000) == 0

    def test_store_load_u8(self):
        mem = Memory()
        mem.store_u8(10, 0xAB)
        assert mem.load_u8(10) == 0xAB

    def test_little_endian(self):
        mem = Memory()
        mem.store_u32(0x100, 0x11223344)
        assert mem.load_u8(0x100) == 0x44
        assert mem.load_u8(0x103) == 0x11

    def test_cross_page_write(self):
        mem = Memory()
        base = PAGE_SIZE - 4
        mem.write_bytes(base, bytes(range(8)))
        assert mem.read_bytes(base, 8) == bytes(range(8))

    def test_truncation(self):
        mem = Memory()
        mem.store_u8(0, 0x1FF)
        assert mem.load_u8(0) == 0xFF


class TestAlignment:
    def test_misaligned_raises(self):
        mem = Memory()
        with pytest.raises(MemoryAccessError):
            mem.load_u64(4)
        with pytest.raises(MemoryAccessError):
            mem.store_u32(2, 0)

    def test_misaligned_allowed_when_relaxed(self):
        mem = Memory(enforce_alignment=False)
        mem.store_u64(4, 0x1122334455667788)
        assert mem.load_u64(4) == 0x1122334455667788

    def test_address_bounds(self):
        mem = Memory()
        with pytest.raises(MemoryAccessError):
            mem.load(-8, 8)
        with pytest.raises(MemoryAccessError):
            mem.load((1 << 64) - 4, 8)


class TestSignedLoads:
    def test_signed_byte(self):
        mem = Memory()
        mem.store_u8(0, 0x80)
        assert mem.load(0, 1, signed=True) == -128

    def test_signed_word(self):
        mem = Memory()
        mem.store_u32(0, 0xFFFFFFFF)
        assert mem.load(0, 4, signed=True) == -1


class TestWordHelpers:
    def test_store_load_words(self):
        mem = Memory()
        words = [1, 2, 3, (1 << 64) - 1]
        mem.store_words(0x1000, words)
        assert mem.load_words(0x1000, 4) == words

    def test_mpi_roundtrip(self):
        mem = Memory()
        value = 0x0123456789ABCDEF_FEDCBA9876543210
        mem.store_mpi(0x2000, value, 4)
        assert mem.load_mpi(0x2000, 4) == value

    def test_mpi_overflow_raises(self):
        mem = Memory()
        with pytest.raises(MemoryAccessError):
            mem.store_mpi(0, 1 << 64, 1)

    def test_mpi_negative_raises(self):
        mem = Memory()
        with pytest.raises(MemoryAccessError):
            mem.store_mpi(0, -1, 1)

    @given(st.integers(min_value=0, max_value=(1 << 512) - 1))
    def test_mpi_any_512(self, value):
        mem = Memory()
        mem.store_mpi(0x4000, value, 8)
        assert mem.load_mpi(0x4000, 8) == value


class TestBookkeeping:
    def test_touched_pages(self):
        mem = Memory()
        assert mem.touched_pages == 0
        mem.store_u8(0, 1)
        mem.store_u8(PAGE_SIZE * 10, 1)
        assert mem.touched_pages == 2

    def test_clear(self):
        mem = Memory()
        mem.store_u64(0, 7)
        mem.clear()
        assert mem.touched_pages == 0
        assert mem.load_u64(0) == 0
