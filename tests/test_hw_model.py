"""Tests for the hardware area model (Table 3)."""

from __future__ import annotations

import pytest

from repro.eval.paperdata import PAPER_TABLE3
from repro.hw.components import (
    AreaCost,
    adder,
    barrel_shifter,
    control,
    multiplier,
    mux,
    register,
)
from repro.hw.core_model import BASE_CORE, ROCKET_BLOCKS
from repro.hw.xmul import (
    FULL_RADIX_CORE,
    REDUCED_RADIX_CORE,
    full_radix_parts,
    reduced_radix_parts,
)


class TestComponents:
    def test_area_addition(self):
        total = adder(64) + register(64)
        assert total.luts == 64
        assert total.regs == 64

    def test_scaling(self):
        assert adder(64).scaled(2).gates == 2 * adder(64).gates

    def test_mux_tree_grows_with_ways(self):
        assert mux(64, 4).luts > mux(64, 2).luts
        assert mux(64, 1).luts == 0

    def test_barrel_shifter_is_log_stages(self):
        assert barrel_shifter(64).luts == mux(64, 2).luts * 6

    def test_multiplier_dsps(self):
        assert multiplier(64).dsps == 16  # matches the Rocket baseline

    def test_control_small(self):
        assert control(6).luts < adder(64).luts


class TestBaseCore:
    def test_blocks_sum_to_paper_baseline(self):
        total = BASE_CORE.total_area
        paper = PAPER_TABLE3["base"]
        assert (total.luts, total.regs, total.dsps, total.gates) == paper

    def test_fpu_is_largest_block(self):
        fpu = next(b for b in ROCKET_BLOCKS if b.name == "fpu")
        assert all(b.area.luts <= fpu.area.luts for b in ROCKET_BLOCKS)

    def test_no_extension(self):
        assert BASE_CORE.extension is None
        assert BASE_CORE.overhead_percent()["luts"] == 0.0


class TestExtendedCores:
    @pytest.mark.parametrize("core,key", [
        (FULL_RADIX_CORE, "full"),
        (REDUCED_RADIX_CORE, "reduced"),
    ])
    def test_within_tolerance_of_paper(self, core, key):
        got = core.total_area
        want = PAPER_TABLE3[key]
        for got_value, want_value in zip(
            (got.luts, got.regs, got.dsps, got.gates), want
        ):
            if want_value:
                assert abs(got_value - want_value) / want_value < 0.12

    def test_no_extra_dsps(self):
        """The paper: XMUL extends the existing multiplier; DSP count
        stays at 16 for both variants."""
        base = BASE_CORE.total_area.dsps
        assert FULL_RADIX_CORE.total_area.dsps == base
        assert REDUCED_RADIX_CORE.total_area.dsps == base

    def test_reduced_needs_more_luts_fewer_regs(self):
        """Table 3 orderings: reduced-radix costs more LUTs (shifters,
        masks) but fewer registers than full-radix."""
        full = FULL_RADIX_CORE.total_area
        reduced = REDUCED_RADIX_CORE.total_area
        assert reduced.luts > full.luts
        assert reduced.regs < full.regs

    def test_overhead_is_about_ten_percent(self):
        """The abstract's headline: ~10% hardware overhead."""
        for core in (FULL_RADIX_CORE, REDUCED_RADIX_CORE):
            pct = core.overhead_percent()
            assert 2 < pct["luts"] < 12
            assert 5 < pct["regs"] < 13
            assert pct["dsps"] == 0

    def test_parts_enumerate_structures(self):
        names_full = {part.name for part in full_radix_parts()}
        assert any("cadd" in n for n in names_full)
        assert any("accumulate adder" in n for n in names_full)
        names_reduced = {part.name for part in reduced_radix_parts()}
        assert any("sraiadd" in n for n in names_reduced)
        assert any("mask" in n for n in names_reduced)

    def test_common_r4_infrastructure_shared(self):
        full_names = {p.name for p in full_radix_parts()}
        reduced_names = {p.name for p in reduced_radix_parts()}
        shared = full_names & reduced_names
        assert "rs3 input register" in shared
        assert "decoder modifications" in shared


class TestAreaCostInvariants:
    def test_rounded(self):
        area = AreaCost(1.4, 2.6, 0.0, 10.5)
        rounded = area.rounded()
        assert (rounded.luts, rounded.regs) == (1, 3)
