"""Tests for the reference MPI algorithms (multiplication, add/sub)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.mpi.arithmetic import (
    compare,
    karatsuba_mul,
    mpi_add,
    mpi_add_delayed,
    mpi_sub,
    operand_scanning_mul,
    product_scanning_mul,
    product_scanning_sqr,
)
from repro.mpi.representation import (
    CSIDH512_FULL,
    CSIDH512_REDUCED,
    Radix,
)

V512 = st.integers(min_value=0, max_value=(1 << 511) - 1)
RADICES = [CSIDH512_FULL, CSIDH512_REDUCED, Radix(30, 5), Radix(16, 3)]


@pytest.fixture(params=RADICES, ids=lambda r: r.name or f"{r.bits}b")
def radix(request):
    return request.param


class TestMultiplication:
    @settings(max_examples=20)
    @given(data=st.data())
    def test_all_multipliers_agree_with_python(self, radix, data):
        bound = 1 << radix.capacity_bits
        a = data.draw(st.integers(0, bound - 1))
        b = data.draw(st.integers(0, bound - 1))
        la, lb = radix.to_limbs(a), radix.to_limbs(b)
        for fn in (product_scanning_mul, operand_scanning_mul,
                   karatsuba_mul):
            result = fn(radix, la, lb)
            assert radix.from_limbs(result.limbs) == a * b, fn.__name__
            assert len(result.limbs) == 2 * radix.limbs
            assert radix.is_canonical(result.limbs)

    @settings(max_examples=20)
    @given(data=st.data())
    def test_squaring_matches_multiplication(self, radix, data):
        a = data.draw(st.integers(0, (1 << radix.capacity_bits) - 1))
        la = radix.to_limbs(a)
        assert radix.from_limbs(
            product_scanning_sqr(radix, la).limbs) == a * a

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            product_scanning_mul(CSIDH512_FULL, [1] * 8, [1] * 7)

    def test_zero_and_one(self, radix):
        zeros = [0] * radix.limbs
        one = radix.to_limbs(1)
        assert radix.from_limbs(
            product_scanning_mul(radix, zeros, one).limbs) == 0
        assert radix.from_limbs(
            product_scanning_mul(radix, one, one).limbs) == 1

    def test_max_operands(self, radix):
        top = (1 << radix.capacity_bits) - 1
        limbs = radix.to_limbs(top)
        assert radix.from_limbs(
            product_scanning_mul(radix, limbs, limbs).limbs) == top * top


class TestWorkCounts:
    def test_product_scanning_mac_count(self):
        l = CSIDH512_FULL.limbs
        one = CSIDH512_FULL.to_limbs(1)
        work = product_scanning_mul(CSIDH512_FULL, one, one).work
        assert work.macs == l * l  # 64 for CSIDH-512 full radix

    def test_squaring_mac_count_is_triangular(self):
        l = CSIDH512_FULL.limbs
        one = CSIDH512_FULL.to_limbs(1)
        work = product_scanning_sqr(CSIDH512_FULL, one).work
        assert work.macs == l * (l + 1) // 2

    def test_karatsuba_fewer_macs_more_adds(self):
        """The paper's E4 tradeoff: Karatsuba trades MACs for carried
        additions, which is a bad deal on carry-less RV64GC."""
        one = CSIDH512_FULL.to_limbs(1)
        ps = product_scanning_mul(CSIDH512_FULL, one, one).work
        ka = karatsuba_mul(CSIDH512_FULL, one, one).work
        assert ka.macs < ps.macs
        assert ka.word_adds > ps.word_adds

    def test_reduced_radix_needs_more_macs(self):
        """More limbs -> quadratically more MACs (Sect. 3.1)."""
        full_one = CSIDH512_FULL.to_limbs(1)
        red_one = CSIDH512_REDUCED.to_limbs(1)
        full = product_scanning_mul(CSIDH512_FULL, full_one, full_one)
        red = product_scanning_mul(CSIDH512_REDUCED, red_one, red_one)
        assert red.work.macs == 81 > full.work.macs == 64


class TestAddSub:
    @settings(max_examples=20)
    @given(data=st.data())
    def test_add_with_carry(self, radix, data):
        bound = 1 << radix.capacity_bits
        a, b = (data.draw(st.integers(0, bound - 1)) for _ in range(2))
        result = mpi_add(radix, radix.to_limbs(a), radix.to_limbs(b))
        assert radix.from_limbs(result.limbs) == a + b

    @settings(max_examples=20)
    @given(data=st.data())
    def test_sub_with_borrow(self, radix, data):
        bound = 1 << radix.capacity_bits
        a, b = (data.draw(st.integers(0, bound - 1)) for _ in range(2))
        result = mpi_sub(radix, radix.to_limbs(a), radix.to_limbs(b))
        assert radix.from_limbs(result.limbs) == a - b

    def test_delayed_add_keeps_limb_sums(self):
        radix = CSIDH512_REDUCED
        a = (1 << 500) - 1
        b = (1 << 450) + 12345
        result = mpi_add_delayed(radix, radix.to_limbs(a),
                                 radix.to_limbs(b))
        assert radix.from_limbs(result.limbs) == a + b
        # limbs may be non-canonical -- that's the point
        assert any(limb > radix.mask for limb in result.limbs) or True

    def test_delayed_add_requires_headroom(self):
        with pytest.raises(ParameterError):
            mpi_add_delayed(CSIDH512_FULL, [1] * 8, [1] * 8)

    def test_compare(self):
        radix = CSIDH512_FULL
        small, big = radix.to_limbs(5), radix.to_limbs(6)
        assert compare(radix, small, big) == -1
        assert compare(radix, big, small) == 1
        assert compare(radix, big, big) == 0
