"""Unit + property tests for the six custom instructions (Figures 1-3).

Each instruction is checked twice: the pure semantic function against an
arbitrary-precision oracle, and the simulator execution against the pure
function — so the paper's definitions, our semantics and the machine all
agree.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.ise import (
    MASK57,
    REDUCED_RADIX_BITS,
    cadd_value,
    madd57hu_value,
    madd57lu_value,
    maddhu_value,
    maddlu_value,
    msa2,
    sraiadd_value,
)
from repro.rv64.bits import MASK64, s64, u64
from tests.helpers import run_asm

U64 = st.integers(min_value=0, max_value=MASK64)
U57 = st.integers(min_value=0, max_value=MASK57)


class TestPureSemantics:
    @given(U64, U64, U64)
    def test_maddlu_oracle(self, x, y, z):
        assert maddlu_value(x, y, z) == (x * y + z) & MASK64

    @given(U64, U64, U64)
    def test_maddhu_oracle(self, x, y, z):
        assert maddhu_value(x, y, z) == ((x * y + z) >> 64) & MASK64

    @given(U64, U64, U64)
    def test_madd_pair_recomposes_product_plus_addend(self, x, y, z):
        lo = maddlu_value(x, y, z)
        hi = maddhu_value(x, y, z)
        assert (hi << 64) | lo == x * y + z

    @given(U64, U64, U64)
    def test_madd57lu_oracle(self, x, y, z):
        assert madd57lu_value(x, y, z) == u64(((x * y) & MASK57) + z)

    @given(U64, U64, U64)
    def test_madd57hu_oracle(self, x, y, z):
        assert madd57hu_value(x, y, z) == u64(((x * y) >> 57) + z)

    @given(U57, U57)
    def test_madd57_pair_recomposes_product(self, x, y):
        lo = madd57lu_value(x, y, 0)
        hi = madd57hu_value(x, y, 0)
        assert (hi << REDUCED_RADIX_BITS) + lo == x * y

    @given(U64, U64, U64)
    def test_cadd_oracle(self, x, y, z):
        carry = 1 if x + y > MASK64 else 0
        assert cadd_value(x, y, z) == u64(carry + z)

    @given(U64, U64, st.integers(0, 63))
    def test_sraiadd_oracle(self, x, y, imm):
        assert sraiadd_value(x, y, imm) == u64(x + (s64(y) >> imm))

    @given(U64, U64, st.integers(0, 63), U64, U64)
    def test_msa2_general_form(self, x, y, j, m, z):
        assert msa2(x, y, j, m, z) == u64((((x * y) >> j) & m) + z)

    @given(U64, U64, U64)
    def test_madd57_instances_of_msa2(self, x, y, z):
        assert madd57lu_value(x, y, z) == msa2(x, y, 0, MASK57, z)
        assert madd57hu_value(x, y, z) == msa2(
            x, y, REDUCED_RADIX_BITS, MASK64, z)


class TestSaturationProblem:
    """The paper's motivation for a full 64-bit multiplier (Sect. 3.2):
    oversized (delayed-carry) limbs must still multiply correctly."""

    @given(
        st.integers(min_value=0, max_value=(1 << 58) - 1),  # 58-bit limb
        st.integers(min_value=0, max_value=(1 << 58) - 1),
    )
    def test_oversized_limbs_do_not_saturate(self, x, y):
        lo = madd57lu_value(x, y, 0)
        hi = madd57hu_value(x, y, 0)
        assert (hi << 57) + lo == x * y  # no truncation of inputs

    def test_doubled_limb_squaring_trick(self):
        # 2*a_i fits the multiplier: the reduced-radix squaring uses it
        a = MASK57
        doubled = 2 * a
        assert madd57hu_value(doubled, a, 0) == (doubled * a) >> 57


class TestSimulatorAgreement:
    @given(U64, U64, U64)
    def test_maddlu_maddhu_on_machine(self, x, y, z):
        machine = run_asm(
            "maddlu a0, a1, a2, a3\nmaddhu a4, a1, a2, a3",
            {"a1": x, "a2": y, "a3": z})
        assert machine.regs["a0"] == maddlu_value(x, y, z)
        assert machine.regs["a4"] == maddhu_value(x, y, z)

    @given(U64, U64, U64)
    def test_madd57_on_machine(self, x, y, z):
        machine = run_asm(
            "madd57lu a0, a1, a2, a3\nmadd57hu a4, a1, a2, a3",
            {"a1": x, "a2": y, "a3": z})
        assert machine.regs["a0"] == madd57lu_value(x, y, z)
        assert machine.regs["a4"] == madd57hu_value(x, y, z)

    @given(U64, U64, U64)
    def test_cadd_on_machine(self, x, y, z):
        machine = run_asm("cadd a0, a1, a2, a3",
                          {"a1": x, "a2": y, "a3": z})
        assert machine.regs["a0"] == cadd_value(x, y, z)

    @given(U64, U64)
    def test_sraiadd_on_machine(self, x, y):
        machine = run_asm("sraiadd a0, a1, a2, 57",
                          {"a1": x, "a2": y})
        assert machine.regs["a0"] == sraiadd_value(x, y, 57)

    def test_rd_equals_source_register(self):
        # accumulator update in place, as used by every MAC listing
        machine = run_asm("maddlu a0, a1, a2, a0",
                          {"a0": 10, "a1": 3, "a2": 4})
        assert machine.regs["a0"] == 22

    def test_write_to_x0_discarded(self):
        machine = run_asm("maddlu zero, a1, a2, a3",
                          {"a1": 3, "a2": 4, "a3": 5})
        assert machine.regs["zero"] == 0
