"""Tests for the CSIDH class group action."""

from __future__ import annotations

import random

import pytest

from repro.csidh.group_action import ActionStats, group_action
from repro.errors import ParameterError
from repro.field.fp import FieldContext


@pytest.fixture(scope="module")
def toy_field(toy_params):
    return FieldContext(toy_params.p)


@pytest.fixture(scope="module")
def mini_field(mini_params):
    return FieldContext(mini_params.p)


class TestBasics:
    def test_identity_action_is_noop(self, toy_params, toy_field, rng):
        zero = (0,) * toy_params.num_primes
        assert group_action(toy_params, toy_field, 0, zero, rng) == 0

    def test_deterministic_in_exponents(self, toy_params, toy_field):
        e = (1, -2, 1)
        a1 = group_action(toy_params, toy_field, 0, e,
                          random.Random(1))
        a2 = group_action(toy_params, toy_field, 0, e,
                          random.Random(999))
        assert a1 == a2  # randomness must not affect the result

    def test_result_is_new_supersingular_curve(self, toy_params,
                                               toy_field, rng):
        from repro.csidh.validate import is_supersingular
        a = group_action(toy_params, toy_field, 0, (1, 1, 1), rng)
        assert a != 0
        assert is_supersingular(toy_params, toy_field, a,
                                random.Random(5))

    def test_wrong_exponent_count(self, toy_params, toy_field, rng):
        with pytest.raises(ParameterError):
            group_action(toy_params, toy_field, 0, (1, 2), rng)

    def test_exponent_bound_enforced(self, toy_params, toy_field, rng):
        with pytest.raises(ParameterError):
            group_action(toy_params, toy_field, 0, (99, 0, 0), rng)


class TestGroupStructure:
    def test_commutativity(self, toy_params, toy_field, rng):
        """The headline property: ideals act commutatively."""
        e1 = (1, 0, -1)
        e2 = (0, 2, 1)
        a_12 = group_action(
            toy_params, toy_field,
            group_action(toy_params, toy_field, 0, e1, rng), e2, rng)
        a_21 = group_action(
            toy_params, toy_field,
            group_action(toy_params, toy_field, 0, e2, rng), e1, rng)
        assert a_12 == a_21

    def test_composition_equals_sum_of_exponents(self, toy_params,
                                                 toy_field, rng):
        e1 = (1, -1, 0)
        e2 = (1, 1, 1)
        combined = tuple(x + y for x, y in zip(e1, e2))
        step = group_action(toy_params, toy_field, 0, e1, rng)
        two_step = group_action(toy_params, toy_field, step, e2, rng)
        direct = group_action(toy_params, toy_field, 0, combined, rng)
        assert two_step == direct

    def test_inverse_returns_to_start(self, toy_params, toy_field, rng):
        e = (2, -1, 1)
        inverse = tuple(-x for x in e)
        there = group_action(toy_params, toy_field, 0, e, rng)
        back = group_action(toy_params, toy_field, there, inverse, rng)
        assert back == 0

    def test_single_positive_vs_negative_differ(self, toy_params,
                                                toy_field, rng):
        plus = group_action(toy_params, toy_field, 0, (1, 0, 0), rng)
        minus = group_action(toy_params, toy_field, 0, (-1, 0, 0), rng)
        assert plus != minus

    def test_mini_params_commutativity(self, mini_params, mini_field,
                                       rng):
        e1 = mini_params.sample_private_key(random.Random(11))
        e2 = mini_params.sample_private_key(random.Random(22))
        a1 = group_action(mini_params, mini_field, 0, e1, rng)
        a12 = group_action(mini_params, mini_field, a1, e2, rng)
        a2 = group_action(mini_params, mini_field, 0, e2, rng)
        a21 = group_action(mini_params, mini_field, a2, e1, rng)
        assert a12 == a21


class TestStats:
    def test_isogeny_count_matches_exponent_weight(self, toy_params,
                                                   toy_field, rng):
        stats = ActionStats()
        exponents = (2, -1, 1)
        group_action(toy_params, toy_field, 0, exponents, rng,
                     stats=stats)
        assert stats.isogenies == sum(abs(e) for e in exponents)
        assert stats.rounds >= 1

    def test_max_rounds_guard(self, toy_params, toy_field):
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            group_action(toy_params, toy_field, 0, (1, 0, 0),
                         random.Random(0), max_rounds=0)
