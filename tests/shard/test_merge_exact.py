"""The tentpole invariant: sharded == monolithic, exactly.

Any shard count, any record arrival order, on toy and mini parameters:
the merged span tree reproduces the monolithic profile node-for-node
(names, labels, entry counts, per-node self cycles), the merged cycle
and instruction totals equal the monolithic counters, and the group
action coefficient is bit-for-bit the monolithic output.  Shards here
execute in-process (one :class:`ShardRunner` replaying the recorded
stream) — the real-process path is covered by
``tests/shard/test_scheduler.py``; engines are cycle-identical by the
differential suite, so in-process jit execution is representative.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csidh.parameters import csidh_mini, csidh_toy
from repro.errors import ShardDivergenceError, ShardError
from repro.shard.merge import merge_records, span_cycle_mismatches
from repro.shard.plan import build_plan, compute_boundaries
from repro.shard.worker import ShardRunner
from repro.telemetry.profile import profile_group_action


@pytest.fixture(scope="module")
def toy_profile():
    return profile_group_action(csidh_toy(), seed=3)


@pytest.fixture(scope="module")
def toy_stream():
    return build_plan("toy", shards=1, seed=3)[1]


def _merged_for(shards: int, stream, arrival_seed: int = 0):
    """Build an N-shard plan, execute every shard in-process, merge
    the records in a shuffled arrival order."""
    plan, _ = build_plan("toy", shards=shards, seed=3)
    runner = ShardRunner(plan, engine="jit", stream=stream)
    order = list(range(plan.shards))
    random.Random(arrival_seed).shuffle(order)
    records = {index: runner.execute(index) for index in order}
    return plan, merge_records(plan, records, engine="jit")


class TestExactMergeToy:
    @given(shards=st.integers(1, 24), arrival_seed=st.integers(0, 99))
    @settings(max_examples=12, deadline=None)
    def test_any_shard_count_any_arrival_order(
            self, shards, arrival_seed, toy_profile, toy_stream):
        plan, merged = _merged_for(shards, toy_stream, arrival_seed)
        assert merged.coefficient == toy_profile.coefficient
        assert merged.cycles == toy_profile.simulated_cycles
        assert merged.instructions \
            == toy_profile.simulated_instructions
        assert span_cycle_mismatches(toy_profile.root,
                                     merged.root) == []

    def test_single_shard_degenerate_case(self, toy_profile,
                                          toy_stream):
        _plan, merged = _merged_for(1, toy_stream)
        assert merged.cycles == toy_profile.simulated_cycles
        assert span_cycle_mismatches(toy_profile.root,
                                     merged.root) == []

    def test_bench_record_carries_merged_totals(self, toy_profile,
                                                toy_stream):
        _plan, merged = _merged_for(4, toy_stream)
        record = merged.bench_record()
        assert record["mode"] == "sharded_action"
        assert record["simulated_cycles"] \
            == toy_profile.simulated_cycles
        assert record["shards"] == 4
        assert record["divergences"] == 0


class TestExactMergeMini:
    def test_mini_merges_exactly(self):
        profile = profile_group_action(csidh_mini(), seed=3)
        plan, stream = build_plan("mini", shards=7, seed=3)
        runner = ShardRunner(plan, engine="jit", stream=stream)
        records = {index: runner.execute(index)
                   for index in range(plan.shards)}
        merged = merge_records(plan, records, engine="jit")
        assert merged.coefficient == profile.coefficient
        assert merged.cycles == profile.simulated_cycles
        assert merged.instructions == profile.simulated_instructions
        assert span_cycle_mismatches(profile.root, merged.root) == []


class TestMergeRefusals:
    @pytest.fixture(scope="class")
    def plan_and_records(self, toy_stream):
        plan, _ = build_plan("toy", shards=4, seed=3)
        runner = ShardRunner(plan, engine="jit", stream=toy_stream)
        records = {index: runner.execute(index)
                   for index in range(plan.shards)}
        return plan, records

    def test_missing_shard_refused(self, plan_and_records):
        plan, records = plan_and_records
        partial = dict(records)
        del partial[2]
        with pytest.raises(ShardError, match="missing"):
            merge_records(plan, partial)

    def test_missing_shard_allowed_when_partial(self,
                                                plan_and_records):
        plan, records = plan_and_records
        partial = dict(records)
        del partial[2]
        merged = merge_records(plan, partial, partial=True)
        assert merged.partial
        assert merged.completed == (0, 1, 3)
        assert 0 < merged.cycles < sum(
            record["cycles"] for record in records.values()) + 1

    def test_divergent_record_refused_with_stable_code(
            self, plan_and_records):
        plan, records = plan_and_records
        poisoned = {index: dict(record)
                    for index, record in records.items()}
        poisoned[1]["divergences"] = 2
        with pytest.raises(ShardDivergenceError) as excinfo:
            merge_records(plan, poisoned)
        assert excinfo.value.code == "shard_divergence"

    def test_inconsistent_op_counts_refused(self, plan_and_records):
        plan, records = plan_and_records
        doctored = {index: dict(record)
                    for index, record in records.items()}
        doctored[0]["ops"] = dict(doctored[0]["ops"])
        doctored[0]["ops"]["mul"] += 1
        with pytest.raises(ShardError, match="op counts"):
            merge_records(plan, doctored)

    def test_unknown_span_path_refused(self, plan_and_records):
        plan, records = plan_and_records
        doctored = {index: dict(record)
                    for index, record in records.items()}
        doctored[0]["spans"] = dict(doctored[0]["spans"])
        doctored[0]["spans"][str(len(plan.span_paths))] = [1, 1]
        with pytest.raises(ShardError, match="span"):
            merge_records(plan, doctored)


class TestBoundaryAlignment:
    def test_toy_cuts_prefer_span_changes(self, toy_stream):
        """With enough change points, interior cuts land on span-path
        transitions (isogeny/phase edges), not mid-kernel-sequence."""
        points = set(toy_stream.change_points())
        boundaries = compute_boundaries(
            len(toy_stream), 6, sorted(points))
        interior = [start for start, _end in boundaries[1:]]
        assert all(cut in points for cut in interior)
