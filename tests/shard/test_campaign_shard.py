"""Sharded fault campaigns concatenate exactly.

The enabling invariant lives in
:func:`repro.fault.campaign.run_trial_range`: a per-trial cold runner
pool makes every trial a pure function of its planned site and
operands, so contiguous trial ranges concatenate — in any partition —
to the monolithic campaign, trials and metrics both.  These tests pin
that invariant in-process (Hypothesis over partitions) and through
real worker processes (``run_sharded_campaign``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csidh.parameters import csidh_toy
from repro.errors import ShardError
from repro.fault.campaign import run_campaign, run_trial_range
from repro.shard.campaign import (
    build_campaign_plan,
    campaign_plan_from_dict,
    merge_campaign_records,
    run_sharded_campaign,
)

P = csidh_toy().p


@pytest.fixture(scope="module")
def monolithic():
    return run_campaign(P, seed=1, n=25)


def _sum_metrics(metric_blocks):
    totals: dict[tuple, float] = {}
    for block in metric_blocks:
        for name, samples in block.items():
            for sample in samples:
                key = (name, tuple(sorted(sample["labels"].items())))
                totals[key] = totals.get(key, 0) + sample["value"]
    return totals


class TestTrialRangeInvariant:
    @given(cuts=st.lists(st.integers(1, 24), unique=True,
                         max_size=4).map(sorted))
    @settings(max_examples=8, deadline=None)
    def test_any_partition_concatenates_exactly(self, cuts,
                                                monolithic):
        edges = [0, *cuts, 25]
        trials = []
        metric_blocks = []
        for start, end in zip(edges, edges[1:]):
            part, metrics = run_trial_range(
                P, seed=1, n=25, start=start, end=end)
            trials.extend(part)
            metric_blocks.append(metrics)
        assert tuple(trials) == monolithic.trials
        assert _sum_metrics(metric_blocks) \
            == _sum_metrics([monolithic.metrics])

    def test_bad_range_refused(self):
        with pytest.raises(ValueError):
            run_trial_range(P, seed=1, n=5, start=3, end=2)
        with pytest.raises(ValueError):
            run_trial_range(P, seed=1, n=5, start=0, end=6)


class TestShardedCampaign:
    def test_sharded_report_is_byte_identical(self, monolithic):
        sharded = run_sharded_campaign(
            P, seed=1, n=25, shards=4, workers=2)
        assert sharded.to_dict() == monolithic.to_dict()

    def test_single_shard_degenerate_case(self, monolithic):
        sharded = run_sharded_campaign(
            P, seed=1, n=25, shards=1, workers=1)
        assert sharded.to_dict() == monolithic.to_dict()

    def test_checkpoint_resume(self, monolithic, tmp_path):
        path = tmp_path / "campaign.ckpt.jsonl"
        first = run_sharded_campaign(
            P, seed=1, n=25, shards=5, workers=2,
            checkpoint_path=str(path))
        assert first.to_dict() == monolithic.to_dict()
        resumed = run_sharded_campaign(
            P, seed=1, n=25, shards=5, workers=2,
            checkpoint_path=str(path), resume=True)
        assert resumed.to_dict() == monolithic.to_dict()

    def test_jit_engine_forwarded(self):
        mono = run_campaign(P, seed=1, n=8, engine="jit")
        sharded = run_sharded_campaign(
            P, seed=1, n=8, shards=3, workers=2, engine="jit")
        assert sharded.engine == "jit"
        assert sharded.trials == mono.trials


class TestCampaignPlan:
    def test_boundaries_tile_the_campaign(self):
        plan = build_campaign_plan(P, seed=1, n=25, shards=4)
        assert plan.boundaries[0][0] == 0
        assert plan.boundaries[-1][1] == 25
        assert plan.shards == 4
        assert len(set(plan.shard_seeds)) == 4

    def test_plan_dict_round_trip(self):
        plan = build_campaign_plan(P, seed=1, n=25, shards=4)
        assert campaign_plan_from_dict(plan.to_dict()) == plan

    def test_identity_digest_covers_knobs(self):
        base = build_campaign_plan(P, seed=1, n=25, shards=4)
        other = build_campaign_plan(P, seed=2, n=25, shards=4)
        assert base.stream_digest != other.stream_digest

    def test_empty_campaign_refused(self):
        with pytest.raises(ShardError):
            build_campaign_plan(P, seed=1, n=0, shards=2)

    def test_missing_shard_refused(self):
        plan = build_campaign_plan(P, seed=1, n=6, shards=2)
        with pytest.raises(ShardError, match="missing"):
            merge_campaign_records(plan, {})
