"""Shard plans: recording, boundaries, serialisation, integrity.

The plan is the subsystem's source of truth: everything downstream
(workers, checkpoints, merges) trusts it, so these tests pin its
determinism (same seed ⇒ same stream digest ⇒ same shard seeds), the
boundary invariants any shard count must satisfy, the JSON round-trip,
and the integrity checks that refuse a plan rebuilt against different
code or parameters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csidh.parameters import csidh_toy
from repro.errors import ReproError, ShardError
from repro.shard.plan import (
    OP_KINDS,
    build_plan,
    compute_boundaries,
    derive_shard_seed,
    load_plan,
    plan_from_dict,
    record_action_stream,
    regenerate_stream,
    save_plan,
)
from repro.telemetry.profile import profile_group_action


class TestRecording:
    def test_stream_matches_monolithic_profile(self):
        """The recorded op counts are the simulated run's op counts
        and the recorded coefficient is the simulated output."""
        params = csidh_toy()
        stream, coefficient, _exp, stats, _root = \
            record_action_stream(params, seed=3)
        profile = profile_group_action(params, seed=3)
        assert coefficient == profile.coefficient
        assert stats.isogenies == profile.stats.isogenies
        counts = stream.op_counts()
        for kind in OP_KINDS:
            assert counts[kind] == getattr(profile.ops, kind)

    def test_recording_is_deterministic(self):
        params = csidh_toy()
        first, *_ = record_action_stream(params, seed=3)
        second, *_ = record_action_stream(params, seed=3)
        assert first.digest() == second.digest()

    def test_different_seed_different_stream(self):
        params = csidh_toy()
        first, *_ = record_action_stream(params, seed=3)
        second, *_ = record_action_stream(params, seed=4)
        assert first.digest() != second.digest()

    def test_stream_op_round_trip(self):
        params = csidh_toy()
        stream, *_ = record_action_stream(params, seed=3)
        kind, a, b, span_id = stream.op(0)
        assert kind in range(len(OP_KINDS))
        assert 0 <= a < params.p
        assert 0 <= b < params.p
        assert 0 <= span_id < len(stream.paths)


class TestBoundaries:
    @given(n_ops=st.integers(1, 5000), shards=st.integers(1, 64),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_cut_is_a_partition(self, n_ops, shards, data):
        """Boundaries always tile [0, n) with non-empty ranges, for
        any op count, shard request, and change-point set."""
        points = data.draw(st.lists(
            st.integers(1, max(1, n_ops - 1)), unique=True,
            max_size=50).map(sorted))
        boundaries = compute_boundaries(n_ops, shards, points)
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == n_ops
        for (a_start, a_end), (b_start, b_end) in zip(
                boundaries, boundaries[1:]):
            assert a_end == b_start
        assert all(end > start for start, end in boundaries)
        assert len(boundaries) == min(shards, n_ops)

    def test_cuts_snap_to_change_points(self):
        boundaries = compute_boundaries(100, 2, [47])
        assert boundaries == ((0, 47), (47, 100))

    def test_more_shards_than_ops_clamps(self):
        boundaries = compute_boundaries(3, 10, [])
        assert boundaries == ((0, 1), (1, 2), (2, 3))

    def test_empty_stream_refused(self):
        with pytest.raises(ShardError):
            compute_boundaries(0, 4, [])

    def test_bad_shard_count_refused(self):
        with pytest.raises(ShardError):
            compute_boundaries(10, 0, [])


class TestPlanBuild:
    def test_plan_covers_stream(self):
        plan, stream = build_plan("toy", shards=5, seed=3)
        assert plan.n_ops == len(stream)
        assert plan.boundaries[-1][1] == plan.n_ops
        assert plan.shards == 5
        assert len(plan.shard_seeds) == 5
        assert plan.op_counts == stream.op_counts()

    def test_shard_seeds_derive_from_digest(self):
        plan, _ = build_plan("toy", shards=3, seed=3)
        for index, seed in enumerate(plan.shard_seeds):
            assert seed == derive_shard_seed(
                plan.stream_digest, index)
        assert len(set(plan.shard_seeds)) == 3

    def test_same_run_seed_same_plan_identity(self):
        first, _ = build_plan("toy", shards=4, seed=3)
        second, _ = build_plan("toy", shards=4, seed=3)
        assert first.stream_digest == second.stream_digest
        assert first.shard_seeds == second.shard_seeds
        assert first.boundaries == second.boundaries
        assert first.coefficient == second.coefficient

    def test_csidh_512_plans_without_refusing(self):
        """The acceptance criterion: full-size parameters plan fine —
        the recording pass is pure Python, no simulation involved."""
        plan, stream = build_plan("csidh-512", shards=64, seed=3)
        assert plan.params_name == "CSIDH-512"
        assert plan.n_ops == len(stream) > 100_000
        assert plan.shards == 64
        assert plan.isogenies > 0

    def test_unknown_params_refused_with_stable_code(self):
        with pytest.raises(ShardError) as excinfo:
            build_plan("huge", shards=2)
        assert excinfo.value.code == "shard"
        assert isinstance(excinfo.value, ReproError)


class TestSerialisation:
    def test_save_load_round_trip(self, tmp_path):
        plan, _ = build_plan("toy", shards=4, seed=3)
        path = tmp_path / "plan.json"
        save_plan(str(path), plan)
        loaded = load_plan(str(path))
        assert loaded == plan

    def test_dict_round_trip_preserves_span_paths(self):
        plan, _ = build_plan("toy", shards=2, seed=3)
        again = plan_from_dict(plan.to_dict())
        assert again.span_paths == plan.span_paths
        assert again.skeleton == plan.skeleton

    def test_missing_file_stable_code(self, tmp_path):
        with pytest.raises(ShardError) as excinfo:
            load_plan(str(tmp_path / "nope.json"))
        assert excinfo.value.code == "shard"

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("not json {")
        with pytest.raises(ShardError):
            load_plan(str(path))
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ShardError):
            load_plan(str(path))

    def test_malformed_plan_dict_refused(self):
        with pytest.raises(ShardError):
            plan_from_dict({"params": "toy"})


class TestRegeneration:
    def test_regenerated_stream_verifies(self):
        plan, stream = build_plan("toy", shards=3, seed=3)
        again = regenerate_stream(plan)
        assert again.digest() == stream.digest()

    def test_tampered_digest_refused(self):
        plan, _ = build_plan("toy", shards=3, seed=3)
        data = plan.to_dict()
        data["stream_digest"] = "0" * 64
        with pytest.raises(ShardError, match="digest"):
            regenerate_stream(plan_from_dict(data))
