"""The work-stealing scheduler against real worker processes.

Everything here forks actual processes: completion across worker
counts, stealing, checkpoint write/resume determinism, worker-kill
recovery (a real ``os._exit`` mid-backlog, driven by the executor's
fail-injection hook), and the exhaustion error codes.  Merged results
are always checked against the monolithic profile — scheduling noise
(who ran what, who died, who stole) must never reach the output.
"""

from __future__ import annotations

import json

import pytest

from repro.csidh.parameters import csidh_toy
from repro.errors import ShardError, ShardExhaustedError
from repro.shard.merge import (
    merge_records,
    read_checkpoint,
    run_sharded_action,
    span_cycle_mismatches,
)
from repro.shard.plan import build_plan
from repro.shard.scheduler import ShardExecutor, ShardRunStats
from repro.telemetry.profile import profile_group_action


@pytest.fixture(scope="module")
def toy_plan():
    return build_plan("toy", shards=6, seed=3)[0]


@pytest.fixture(scope="module")
def toy_profile():
    return profile_group_action(csidh_toy(), seed=3)


def _assert_exact(merged, profile):
    assert merged.coefficient == profile.coefficient
    assert merged.cycles == profile.simulated_cycles
    assert merged.instructions == profile.simulated_instructions
    assert span_cycle_mismatches(profile.root, merged.root) == []


class TestExecution:
    def test_two_workers_merge_exactly(self, toy_plan, toy_profile):
        merged = run_sharded_action(toy_plan, workers=2)
        _assert_exact(merged, toy_profile)
        assert merged.stats.workers == 2
        assert merged.stats.shards_completed == toy_plan.shards
        assert merged.stats.worker_failures == 0

    def test_more_workers_than_shards_clamps(self, toy_profile):
        plan, _ = build_plan("toy", shards=2, seed=3)
        merged = run_sharded_action(plan, workers=8)
        assert merged.stats.workers == 2
        _assert_exact(merged, toy_profile)

    def test_single_worker_still_exact(self, toy_plan, toy_profile):
        merged = run_sharded_action(toy_plan, workers=1)
        _assert_exact(merged, toy_profile)

    def test_bad_worker_count_refused(self, toy_plan):
        with pytest.raises(ShardError):
            ShardExecutor(toy_plan, workers=0)

    def test_out_of_range_shard_refused(self, toy_plan):
        executor = ShardExecutor(toy_plan, workers=1)
        with pytest.raises(ShardError):
            executor.run(shard_ids=[toy_plan.shards])


class TestCheckpointResume:
    def test_checkpoint_has_header_and_all_shards(self, toy_plan,
                                                  tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        run_sharded_action(toy_plan, workers=2,
                           checkpoint_path=str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "plan"
        assert lines[0]["digest"] == toy_plan.stream_digest
        shard_lines = [line for line in lines
                       if line["type"] == "shard"]
        assert sorted(line["shard"] for line in shard_lines) \
            == list(range(toy_plan.shards))
        for line in shard_lines:
            assert line["seed"] \
                == toy_plan.shard_seeds[line["shard"]]

    def test_interrupted_run_resumes_exactly(self, toy_plan,
                                             toy_profile, tmp_path):
        """A slice run + a resume run produce the same merged tree as
        one uninterrupted run (checkpoint-resume determinism)."""
        path = tmp_path / "resume.ckpt.jsonl"
        first = run_sharded_action(
            toy_plan, workers=2, checkpoint_path=str(path),
            shard_ids=[0, 1, 2])
        assert first.partial
        assert first.completed == (0, 1, 2)
        resumed = run_sharded_action(
            toy_plan, workers=2, checkpoint_path=str(path),
            resume=True)
        assert not resumed.partial
        _assert_exact(resumed, toy_profile)
        # the checkpointed shards were loaded, not re-executed
        assert resumed.stats.shards_completed \
            == toy_plan.shards - 3

    def test_resume_of_complete_run_is_idempotent(self, toy_plan,
                                                  toy_profile,
                                                  tmp_path):
        path = tmp_path / "idem.ckpt.jsonl"
        run_sharded_action(toy_plan, workers=2,
                           checkpoint_path=str(path))
        size_before = path.stat().st_size
        again = run_sharded_action(
            toy_plan, workers=2, checkpoint_path=str(path),
            resume=True)
        assert again.stats.shards_completed == 0  # nothing re-run
        assert path.stat().st_size == size_before
        _assert_exact(again, toy_profile)

    def test_checkpoint_of_other_plan_refused(self, toy_plan,
                                              tmp_path):
        other, _ = build_plan("toy", shards=6, seed=4)
        path = tmp_path / "other.ckpt.jsonl"
        run_sharded_action(other, workers=1,
                           checkpoint_path=str(path))
        with pytest.raises(ShardError) as excinfo:
            read_checkpoint(str(path), toy_plan)
        assert excinfo.value.code == "shard"

    def test_resume_without_checkpoint_refused(self, toy_plan):
        with pytest.raises(ShardError):
            run_sharded_action(toy_plan, workers=1, resume=True)


class TestWorkerFailure:
    def test_killed_worker_recovers_and_merges_exactly(
            self, toy_plan, toy_profile):
        """The first assignment of shard 2 hard-kills its worker
        (``os._exit`` in the child); the shard re-queues, a fresh
        worker picks it up, and the merged result is untouched."""
        merged = run_sharded_action(
            toy_plan, workers=2, fail_injection={2: 1})
        assert merged.stats.worker_failures >= 1
        assert merged.stats.requeues >= 1
        assert merged.stats.worker_restarts >= 1
        _assert_exact(merged, toy_profile)

    def test_two_concurrent_kills_still_recover(self, toy_plan,
                                                toy_profile):
        merged = run_sharded_action(
            toy_plan, workers=2, fail_injection={1: 1, 4: 1})
        assert merged.stats.worker_failures >= 2
        _assert_exact(merged, toy_profile)

    def test_requeue_budget_exhaustion_stable_code(self, toy_plan):
        """A shard that kills every host exhausts its re-queue budget
        and aborts the run with the stable ``shard_exhausted`` code."""
        with pytest.raises(ShardExhaustedError) as excinfo:
            run_sharded_action(
                toy_plan, workers=2, fail_injection={1: 99},
                max_requeues=1)
        assert excinfo.value.code == "shard_exhausted"

    def test_completed_shards_survive_an_aborted_run(self, toy_plan,
                                                     tmp_path):
        """Exhaustion loses no finished work: whatever reached the
        checkpoint before the abort merges as a partial view."""
        path = tmp_path / "abort.ckpt.jsonl"
        with pytest.raises(ShardExhaustedError):
            run_sharded_action(
                toy_plan, workers=2, fail_injection={0: 99},
                max_requeues=0, checkpoint_path=str(path))
        records = read_checkpoint(str(path), toy_plan)
        assert 0 not in records  # the poisoned shard never finished
        if records:  # other shards may have completed first
            merged = merge_records(toy_plan, records, partial=True)
            assert merged.partial


class TestStatsAndMetrics:
    def test_stats_account_for_every_shard(self, toy_plan):
        stats = ShardRunStats()
        executor = ShardExecutor(toy_plan, workers=2)
        records = executor.run(stats=stats)
        assert len(records) == toy_plan.shards
        assert stats.shards_completed == toy_plan.shards
        assert stats.exec_wall_s > 0

    def test_shard_metrics_recorded_under_capture(self, toy_plan):
        from repro import telemetry

        executor = ShardExecutor(toy_plan, workers=2)
        with telemetry.capture(fresh=True) as cap:
            executor.run(stats=ShardRunStats())
        completed = cap.registry.counter("shard_completed_total")
        assert completed.total() == toy_plan.shards
        cycles = cap.registry.counter("shard_cycles_total")
        assert cycles.total() > 0
