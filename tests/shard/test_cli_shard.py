"""End-to-end CLI coverage for the sharded execution subsystem.

``repro shard plan/run/resume/merge``, ``repro profile --shards`` and
``repro faults --shards``, all through :func:`repro.cli.main` — the
same entry CI's ``sharded-run`` job drives.  The assertions mirror the
acceptance criteria: sharded output equals monolithic output, partial
smoke slices work, and the old refusals now point at the shard path.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.profile import profile_group_action
from repro.csidh.parameters import csidh_toy


@pytest.fixture(scope="module")
def toy_profile():
    return profile_group_action(csidh_toy(), seed=3)


class TestProfileShards:
    def test_sharded_profile_matches_monolithic_cycles(
            self, toy_profile, tmp_path, capsys):
        bench = tmp_path / "BENCH_shard.json"
        assert main(["profile", "--params", "toy", "--shards", "4",
                     "--workers", "2",
                     "--bench-out", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "group_action" in out
        assert "isogeny[degree=" in out
        assert f"{toy_profile.simulated_cycles} simulated cycle(s)" \
            in out
        document = json.loads(bench.read_text())
        assert document["benchmark"] == "shard"
        (record,) = document["runs"]
        assert record["mode"] == "sharded_action"
        assert record["simulated_cycles"] \
            == toy_profile.simulated_cycles
        assert record["shards"] == 4
        assert record["workers"] == 2
        assert record["divergences"] == 0

    def test_sharded_profile_telemetry_export(self, tmp_path,
                                              capsys):
        out = tmp_path / "telemetry.json"
        assert main(["profile", "--params", "toy", "--shards", "2",
                     "--workers", "1", "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["spans"]["name"] == "root"
        shard_counts = document["metrics"]["shard_completed_total"]
        assert sum(entry["value"] for entry in shard_counts) == 2


class TestFaultsShards:
    def test_sharded_faults_report_identical(self, tmp_path, capsys):
        mono_path = tmp_path / "mono.json"
        shard_path = tmp_path / "shard.json"
        assert main(["faults", "--params", "toy", "--n", "12",
                     "--seed", "2", "--quiet",
                     "--json", str(mono_path)]) == 0
        assert main(["faults", "--params", "toy", "--n", "12",
                     "--seed", "2", "--quiet",
                     "--shards", "3", "--workers", "2",
                     "--json", str(shard_path)]) == 0
        assert json.loads(shard_path.read_text()) \
            == json.loads(mono_path.read_text())


class TestShardCommand:
    def test_plan_run_merge_round_trip(self, toy_profile, tmp_path,
                                       capsys):
        plan_path = tmp_path / "plan.json"
        ckpt_path = tmp_path / "run.ckpt.jsonl"
        assert main(["shard", "plan", "--params", "toy",
                     "--shards", "5", "-o", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "5 shard(s)" in out
        assert plan_path.exists()

        assert main(["shard", "run", "--plan", str(plan_path),
                     "--workers", "2",
                     "--checkpoint", str(ckpt_path)]) == 0
        out = capsys.readouterr().out
        assert f"{toy_profile.simulated_cycles} simulated cycle(s)" \
            in out
        assert f"coefficient {toy_profile.coefficient:#x}" in out

        # offline merge of the checkpoint reproduces the same totals
        assert main(["shard", "merge", "--plan", str(plan_path),
                     "--checkpoint", str(ckpt_path),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert f"{toy_profile.simulated_cycles} simulated cycle(s)" \
            in out

    def test_bounded_slice_then_resume(self, toy_profile, tmp_path,
                                       capsys):
        plan_path = tmp_path / "plan.json"
        ckpt_path = tmp_path / "resume.ckpt.jsonl"
        assert main(["shard", "plan", "--params", "toy",
                     "--shards", "6", "-o", str(plan_path)]) == 0
        capsys.readouterr()
        assert main(["shard", "run", "--plan", str(plan_path),
                     "--workers", "2", "--max-shards", "2",
                     "--checkpoint", str(ckpt_path),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2/6 shard(s) (partial)" in out
        assert main(["shard", "resume", "--plan", str(plan_path),
                     "--workers", "2",
                     "--checkpoint", str(ckpt_path),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "resuming: 2/6 shard(s)" in out
        assert f"{toy_profile.simulated_cycles} simulated cycle(s)" \
            in out

    def test_partial_merge_needs_flag(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        ckpt_path = tmp_path / "partial.ckpt.jsonl"
        assert main(["shard", "plan", "--params", "toy",
                     "--shards", "4", "-o", str(plan_path)]) == 0
        assert main(["shard", "run", "--plan", str(plan_path),
                     "--workers", "1", "--max-shards", "1",
                     "--checkpoint", str(ckpt_path),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--plan", str(plan_path),
                     "--checkpoint", str(ckpt_path),
                     "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "error [shard]:" in err
        assert "missing" in err
        assert main(["shard", "merge", "--plan", str(plan_path),
                     "--checkpoint", str(ckpt_path),
                     "--partial", "--quiet"]) == 0

    def test_resume_without_checkpoint_one_line_error(self, capsys):
        assert main(["shard", "resume", "--params", "toy",
                     "--shards", "2"]) == 2
        err = capsys.readouterr().err
        assert "--checkpoint" in err
        assert len(err.strip().splitlines()) == 1

    def test_mismatched_checkpoint_refused(self, tmp_path, capsys):
        plan_a = tmp_path / "a.json"
        plan_b = tmp_path / "b.json"
        ckpt = tmp_path / "a.ckpt.jsonl"
        assert main(["shard", "plan", "--params", "toy",
                     "--shards", "3", "--seed", "3",
                     "-o", str(plan_a)]) == 0
        assert main(["shard", "plan", "--params", "toy",
                     "--shards", "3", "--seed", "4",
                     "-o", str(plan_b)]) == 0
        assert main(["shard", "run", "--plan", str(plan_a),
                     "--workers", "1",
                     "--checkpoint", str(ckpt), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--plan", str(plan_b),
                     "--checkpoint", str(ckpt)]) == 2
        assert "error [shard]:" in capsys.readouterr().err

    def test_csidh512_plan_supported(self, capsys):
        """The headline acceptance: full-size CSIDH-512 is planned,
        not refused (the run itself is long; CI smokes a bounded
        slice with --max-shards)."""
        assert main(["shard", "plan", "--params", "csidh-512",
                     "--shards", "256", "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "CSIDH-512" in out
        assert "256 shard(s)" in out
