"""Tests for the disassembler (text round trips, program rendering)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.ise import FULL_RADIX_ISA, REDUCED_RADIX_ISA
from repro.rv64.assembler import assemble
from repro.rv64.disassembler import (
    disassemble_program,
    disassemble_word,
    format_instruction,
)
from repro.rv64.encoding import encode_instruction, encode_program
from repro.rv64.isa import BASE_ISA, Instruction


class TestFormat:
    @pytest.mark.parametrize("text", [
        "add a0, a1, a2",
        "addi t0, t1, -42",
        "ld s0, 16(sp)",
        "sd s0, -8(sp)",
        "beq a0, a1, 16",
        "lui a0, 0x12345",
        "jal ra, 2048",
        "slli a0, a0, 57",
        "mulhu a2, a3, a4",
        "ecall",
    ])
    def test_assemble_format_fixpoint(self, text):
        """format(assemble(x)) == x for canonical text."""
        ins = assemble(text, BASE_ISA).instructions[0]
        assert format_instruction(BASE_ISA, ins) == text

    @pytest.mark.parametrize("text,isa", [
        ("maddlu t0, a0, a1, t0", FULL_RADIX_ISA),
        ("maddhu s1, s2, s3, s4", FULL_RADIX_ISA),
        ("cadd a0, a1, a2, a3", FULL_RADIX_ISA),
        ("madd57lu t0, a0, a1, t0", REDUCED_RADIX_ISA),
        ("madd57hu t1, a2, a3, t1", REDUCED_RADIX_ISA),
        ("sraiadd a0, a1, a2, 57", REDUCED_RADIX_ISA),
    ])
    def test_custom_instruction_fixpoint(self, text, isa):
        ins = assemble(text, isa).instructions[0]
        assert format_instruction(isa, ins) == text


class TestWordDisassembly:
    def test_known_encoding(self):
        # addi x0, x0, 0 == the canonical nop == 0x00000013
        assert disassemble_word(BASE_ISA, 0x00000013) \
            == "addi zero, zero, 0"

    def test_custom_word(self):
        ins = Instruction("maddlu", rd=5, rs1=10, rs2=11, rs3=5)
        word = encode_instruction(FULL_RADIX_ISA, ins)
        assert disassemble_word(FULL_RADIX_ISA, word) \
            == "maddlu t0, a0, a1, t0"

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
    def test_r_type_roundtrip_text(self, rd, rs1, rs2):
        ins = Instruction("xor", rd=rd, rs1=rs1, rs2=rs2)
        word = encode_instruction(BASE_ISA, ins)
        text = disassemble_word(BASE_ISA, word)
        again = assemble(text, BASE_ISA).instructions[0]
        assert again == ins


class TestProgramDisassembly:
    def test_listing_renders_addresses(self):
        program = assemble("nop\nadd a0, a1, a2\nret", BASE_ISA)
        words = encode_program(BASE_ISA, program.instructions)
        text = disassemble_program(BASE_ISA, words, base=0x1000)
        lines = text.splitlines()
        assert lines[0].startswith("00001000:")
        assert lines[1].startswith("00001004:")
        assert "add a0, a1, a2" in lines[1]

    def test_full_kernel_reassembles(self, kernels512):
        """disassemble(encode(assemble(kernel))) reassembles to the
        same instruction sequence — a whole-kernel fixpoint."""
        kernel = kernels512["fp_add.reduced.ise"]
        program = assemble(kernel.source, kernel.isa)
        words = encode_program(kernel.isa, program.instructions)
        listing = disassemble_program(kernel.isa, words)
        rebuilt = assemble(
            "\n".join(line.split("  ", 2)[2] for line in
                      listing.splitlines()),
            kernel.isa,
        )
        assert rebuilt.instructions == program.instructions
