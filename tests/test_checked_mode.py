"""Unit tests for the hardened ("checked") execution layer.

Covers both levels of the defence:

* :class:`~repro.kernels.runner.KernelRunner` checked mode — sampled
  cross-validation of values against the kernel's pure-Python
  reference and of cycle counts against the straight-line baseline;
* :class:`~repro.field.simulated.SimulatedFieldContext` recovery —
  eviction of the poisoned runner, trace invalidation, and bounded
  interpreter re-execution, up to
  :class:`~repro.errors.RecoveryExhaustedError`.

Plus the structural guarantees the benchmarks rely on: a runner with
hardening disabled carries ``None`` state (one boolean test on the hot
path), and checked runners never share a pool slot with plain ones.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import telemetry
from repro.csidh.parameters import csidh_toy
from repro.errors import FaultDetectedError, RecoveryExhaustedError
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext
from repro.kernels import registry
from repro.rv64.pipeline import ROCKET_CONFIG

P = csidh_toy().p


@pytest.fixture(autouse=True)
def _fresh_pool():
    registry.clear_runner_pool()
    yield
    registry.clear_runner_pool()


def _runner(*, checked: bool, name: str = "fp_mul.reduced.ise",
            interval: int = 1):
    return registry.cached_runner(P, name, ROCKET_CONFIG,
                                  checked=checked,
                                  check_interval=interval)


class TestRunnerCheckedMode:
    def test_clean_run_passes(self):
        runner = _runner(checked=True)
        ctx = runner.kernel.context
        run = runner.run(3, ctx.r2_mod_p, replay=True)
        assert run.value == runner.kernel.reference(3, ctx.r2_mod_p)

    def test_value_corruption_detected(self):
        runner = _runner(checked=True)
        runner.set_fault_hook(
            lambda limbs: (limbs[0] ^ 1,) + limbs[1:])
        with pytest.raises(FaultDetectedError, match="diverged"):
            runner.run(3, 5, replay=True)
        runner.clear_fault_hook()

    def test_cycle_corruption_detected(self):
        runner = _runner(checked=True)
        machine = runner.machine
        trace = machine._trace_for(runner.entry)
        assert trace is not None and trace.cycles is not None
        machine._trace_cache[runner.entry] = dataclasses.replace(
            trace, cycles=trace.cycles + 3)
        try:
            with pytest.raises(FaultDetectedError, match="cycle count"):
                runner.run(3, 5, replay=True)
        finally:
            machine._trace_cache[runner.entry] = trace

    def test_sampling_interval_honoured(self):
        runner = _runner(checked=True, interval=4)
        with telemetry.capture(fresh=True) as cap:
            for _ in range(8):
                runner.run(3, 5, replay=True)
        checked = cap.registry.counter("checked_runs_total")
        assert checked.total() == 2  # 8 runs / interval 4

    def test_disable_checked_drops_state(self):
        runner = _runner(checked=True)
        assert runner.checked
        runner.disable_checked()
        assert not runner.checked
        assert runner._hardening is None  # back to the one-test path

    def test_unchecked_runner_has_no_hardening_state(self):
        runner = _runner(checked=False)
        assert runner._hardening is None
        assert not runner.checked

    def test_fault_hook_without_checked_perturbs_silently(self):
        """The injection seam works on unchecked runners too — that is
        what an *escaped* fault would look like, so the seam must not
        imply detection."""
        runner = _runner(checked=False, name="fp_add.reduced.ise")
        runner.set_fault_hook(lambda limbs: (limbs[0] ^ 1,) + limbs[1:])
        try:
            run = runner.run(4, 5, replay=True, check=False)
            assert run.value != runner.kernel.reference(4, 5)
        finally:
            runner.clear_fault_hook()
        assert runner._hardening is None


class TestRunnerPoolSeparation:
    def test_checked_and_plain_never_share(self):
        plain = _runner(checked=False)
        hardened = _runner(checked=True)
        assert plain is not hardened
        assert _runner(checked=False) is plain
        assert _runner(checked=True) is hardened

    def test_evict_runner(self):
        hardened = _runner(checked=True)
        assert registry.evict_runner(P, "fp_mul.reduced.ise",
                                     ROCKET_CONFIG, checked=True)
        assert not registry.evict_runner(P, "fp_mul.reduced.ise",
                                         ROCKET_CONFIG, checked=True)
        assert _runner(checked=True) is not hardened


class TestContextRecovery:
    def test_detection_then_recovery_yields_correct_value(self):
        context = SimulatedFieldContext(P, checked=True,
                                        check_interval=1)
        reference = FieldContext(P)
        fired = []

        def hook(limbs):
            if not fired:
                fired.append(True)
                return (limbs[0] ^ (1 << 5),) + limbs[1:]
            return limbs

        context._mul.set_fault_hook(hook)
        try:
            assert context.mul(6, 7) == reference.mul(6, 7)
        finally:
            context._mul.clear_fault_hook()
        assert context.fault_detections == 1
        assert context.fault_recoveries == 1

    def test_recovery_emits_telemetry_and_evicts(self):
        with telemetry.capture(fresh=True) as cap:
            context = SimulatedFieldContext(P, checked=True,
                                            check_interval=1)
            context._sub.set_fault_hook(
                lambda limbs: (limbs[0] ^ 1,) + limbs[1:])
            assert context.sub(9, 4) == 5
        recoveries = cap.registry.counter("fault_recoveries_total")
        assert recoveries.value(operation="sub",
                                outcome="recovered") == 1
        assert cap.registry.counter("runner_evictions_total").total() >= 1

    def test_unrecoverable_divergence_exhausts(self, monkeypatch):
        context = SimulatedFieldContext(P, checked=True,
                                        check_interval=1,
                                        max_recovery_attempts=2)
        # ground truth itself disagrees forever: no rebuild can help
        monkeypatch.setattr(context._reference, "add",
                            lambda a, b: -1)
        with pytest.raises(RecoveryExhaustedError, match="2 interpreter"):
            context.add(1, 2)
        assert context.fault_detections == 1
        assert context.fault_recoveries == 0

    def test_unchecked_context_has_no_checked_state(self):
        context = SimulatedFieldContext(P)
        assert not context.checked
        assert context._checked is None
        assert context._reference is None
        assert context.mul(3, 4) == FieldContext(P).mul(3, 4)

    def test_checked_context_sampling_interval(self):
        context = SimulatedFieldContext(P, checked=True,
                                        check_interval=3)
        reference = FieldContext(P)
        for i in range(9):
            assert context.add(i, i + 1) == reference.add(i, i + 1)
        # runners sample at the same interval; 2 runs in 9 adds... the
        # context-level clock fired 3 times out of 9 operations
        assert context._checked.clock == 0
