"""Determinism of the fault layer, as Hypothesis properties.

The debuggability contract of a campaign is that the seed is the whole
story: re-running with the seed printed in a failing report reproduces
the exact fault sites, the exact telemetry stream, and the exact
report.  These properties drive that with arbitrary seeds rather than
a blessed few.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csidh.parameters import csidh_toy
from repro.errors import FaultError
from repro.fault import ALL_SITES, FaultPlan, run_campaign

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)


class TestPlanDeterminism:
    @given(seed=SEEDS, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_sites(self, seed, n):
        assert (FaultPlan(seed=seed).generate(n)
                == FaultPlan(seed=seed).generate(n))

    @given(seed=SEEDS, n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_prefix_stability(self, seed, n):
        """Asking for fewer faults yields a prefix, not a reshuffle."""
        full = FaultPlan(seed=seed).generate(n)
        assert FaultPlan(seed=seed).generate(n - 1) == full[:-1]

    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_operand_stream_independent_of_sites(self, seed):
        """Restricting the site mix must not reshuffle operands."""
        a = FaultPlan(seed=seed).operand_rng()
        b = FaultPlan(seed=seed, sites=ALL_SITES[:2]).operand_rng()
        assert [a.randrange(1 << 30) for _ in range(8)] \
            == [b.randrange(1 << 30) for _ in range(8)]

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_site_fields_in_range(self, seed):
        for site in FaultPlan(seed=seed).generate(16):
            assert site.site in ALL_SITES
            assert 0 <= site.step < 1 << 16
            assert 0 <= site.bit < 1 << 8
            assert 0 <= site.lane < 1 << 16
            assert site.delta >= 1


class TestPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultPlan(seed=1, sites=("bogus_site",))

    def test_unknown_operation_rejected(self):
        with pytest.raises(FaultError, match="unknown operation"):
            FaultPlan(seed=1, operations=("div",))

    def test_empty_sites_rejected(self):
        with pytest.raises(FaultError, match="at least one site"):
            FaultPlan(seed=1, sites=())

    def test_zero_faults_rejected(self):
        with pytest.raises(FaultError, match="at least one fault"):
            FaultPlan(seed=1).generate(0)


class TestCampaignDeterminism:
    """The expensive end of the property: the full campaign — fault
    sites, trial outcomes, and the telemetry block — is a pure
    function of the seed."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=4, deadline=None)
    def test_same_seed_same_report_and_telemetry(self, seed):
        p = csidh_toy().p
        first = run_campaign(p, seed=seed, n=3)
        second = run_campaign(p, seed=seed, n=3)
        assert first.to_dict() == second.to_dict()
        # the telemetry block participates in the equality above, but
        # assert it explicitly: identical event streams, not just
        # identical summaries
        assert first.metrics == second.metrics
        assert first.metrics["faults_injected_total"]
