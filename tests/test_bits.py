"""Unit tests for the fixed-width bit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.rv64 import bits as B

U64 = st.integers(min_value=0, max_value=B.MASK64)
ANY_INT = st.integers(min_value=-(1 << 80), max_value=1 << 80)


class TestTruncation:
    def test_u64_wraps(self):
        assert B.u64(1 << 64) == 0
        assert B.u64((1 << 64) + 5) == 5
        assert B.u64(-1) == B.MASK64

    def test_u32_wraps(self):
        assert B.u32(1 << 32) == 0
        assert B.u32(-1) == B.MASK32

    @given(ANY_INT)
    def test_u64_range(self, value):
        assert 0 <= B.u64(value) <= B.MASK64


class TestSigned:
    def test_s64_negative(self):
        assert B.s64(B.MASK64) == -1
        assert B.s64(B.SIGN64) == -(1 << 63)

    def test_s64_positive(self):
        assert B.s64(5) == 5
        assert B.s64(B.SIGN64 - 1) == (1 << 63) - 1

    def test_s32(self):
        assert B.s32(0xFFFFFFFF) == -1
        assert B.s32(0x7FFFFFFF) == (1 << 31) - 1

    @given(U64)
    def test_s64_roundtrip(self, value):
        assert B.u64(B.s64(value)) == value


class TestSignExtend:
    def test_basic(self):
        assert B.sign_extend(0xFFF, 12) == -1
        assert B.sign_extend(0x7FF, 12) == 2047
        assert B.sign_extend(0b100, 3) == -4

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            B.sign_extend(1, 0)

    @given(st.integers(min_value=1, max_value=63), U64)
    def test_range(self, width, value):
        result = B.sign_extend(value, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))


class TestBitExtraction:
    def test_bits(self):
        assert B.bits(0b110100, 5, 2) == 0b1101
        assert B.bits(0xFF00, 15, 8) == 0xFF

    def test_bits_empty_range(self):
        with pytest.raises(ValueError):
            B.bits(0, 1, 2)

    def test_set_bits(self):
        assert B.set_bits(0, 7, 4, 0xA) == 0xA0
        assert B.set_bits(0xFF, 3, 0, 0) == 0xF0

    @given(U64, st.integers(0, 63), st.integers(0, 63))
    def test_set_then_get(self, value, a, b):
        high, low = max(a, b), min(a, b)
        field = 0b1010101 & ((1 << (high - low + 1)) - 1)
        assert B.bits(B.set_bits(value, high, low, field), high, low) \
            == field


class TestShifts:
    def test_sra64(self):
        assert B.sra64(B.MASK64, 1) == B.MASK64  # -1 >> 1 == -1
        assert B.sra64(0x8000000000000000, 63) == B.MASK64
        assert B.sra64(0x4000000000000000, 62) == 1

    def test_srl64(self):
        assert B.srl64(B.MASK64, 63) == 1

    def test_sll64_wraps(self):
        assert B.sll64(1, 63) == B.SIGN64
        assert B.sll64(3, 63) == B.SIGN64

    @given(U64, st.integers(0, 63))
    def test_sra_matches_python(self, value, shamt):
        assert B.sra64(value, shamt) == B.u64(B.s64(value) >> shamt)


class TestMultiply:
    @given(U64, U64)
    def test_mulhu(self, a, b):
        assert B.mulhu64(a, b) == (a * b) >> 64

    @given(U64, U64)
    def test_mulh(self, a, b):
        assert B.mulh64(a, b) == B.u64((B.s64(a) * B.s64(b)) >> 64)

    @given(U64, U64)
    def test_widening(self, a, b):
        hi, lo = B.widening_mul(a, b)
        assert (hi << 64) | lo == a * b

    @given(U64, U64)
    def test_mulhsu(self, a, b):
        assert B.mulhsu64(a, b) == B.u64((B.s64(a) * b) >> 64)


class TestPredicates:
    def test_fits_unsigned(self):
        assert B.fits_unsigned(255, 8)
        assert not B.fits_unsigned(256, 8)
        assert not B.fits_unsigned(-1, 8)

    def test_fits_signed(self):
        assert B.fits_signed(127, 8)
        assert B.fits_signed(-128, 8)
        assert not B.fits_signed(128, 8)
        assert not B.fits_signed(-129, 8)

    def test_popcount(self):
        assert B.popcount(0) == 0
        assert B.popcount(B.MASK64) == 64
        assert B.popcount(0b1011) == 3
