"""Encode/decode round-trip tests, including the custom R4 encodings.

These tests pin the binary formats of Figures 1-3: opcode placement,
funct2 selectors, and the sraiadd immediate field.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.ise import (
    CADD,
    FULL_RADIX_ISA,
    MADD57HU,
    MADD57LU,
    MADDHU,
    MADDLU,
    REDUCED_RADIX_ISA,
    SRAIADD,
)
from repro.errors import EncodingError
from repro.rv64.encoding import Decoder, encode, encode_instruction
from repro.rv64.isa import BASE_ISA, Instruction

REG = st.integers(min_value=0, max_value=31)


def roundtrip(isa, ins: Instruction) -> Instruction:
    return Decoder(isa).decode(encode_instruction(isa, ins))


class TestBaseRoundtrip:
    @given(REG, REG, REG)
    def test_r_type(self, rd, rs1, rs2):
        for mnemonic in ("add", "sub", "sltu", "mul", "mulhu", "and"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
            assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, REG, st.integers(-2048, 2047))
    def test_i_type(self, rd, rs1, imm):
        for mnemonic in ("addi", "andi", "ori", "xori", "sltiu", "ld"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
            assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, REG, st.integers(0, 63))
    def test_shift_immediates(self, rd, rs1, shamt):
        for mnemonic in ("slli", "srli", "srai"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, REG, st.integers(0, 31))
    def test_word_shift_immediates(self, rd, rs1, shamt):
        for mnemonic in ("slliw", "srliw", "sraiw"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, REG, st.integers(-2048, 2047))
    def test_s_type(self, rs1, rs2, imm):
        ins = Instruction("sd", rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, REG, st.integers(-2048, 2046).map(lambda v: v & ~1))
    def test_b_type(self, rs1, rs2, imm):
        ins = Instruction("beq", rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, st.integers(0, (1 << 20) - 1))
    def test_u_type(self, rd, imm):
        ins = Instruction("lui", rd=rd, imm=imm)
        assert roundtrip(BASE_ISA, ins) == ins

    @given(REG, st.integers(-(1 << 20), (1 << 20) - 2)
           .map(lambda v: v & ~1))
    def test_j_type(self, rd, imm):
        ins = Instruction("jal", rd=rd, imm=imm)
        assert roundtrip(BASE_ISA, ins) == ins

    def test_system(self):
        for mnemonic in ("ecall", "ebreak", "fence"):
            ins = Instruction(mnemonic)
            assert roundtrip(BASE_ISA, ins) == ins


class TestCustomEncodings:
    """Pin the exact bit layout of the paper's Figures 1-3."""

    def test_opcode_and_funct2(self):
        cases = [
            (MADDLU, FULL_RADIX_ISA, 0b00),
            (MADDHU, FULL_RADIX_ISA, 0b01),
            (CADD, FULL_RADIX_ISA, 0b10),
            (MADD57LU, REDUCED_RADIX_ISA, 0b10),
            (MADD57HU, REDUCED_RADIX_ISA, 0b11),
        ]
        for spec, isa, funct2 in cases:
            ins = Instruction(spec.mnemonic, rd=1, rs1=2, rs2=3, rs3=4)
            word = encode(spec, ins)
            assert word & 0x7F == 0b1111011, spec.mnemonic
            assert (word >> 12) & 0b111 == 0b111
            assert (word >> 25) & 0b11 == funct2
            assert (word >> 27) & 0b11111 == 4  # rs3 in bits 31:27
            assert Decoder(isa).decode(word) == ins

    def test_sraiadd_layout(self):
        ins = Instruction("sraiadd", rd=5, rs1=6, rs2=7, imm=57)
        word = encode(SRAIADD, ins)
        assert word & 0x7F == 0b0101011
        assert (word >> 31) == 1
        assert (word >> 25) & 0x3F == 57
        assert Decoder(REDUCED_RADIX_ISA).decode(word) == ins

    @given(REG, REG, REG, REG)
    def test_r4_roundtrip_full(self, rd, rs1, rs2, rs3):
        for mnemonic in ("maddlu", "maddhu", "cadd"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3)
            assert roundtrip(FULL_RADIX_ISA, ins) == ins

    @given(REG, REG, REG, REG)
    def test_r4_roundtrip_reduced(self, rd, rs1, rs2, rs3):
        for mnemonic in ("madd57lu", "madd57hu"):
            ins = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3)
            assert roundtrip(REDUCED_RADIX_ISA, ins) == ins

    @given(REG, REG, REG, st.integers(0, 63))
    def test_sraiadd_roundtrip(self, rd, rs1, rs2, imm):
        ins = Instruction("sraiadd", rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        assert roundtrip(REDUCED_RADIX_ISA, ins) == ins

    def test_custom_missing_from_base_isa(self):
        with pytest.raises(EncodingError):
            encode_instruction(BASE_ISA, Instruction("maddlu"))


class TestEncodingErrors:
    def test_immediate_overflow(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                BASE_ISA, Instruction("addi", rd=1, rs1=1, imm=5000))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                BASE_ISA, Instruction("beq", rs1=1, rs2=2, imm=3))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                BASE_ISA, Instruction("add", rd=32, rs1=0, rs2=0))

    def test_shift_amount_overflow(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                BASE_ISA, Instruction("slli", rd=1, rs1=1, imm=64))

    def test_compressed_rejected(self):
        with pytest.raises(EncodingError):
            Decoder(BASE_ISA).decode(0x0001)  # 16-bit encoding

    def test_garbage_rejected(self):
        with pytest.raises(EncodingError):
            Decoder(BASE_ISA).decode(0xFFFFFFFF)
