"""Tests for the Velu isogeny formulas.

The Montgomery-form codomain/evaluation formulas are validated three
independent ways:

1. group-theoretic invariants on toy CSIDH fields (kernel maps to
   infinity, supersingularity and point orders preserved, the map is a
   homomorphism);
2. a cross-check of the codomain j-invariant against a *textbook* Velu
   computation on the short-Weierstrass model, implemented from first
   principles inside this test module;
3. commutativity of composed isogenies (the CSIDH group action).
"""

from __future__ import annotations

import random

import pytest

from repro.csidh.isogeny import isogeny, kernel_multiples
from repro.csidh.montgomery import (
    Curve,
    XPoint,
    curve_rhs,
    ladder,
)
from repro.errors import ParameterError
from repro.field.fp import FieldContext


# ---------------------------------------------------------------------------
# Textbook reference: short-Weierstrass Velu
# ---------------------------------------------------------------------------

def _mont_to_weierstrass(p: int, a_mont: int) -> tuple[int, int]:
    """y^2 = x^3 + A x^2 + x  ->  y^2 = X^3 + aX + b via X = x + A/3."""
    inv3 = pow(3, p - 2, p)
    a = (1 - a_mont * a_mont % p * inv3) % p
    b = (2 * pow(a_mont, 3, p) - 9 * a_mont) * pow(27, p - 2, p) % p
    return a, b


def _j_invariant(p: int, a: int, b: int) -> int:
    num = 4 * pow(a, 3, p) % p
    den = (num + 27 * b * b) % p
    return 1728 * num * pow(den, p - 2, p) % p


def _velu_weierstrass_codomain(
    p: int, a: int, b: int, kernel_points: list[tuple[int, int]]
) -> tuple[int, int]:
    """Velu's formulas (Washington, Thm 12.16) over the full kernel."""
    t_sum = 0
    w_sum = 0
    for xq, yq in kernel_points:
        t_q = (3 * xq * xq + a) % p
        u_q = (2 * yq * yq) % p
        t_sum = (t_sum + t_q) % p
        w_sum = (w_sum + u_q + t_q * xq) % p
    return (a - 5 * t_sum) % p, (b - 7 * w_sum) % p


def _sqrt(p: int, value: int) -> int:
    root = pow(value, (p + 1) // 4, p)  # p = 3 mod 4
    if root * root % p != value % p:
        raise AssertionError("not a square")
    return root


@pytest.fixture(scope="module")
def setting(toy_params):
    field = FieldContext(toy_params.p)
    return toy_params, field


def _find_kernel(field, a, ell, rng, side=1):
    """Find an order-ell point on the curve (side=+1) or its quadratic
    twist (side=-1) — the two CSIDH walking directions."""
    p = field.p
    curve = Curve.from_affine(field, a)
    while True:
        x = rng.randrange(1, p)
        if field.legendre(curve_rhs(field, a, x)) != side:
            continue
        point = ladder(field, (p + 1) // ell, XPoint(x, 1), curve)
        if not point.is_infinity:
            return point, curve


def _x_equal(field, lhs: XPoint, rhs: XPoint) -> bool:
    if lhs.is_infinity or rhs.is_infinity:
        return lhs.is_infinity == rhs.is_infinity
    return (lhs.X * rhs.Z - rhs.X * lhs.Z) % field.p == 0


class TestKernelMultiples:
    def test_count(self, setting, rng):
        _, field = setting
        for ell in (3, 5, 7):
            kernel, curve = _find_kernel(field, 0, ell, rng)
            multiples = kernel_multiples(field, kernel, curve, ell)
            assert len(multiples) == (ell - 1) // 2

    def test_multiples_are_scalar_multiples(self, setting, rng):
        _, field = setting
        kernel, curve = _find_kernel(field, 0, 7, rng)
        multiples = kernel_multiples(field, kernel, curve, 7)
        for index, point in enumerate(multiples, start=1):
            expected = ladder(field, index, kernel, curve)
            assert _x_equal(field, point, expected)

    def test_even_degree_rejected(self, setting):
        _, field = setting
        curve = Curve.from_affine(field, 0)
        with pytest.raises(ParameterError):
            kernel_multiples(field, XPoint(2, 1), curve, 4)


class TestIsogenyInvariants:
    @pytest.mark.parametrize("ell", [3, 5, 7])
    def test_kernel_maps_to_infinity(self, setting, rng, ell):
        _, field = setting
        kernel, curve = _find_kernel(field, 0, ell, rng)
        result = isogeny(field, curve, kernel, ell, push=(kernel,))
        assert result.images[0].is_infinity

    @pytest.mark.parametrize("ell", [3, 5, 7])
    def test_codomain_supersingular(self, setting, rng, ell):
        params, field = setting
        p = field.p
        kernel, curve = _find_kernel(field, 0, ell, rng)
        new_curve = isogeny(field, curve, kernel, ell).curve
        a_new = new_curve.affine_a(field)
        for _ in range(6):
            x = rng.randrange(1, p)
            if field.legendre(curve_rhs(field, a_new, x)) == 1:
                assert ladder(field, p + 1, XPoint(x, 1),
                              new_curve).is_infinity

    @pytest.mark.parametrize("ell", [3, 5, 7])
    def test_homomorphism_property(self, setting, rng, ell):
        """phi([k]P) == [k]phi(P) for the x-only maps."""
        _, field = setting
        p = field.p
        kernel, curve = _find_kernel(field, 0, ell, rng)
        # a point of order coprime to ell, pushed through
        while True:
            x = rng.randrange(1, p)
            if field.legendre(curve_rhs(field, 0, x)) == 1:
                point = ladder(field, ell, XPoint(x, 1), curve)
                if not point.is_infinity:
                    break
        for k in (2, 3, 5):
            result = isogeny(field, curve, kernel, ell,
                             push=(point, ladder(field, k, point, curve)))
            phi_point, phi_kpoint = result.images
            expected = ladder(field, k, phi_point, result.curve)
            assert _x_equal(field, phi_kpoint, expected)

    def test_isogeny_rejects_infinity_kernel(self, setting):
        _, field = setting
        curve = Curve.from_affine(field, 0)
        with pytest.raises(ParameterError):
            isogeny(field, curve, XPoint(1, 0), 3)


class TestAgainstTextbookVelu:
    @pytest.mark.parametrize("ell", [3, 5, 7])
    @pytest.mark.parametrize("start_a", [0, 158])
    def test_codomain_j_invariant_matches(self, setting, rng, ell,
                                          start_a):
        """Montgomery codomain vs. Weierstrass Velu from first
        principles: the isogenous curves must have equal j-invariants."""
        params, field = setting
        p = field.p
        if field.legendre(curve_rhs(field, start_a, 1)) == 0:
            pytest.skip("degenerate start coefficient")
        kernel, curve = _find_kernel(field, start_a, ell, rng)

        # our Montgomery-form result
        new_a = isogeny(field, curve, kernel, ell).curve.affine_a(field)
        j_ours = _j_invariant(p, *_mont_to_weierstrass(p, new_a))

        # textbook: enumerate the full kernel on the Weierstrass model
        a_w, b_w = _mont_to_weierstrass(p, start_a)
        inv3 = pow(3, p - 2, p)
        shift = start_a * inv3 % p
        kernel_points = []
        for mult in kernel_multiples(field, kernel, curve, ell):
            x_mont = mult.normalise(field)
            y = _sqrt(p, curve_rhs(field, start_a, x_mont))
            x_w = (x_mont + shift) % p
            kernel_points.append((x_w, y))
            kernel_points.append((x_w, (-y) % p))
        a_new, b_new = _velu_weierstrass_codomain(p, a_w, b_w,
                                                  kernel_points)
        j_textbook = _j_invariant(p, a_new, b_new)
        assert j_ours == j_textbook


class TestComposition:
    def test_inverse_direction_returns(self, setting, rng):
        """Applying the ideal l and then its conjugate (kernel on the
        quadratic twist) must return to the starting curve — the
        CSIDH inverse-walk property."""
        params, field = setting
        p = field.p
        ell = 3
        kernel, curve = _find_kernel(field, 0, ell, rng, side=1)
        j_start = _j_invariant(p, *_mont_to_weierstrass(p, 0))
        mid = isogeny(field, curve, kernel, ell).curve
        a_mid = mid.affine_a(field)
        k2, c2 = _find_kernel(field, a_mid, ell, rng, side=-1)
        back = isogeny(field, c2, k2, ell).curve.affine_a(field)
        assert _j_invariant(p, *_mont_to_weierstrass(p, back)) == j_start

    def test_forward_direction_walks_away(self, setting, rng):
        """Two successive +1-direction 3-isogenies do NOT return (the
        class group element has order > 2 here)."""
        params, field = setting
        p = field.p
        kernel, curve = _find_kernel(field, 0, 3, rng, side=1)
        j_start = _j_invariant(p, *_mont_to_weierstrass(p, 0))
        mid = isogeny(field, curve, kernel, 3).curve
        a_mid = mid.affine_a(field)
        k2, c2 = _find_kernel(field, a_mid, 3, rng, side=1)
        onward = isogeny(field, c2, k2, 3).curve.affine_a(field)
        assert _j_invariant(p, *_mont_to_weierstrass(p, onward)) \
            != j_start
