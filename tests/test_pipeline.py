"""Tests for the Rocket-like timing model: hazards, latencies, flushes."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.rv64.cache import CacheConfig
from repro.rv64.pipeline import PipelineConfig, PipelineModel
from tests.helpers import result_of, run_asm


def cycles_of(source: str, config: PipelineConfig | None = None,
              regs: dict | None = None) -> int:
    config = config or PipelineConfig()
    machine = run_asm(source, regs or {}, pipeline=config)
    return result_of(machine).cycles


BASELINE = PipelineConfig()
RET_COST = cycles_of("nop") - 1  # fixed overhead of the trailing ret


class TestBasicTiming:
    def test_independent_alu_ops_are_one_cycle_each(self):
        base = cycles_of("add a0, a1, a2")
        more = cycles_of("add a0, a1, a2\nadd a3, a1, a2\n"
                         "add a4, a1, a2")
        assert more - base == 2

    def test_dependent_alu_chain_still_one_per_cycle(self):
        # full forwarding: ALU-to-ALU dependency costs nothing extra
        dep = cycles_of("add a0, a1, a2\nadd a0, a0, a2\nadd a0, a0, a2")
        indep = cycles_of("add a0, a1, a2\nadd a3, a1, a2\n"
                          "add a4, a1, a2")
        assert dep == indep

    def test_mul_use_bubble(self):
        config = PipelineConfig(mul_latency=3)
        dependent = cycles_of("mul a0, a1, a2\nadd a3, a0, a0", config)
        independent = cycles_of("mul a0, a1, a2\nadd a3, a1, a1", config)
        assert dependent - independent == 2  # latency 3 -> 2 bubbles

    def test_back_to_back_muls_fully_pipelined(self):
        # independent muls issue 1/cycle regardless of latency
        config = PipelineConfig(mul_latency=3)
        two = cycles_of("mul a0, a1, a2\nmul a3, a1, a2", config)
        one = cycles_of("mul a0, a1, a2", config)
        assert two - one == 1

    def test_load_use_delay(self):
        config = PipelineConfig(load_latency=2)
        dependent = cycles_of("ld a0, 0(a1)\nadd a2, a0, a0",
                              config, {"a1": 0x9000})
        independent = cycles_of("ld a0, 0(a1)\nadd a2, a1, a1",
                                config, {"a1": 0x9000})
        assert dependent - independent == 1

    def test_x0_never_stalls(self):
        # writes to x0 are discarded; reads never wait on them
        a = cycles_of("mul zero, a1, a2\nadd a3, zero, a1")
        b = cycles_of("mul zero, a1, a2\nadd a3, a1, a1")
        assert a == b


class TestControlFlow:
    def test_taken_branch_penalty(self):
        config = PipelineConfig(branch_penalty=3)
        taken = cycles_of(
            "beq zero, zero, skip\nnop\nskip: ret", config)
        not_taken = cycles_of(
            "bne zero, zero, skip\nnop\nskip: ret", config)
        # the taken path also executes one fewer instruction (skips nop)
        assert taken == not_taken - 1 + 3

    def test_jump_penalty_counted(self):
        config_fast = PipelineConfig(jump_penalty=0)
        config_slow = PipelineConfig(jump_penalty=2)
        assert (cycles_of("nop", config_slow)
                - cycles_of("nop", config_fast)) == 2  # the ret jalr


class TestCaches:
    def test_cold_icache_misses_cost_cycles(self):
        config = PipelineConfig(icache=CacheConfig(miss_penalty=20))
        cold = cycles_of("nop\nnop\nnop", config)
        warm = cycles_of("nop\nnop\nnop")
        assert cold >= warm + 20  # at least one line fill

    def test_dcache_miss_then_hit(self):
        config = PipelineConfig(dcache=CacheConfig(miss_penalty=20))
        machine = run_asm(
            "ld a0, 0(a1)\nld a2, 0(a1)", {"a1": 0x9000},
            pipeline=config)
        model = machine.pipeline
        assert model.dcache.misses == 1
        assert model.dcache.hits == 1

    def test_stats_structure(self):
        machine = run_asm("mul a0, a1, a2\nadd a0, a0, a0",
                          pipeline=PipelineConfig())
        stats = machine.pipeline.stats
        assert stats.instructions == 3
        assert stats.raw_hazard_stalls >= 1
        assert stats.kind_counts["mul"] == 1
        assert 1.0 <= stats.cpi <= 3.0


class TestConfig:
    def test_latency_lookup_rejects_unknown(self):
        with pytest.raises(ParameterError):
            PipelineConfig().latency_for("teleport")

    def test_reset_clears_state(self):
        model = PipelineModel()
        machine = run_asm("mul a0, a1, a2", pipeline=PipelineConfig())
        model = machine.pipeline
        model.reset()
        assert model.cycles == 0
        assert model.stats.instructions == 0

    def test_div_latency_applies(self):
        fast = PipelineConfig(div_latency=5)
        slow = PipelineConfig(div_latency=40)
        src = "divu a0, a1, a2\nadd a3, a0, a0"
        assert (cycles_of(src, slow, {"a1": 10, "a2": 3})
                > cycles_of(src, fast, {"a1": 10, "a2": 3}))
