"""Tests for the Miller-Rabin primality utilities."""

from __future__ import annotations

import pytest

from repro.mpi.primality import first_odd_primes, is_prime


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 13, 97, 127, 8191,
                                   104729, 2**61 - 1])
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-7, 0, 1, 4, 9, 15, 91, 561, 1105,
                                   2**61 + 1, 3215031751])
    def test_known_composites_and_edge(self, n):
        assert not is_prime(n)

    def test_carmichael_numbers(self):
        # classic Fermat pseudo-primes must be rejected
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(n)

    def test_large_prime_csidh(self, p512):
        assert is_prime(p512)

    def test_large_composite(self, p512):
        assert not is_prime(p512 + 2)  # even
        assert not is_prime(p512 * 3)

    def test_probabilistic_reproducible(self):
        big = (1 << 127) - 1  # Mersenne prime M127
        assert is_prime(big, seed=1) == is_prime(big, seed=2) is True


class TestFirstOddPrimes:
    def test_sequence(self):
        assert first_odd_primes(5) == [3, 5, 7, 11, 13]

    def test_count_73_ends_at_373(self):
        primes = first_odd_primes(73)
        assert len(primes) == 73
        assert primes[-1] == 373  # the CSIDH-512 list boundary

    def test_all_prime(self):
        assert all(is_prime(p) for p in first_odd_primes(30))

    def test_empty(self):
        assert first_odd_primes(0) == []
