"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table3", "listings",
                        "kernel fp_add.full.isa"):
            args = parser.parse_args(command.split())
            assert callable(args.func)


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "base core" in out
        assert "4807" in out

    def test_table3_no_paper(self, capsys):
        assert main(["table3", "--no-paper"]) == 0
        assert "(paper)" not in capsys.readouterr().out

    def test_listings(self, capsys):
        assert main(["listings"]) == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        assert "madd57hu" in out
        assert "(2 instructions)" in out

    def test_kernel_dump(self, capsys):
        assert main(["kernel", "fp_add.full.isa",
                     "--params", "toy"]) == 0
        out = capsys.readouterr().out
        assert "# kernel: fp_add.full.isa" in out
        assert "ret" in out

    def test_kernel_unknown_name(self, capsys):
        assert main(["kernel", "nonsense", "--params", "toy"]) == 1
        assert "available" in capsys.readouterr().err

    def test_exchange_toy(self, capsys):
        assert main(["exchange", "--params", "toy"]) == 0
        assert "AGREED" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "-o", str(target), "--keys", "1"]) == 0
        text = target.read_text()
        assert "# Reproduction report" in text
        assert "## Table 4" in text
        assert "Critical path" in text
