"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table3", "listings",
                        "kernel fp_add.full.isa"):
            args = parser.parse_args(command.split())
            assert callable(args.func)


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "base core" in out
        assert "4807" in out

    def test_table3_no_paper(self, capsys):
        assert main(["table3", "--no-paper"]) == 0
        assert "(paper)" not in capsys.readouterr().out

    def test_listings(self, capsys):
        assert main(["listings"]) == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        assert "madd57hu" in out
        assert "(2 instructions)" in out

    def test_kernel_dump(self, capsys):
        assert main(["kernel", "fp_add.full.isa",
                     "--params", "toy"]) == 0
        out = capsys.readouterr().out
        assert "# kernel: fp_add.full.isa" in out
        assert "ret" in out

    def test_kernel_unknown_name(self, capsys):
        assert main(["kernel", "nonsense", "--params", "toy"]) == 2
        err = capsys.readouterr().err
        assert "available" in err
        # one actionable line, not a traceback or a listing dump
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_exchange_toy(self, capsys):
        assert main(["exchange", "--params", "toy"]) == 0
        assert "AGREED" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "-o", str(target), "--keys", "1"]) == 0
        text = target.read_text()
        assert "# Reproduction report" in text
        assert "## Table 4" in text
        assert "Critical path" in text


class TestFaultsCommand:
    """``repro faults`` and the one-line CLI error contract."""

    def test_toy_campaign_with_json_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "faults.json"
        assert main(["faults", "--params", "toy", "--n", "6",
                     "--seed", "2", "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "escaped 0" in text
        document = json.loads(out.read_text())
        assert document["seed"] == 2
        assert document["n"] == 6
        assert document["escaped"] == 0
        assert len(document["trials"]) == 6
        assert document["metrics"]["faults_injected_total"]

    def test_quiet_suppresses_table(self, tmp_path, capsys):
        out = tmp_path / "faults.json"
        assert main(["faults", "--params", "toy", "--n", "2",
                     "--seed", "1", "--quiet",
                     "--json", str(out)]) == 0
        assert capsys.readouterr().out == ""
        assert out.exists()

    @pytest.mark.parametrize("argv, needle", [
        (["faults", "--n", "0"], "--n"),
        (["faults", "--check-interval", "0"], "--check-interval"),
        (["faults", "--quiet"], "--json"),
        (["faults", "--params", "toy", "--sites", "bogus_site"],
         "unknown fault site"),
        (["faults", "--params", "csidh-512", "--n", "1"],
         "--params toy"),
        (["faults", "--params", "csidh-512", "--n", "1"],
         "--shards"),
    ])
    def test_bad_arguments_one_line_exit_2(self, argv, needle,
                                           capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert needle in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestBenchCommand:
    """``repro bench``: the engine-comparison benchmark."""

    def test_bench_all_engines_with_trajectory(self, tmp_path, capsys,
                                               monkeypatch):
        # keep the aot cold/warm phase out of the user's real cache dir
        monkeypatch.setenv("REPRO_AOT_CACHE", str(tmp_path / "aot"))
        out_path = tmp_path / "BENCH_protocol.json"
        assert main(["bench", "--params", "toy", "--engine", "all",
                     "--rounds", "1", "--batch", "8",
                     "--bench-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        for engine in ("interpreter", "replay", "jit", "aot"):
            assert engine in out
        assert "mul_batch" in out
        assert "aot first  start" in out

        import json as json_module
        document = json_module.loads(out_path.read_text())
        assert document["benchmark"] == "protocol"
        record = document["runs"][-1]
        assert record["mode"] == "engine_comparison"
        assert set(record["engines"]) \
            == {"interpreter", "replay", "jit", "aot"}
        for row in record["engines"].values():
            assert row["wall_s"] > 0
        assert record["batch"]["jit"]["n"] == 8
        # within one invocation the second phase binds the artifacts
        # the first phase just wrote
        start = record["aot_start"]
        assert start["first"]["artifact_writes"] > 0
        assert start["second"]["artifact_hits"] > 0
        assert start["second"]["compiles"] == 0

    def test_bench_single_engine_no_batch(self, capsys):
        assert main(["bench", "--params", "toy", "--engine", "replay",
                     "--rounds", "1", "--batch", "0"]) == 0
        out = capsys.readouterr().out
        assert "replay" in out
        assert "mul_batch" not in out

    @pytest.mark.parametrize("argv, needle", [
        (["bench", "--params", "toy", "--rounds", "0"], "--rounds"),
        (["bench", "--params", "toy", "--batch", "-1"], "--batch"),
        (["bench", "--params", "csidh-512"], "--params toy"),
        (["bench", "--params", "csidh-512"], "repro shard"),
    ])
    def test_bench_bad_arguments(self, argv, needle, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert needle in err
        assert "Traceback" not in err

    def test_faults_engine_flag(self, tmp_path, capsys):
        report_path = tmp_path / "campaign.json"
        assert main(["faults", "--params", "toy", "--n", "4",
                     "--engine", "jit", "--json",
                     str(report_path)]) == 0
        import json as json_module
        document = json_module.loads(report_path.read_text())
        assert document["engine"] == "jit"
        assert document["escaped"] == 0


class TestTelemetryFlags:
    """The observability surfaces: ``profile`` and ``--telemetry``."""

    def test_profile_toy_prints_span_tree(self, capsys):
        assert main(["profile", "--params", "toy"]) == 0
        out = capsys.readouterr().out
        assert "group_action" in out
        assert "isogeny[degree=" in out
        assert "hot kernels" in out
        assert "engine mix: replay=" in out

    def test_profile_exports_and_bench(self, tmp_path, capsys):
        import json

        out = tmp_path / "telemetry.json"
        bench = tmp_path / "BENCH_protocol.json"
        assert main(["profile", "--params", "toy",
                     "-o", str(out), "--bench-out", str(bench)]) == 0
        document = json.loads(out.read_text())
        assert document["spans"]["name"] == "root"
        assert document["workload"]["kind"] == "group_action"
        trajectory = json.loads(bench.read_text())
        assert trajectory["benchmark"] == "protocol"
        (run,) = trajectory["runs"]
        assert run["simulated_cycles"] \
            == document["workload"]["simulated_cycles"]

    def test_profile_csidh512_refused(self, capsys):
        assert main(["profile", "--params", "csidh-512"]) == 2
        err = capsys.readouterr().err
        assert "infeasible" in err
        assert "--params toy" in err   # actionable: names the fix
        assert "--shards" in err       # ... and the full-size path
        assert len(err.strip().splitlines()) == 1

    def test_action_telemetry_cycle_sum_invariant(self, tmp_path,
                                                  capsys):
        """The acceptance criterion: the exported span tree's per-phase
        simulated cycles sum to the reported group-action total, with
        per-isogeny-degree and per-kernel attribution."""
        import json

        out = tmp_path / "out.json"
        assert main(["action", "--params", "toy",
                     "--telemetry", str(out)]) == 0
        document = json.loads(out.read_text())
        total = document["workload"]["simulated_cycles"]

        def find(node, name):
            if node["name"] == name:
                return node
            for child in node["children"]:
                found = find(child, name)
                if found is not None:
                    return found
            return None

        action = find(document["spans"], "group_action")
        assert action is not None
        assert action["total_cycles"] == total
        phase_sum = sum(child["total_cycles"]
                        for child in action["children"])
        assert phase_sum + action["self_cycles"] == total
        degrees = {child["labels"]["degree"]
                   for child in action["children"]
                   if child["name"] == "isogeny"}
        assert degrees  # per-degree attribution present
        kernel_cycles = document["metrics"]["kernel_cycles_total"]
        assert sum(entry["value"] for entry in kernel_cycles) == total
        assert any("fp_mul" in entry["labels"]["kernel"]
                   for entry in kernel_cycles)

    def test_table4_telemetry_jsonl_round_trip(self, tmp_path,
                                               capsys):
        from repro.telemetry.export import read_jsonl

        out = tmp_path / "table4.jsonl"
        assert main(["table4", "--params", "toy",
                     "--telemetry", str(out)]) == 0
        root = read_jsonl(str(out))
        table4 = root.find("table4")
        assert table4 is not None
        measures = [node for node in table4.walk()
                    if node.name == "measure"]
        assert len(measures) == 32  # 8 operations x 4 variants
        assert table4.total_cycles > 0

    def test_report_telemetry_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        target = tmp_path / "report.md"
        assert main(["report", "--keys", "1", "-o", str(target),
                     "--telemetry", str(out)]) == 0
        document = json.loads(out.read_text())
        names = {child["name"]
                 for child in document["spans"]["children"]}
        assert "table4" in names


class TestChaosCommand:
    """``repro chaos``: the network-chaos campaign CLI."""

    def test_toy_campaign_with_json_and_bench(self, tmp_path,
                                              capsys):
        import json

        out = tmp_path / "chaos.json"
        bench = tmp_path / "BENCH_service.json"
        assert main(["chaos", "--params", "toy", "--n", "5",
                     "--seed", "2", "--timeout-s", "0.4",
                     "--json", str(out),
                     "--bench-out", str(bench)]) == 0
        text = capsys.readouterr().out
        assert "0 hung, 0 escaped" in text
        document = json.loads(out.read_text())
        assert document["seed"] == 2
        assert document["n"] == 5
        assert document["escaped"] == 0
        assert document["hung"] == 0
        assert document["recovery_rate"] == 1.0
        assert len(document["trials"]) == 5
        runs = json.loads(bench.read_text())["runs"]
        assert runs[-1]["mode"] == "chaos_load"
        assert runs[-1]["escaped"] == 0

    def test_quiet_suppresses_table(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert main(["chaos", "--params", "toy", "--n", "2",
                     "--seed", "1", "--timeout-s", "0.4",
                     "--kinds", "drop_pre,duplicate",
                     "--quiet", "--json", str(out)]) == 0
        assert capsys.readouterr().out == ""
        assert out.exists()

    @pytest.mark.parametrize("argv, needle", [
        (["chaos", "--n", "0"], "--n"),
        (["chaos", "--quiet"], "--json"),
        (["chaos", "--params", "toy", "--kinds", "packet_storm"],
         "unknown chaos kind"),
        (["chaos", "--params", "toy", "--retries", "0"],
         "at least one retry"),
        (["chaos", "--params", "toy", "--timeout-s", "0"],
         "timeout_s"),
    ])
    def test_bad_arguments_one_line_exit_2(self, argv, needle,
                                           capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert needle in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestResilienceFlags:
    """The resilience knobs on ``repro serve`` / ``repro load``."""

    def test_serve_grace_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--grace-s", "2.5"])
        assert args.grace_s == 2.5

    def test_serve_negative_grace_rejected(self, capsys):
        assert main(["serve", "--grace-s", "-1"]) == 2
        assert "--grace-s" in capsys.readouterr().err

    def test_load_timeout_flag_parses(self):
        args = build_parser().parse_args(
            ["load", "--timeout-s", "7"])
        assert args.timeout_s == 7.0

    def test_load_negative_timeout_rejected(self, capsys):
        assert main(["load", "--timeout-s", "-3"]) == 2
        assert "--timeout-s" in capsys.readouterr().err

    def test_load_reports_deadline_rejections(self, capsys):
        assert main(["load", "--params", "toy", "--exchanges", "2",
                     "--concurrency", "2", "--tenants", "1",
                     "--engine", "replay", "--no-trace",
                     "--timeout-s", "30"]) == 0
        assert "deadline" in capsys.readouterr().out
