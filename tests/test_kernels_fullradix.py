"""Functional verification of the full-radix assembly kernels.

Every kernel is executed on the simulator and compared against its
golden reference for random, boundary and structured operands.  The
``check=True`` path inside the runner does the comparison; a mismatch
raises.
"""

from __future__ import annotations

import random

import pytest

from repro.kernels.runner import KernelRunner
from repro.kernels.spec import VARIANT_FULL_ISA, VARIANT_FULL_ISE

VARIANTS = (VARIANT_FULL_ISA, VARIANT_FULL_ISE)


@pytest.fixture(scope="module")
def runners(kernels512):
    cache: dict[str, KernelRunner] = {}

    def get(name: str) -> KernelRunner:
        if name not in cache:
            cache[name] = KernelRunner(kernels512[name])
        return cache[name]

    return get


def _boundary_values(p: int) -> list[int]:
    return [0, 1, 2, p - 1, p - 2, (1 << 256) - 1, 1 << 255,
            (1 << 510) + 12345]


@pytest.mark.parametrize("variant", VARIANTS)
class TestFullRadixKernels:
    def test_int_mul_random(self, runners, variant, rng, p512):
        runner = runners(f"int_mul.{variant}")
        for _ in range(6):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == a * b

    def test_int_mul_boundaries(self, runners, variant, p512):
        runner = runners(f"int_mul.{variant}")
        for a in _boundary_values(p512):
            assert runner.run(a, p512 - 1).value == a * (p512 - 1)
            assert runner.run(a, 0).value == 0

    def test_int_mul_max_operands(self, runners, variant):
        runner = runners(f"int_mul.{variant}")
        top = (1 << 512) - 1
        # inputs outside [0,p) are legal for the raw multiplier
        assert runner.run(top, top).value == top * top

    def test_int_sqr_matches_mul(self, runners, variant, rng, p512):
        sqr = runners(f"int_sqr.{variant}")
        for _ in range(6):
            a = rng.randrange(p512)
            assert sqr.run(a).value == a * a

    def test_mont_redc(self, runners, variant, rng, p512, contexts512):
        runner = runners(f"mont_redc.{variant}")
        ctx = contexts512[0]
        for _ in range(6):
            t = rng.randrange(p512) * rng.randrange(p512)
            value = runner.run(t).value
            assert value < 2 * p512
            assert (value * ctx.r) % p512 == t % p512

    def test_fast_reduce_swap(self, runners, variant, rng, p512):
        runner = runners(f"fast_reduce.{variant}")
        for a in (0, 1, p512 - 1, p512, p512 + 1, 2 * p512 - 1):
            assert runner.run(a).value == a % p512
        for _ in range(4):
            a = rng.randrange(2 * p512)
            assert runner.run(a).value == a % p512

    def test_fast_reduce_addition_ablation(self, runners, variant, rng,
                                           p512):
        runner = runners(f"fast_reduce_add.{variant}")
        for _ in range(4):
            a = rng.randrange(2 * p512)
            assert runner.run(a).value == a % p512

    def test_fp_add(self, runners, variant, rng, p512):
        runner = runners(f"fp_add.{variant}")
        for a, b in [(0, 0), (p512 - 1, p512 - 1), (p512 - 1, 1)]:
            assert runner.run(a, b).value == (a + b) % p512
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a + b) % p512

    def test_fp_sub(self, runners, variant, rng, p512):
        runner = runners(f"fp_sub.{variant}")
        for a, b in [(0, 0), (0, 1), (1, p512 - 1), (p512 - 1, 0)]:
            assert runner.run(a, b).value == (a - b) % p512
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a - b) % p512

    def test_fp_mul_composite(self, runners, variant, rng, p512,
                              contexts512):
        runner = runners(f"fp_mul.{variant}")
        ctx = contexts512[0]
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == ctx.montgomery_multiply(a, b)

    def test_fp_sqr_composite(self, runners, variant, rng, p512,
                              contexts512):
        runner = runners(f"fp_sqr.{variant}")
        ctx = contexts512[0]
        for _ in range(4):
            a = rng.randrange(p512)
            assert runner.run(a).value == ctx.montgomery_multiply(a, a)


class TestIseBenefit:
    """Static structure assertions matching the paper's narrative."""

    def test_ise_halves_mul_instructions(self, kernels512):
        isa = kernels512["int_mul.full.isa"]
        ise = kernels512["int_mul.full.ise"]
        isa_macs = isa.static_counts["mulhu"]
        assert isa_macs == 64  # 8x8 product scanning
        assert ise.static_counts["maddhu"] == 64
        # Listing 1 (8 instr) vs Listing 3 (4 instr) per MAC
        assert sum(ise.static_counts.values()) \
            < sum(isa.static_counts.values()) * 0.65

    def test_full_ise_sqr_reuses_mul_flow(self, kernels512):
        """Table 4: full-radix ISE mul and sqr cost the same."""
        mul = kernels512["int_mul.full.ise"]
        sqr = kernels512["int_sqr.full.ise"]
        assert sum(mul.static_counts.values()) - \
            sum(sqr.static_counts.values()) == 8  # only the B loads

    def test_fp_ops_identical_for_isa_and_ise(self, kernels512):
        """Full-radix ISEs do not help add/sub/fast-reduce (Table 4
        shows identical cycles); the generated code must be identical."""
        for op in ("fp_add", "fp_sub", "fast_reduce"):
            isa_source = kernels512[f"{op}.full.isa"].source
            ise_source = kernels512[f"{op}.full.ise"].source
            assert isa_source.splitlines()[1:] \
                == ise_source.splitlines()[1:]

    def test_no_custom_mnemonics_in_isa_kernels(self, kernels512):
        for name, kernel in kernels512.items():
            if kernel.variant.endswith(".isa"):
                for custom in ("maddlu", "maddhu", "madd57lu",
                               "madd57hu", "cadd", "sraiadd"):
                    assert custom not in kernel.static_counts, name
