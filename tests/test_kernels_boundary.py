"""Boundary tests around the resident/streaming register-regime switch.

The generators flip from register-resident to operand-streaming code at
a register-demand threshold; these tests exercise moduli right at the
boundary widths (where off-by-one bugs in the mode selection would
bite), for every operation.  Kernels only require an odd modulus, so
the test moduli need not be prime.
"""

from __future__ import annotations

import random

import pytest

from repro.kernels.registry import build_kernel
from repro.mpi.montgomery import MontgomeryContext
from repro.mpi.representation import Radix
from repro.kernels.runner import KernelRunner

#: deterministic odd moduli of n full-radix digits (bit length 64n - 1)
_SEED_RNG = random.Random(0xB0DA)


def _modulus(bits: int) -> int:
    value = (1 << (bits - 1)) | _SEED_RNG.getrandbits(bits - 2) | 1
    return value


# full radix: resident mode holds 2l+5 <= 25 -> l <= 10; streaming above
FULL_BOUNDARY_LIMBS = (9, 10, 11, 12)
# reduced radix: resident 2l+7 <= 25 -> l <= 9; streaming above
REDUCED_BOUNDARY_LIMBS = (8, 9, 10, 11)


@pytest.mark.parametrize("limbs", FULL_BOUNDARY_LIMBS)
@pytest.mark.parametrize("op", ["int_mul", "int_sqr", "mont_redc",
                                "fp_add", "fp_sub", "fast_reduce"])
def test_full_radix_boundary(limbs, op, rng):
    bits = 64 * limbs - 1
    ctx = MontgomeryContext(_modulus(bits), Radix(64, limbs))
    for variant in ("full.isa", "full.ise"):
        kernel = build_kernel(op, variant, ctx)
        runner = KernelRunner(kernel)
        for _ in range(2):
            runner.run(*kernel.sampler(rng))  # golden-checked


@pytest.mark.parametrize("limbs", REDUCED_BOUNDARY_LIMBS)
@pytest.mark.parametrize("op", ["int_mul", "int_sqr", "mont_redc",
                                "fp_add", "fp_sub", "fast_reduce"])
def test_reduced_radix_boundary(limbs, op, rng):
    bits = 57 * limbs - 1
    ctx = MontgomeryContext(_modulus(bits), Radix(57, limbs))
    for variant in ("reduced.isa", "reduced.ise"):
        kernel = build_kernel(op, variant, ctx)
        runner = KernelRunner(kernel)
        for _ in range(2):
            runner.run(*kernel.sampler(rng))


def test_mode_switch_is_where_expected():
    """Pin the exact limb counts where streaming engages (a change in
    the register pool or the demand formula should fail this test, not
    silently alter every cycle number)."""
    resident = build_kernel(
        "int_mul", "full.isa",
        MontgomeryContext(_modulus(64 * 10 - 1), Radix(64, 10)))
    streaming = build_kernel(
        "int_mul", "full.isa",
        MontgomeryContext(_modulus(64 * 11 - 1), Radix(64, 11)))
    # resident: one ld per operand digit; streaming: ~l^2 B loads
    assert resident.static_counts["ld"] == 20
    assert streaming.static_counts["ld"] > 11 * 11


def test_fp_mul_composite_at_boundary(rng):
    """The composite kernel crosses the boundary in all three phases."""
    for limbs in (10, 11):
        ctx = MontgomeryContext(_modulus(64 * limbs - 1),
                                Radix(64, limbs))
        kernel = build_kernel("fp_mul", "full.isa", ctx)
        KernelRunner(kernel).run(*kernel.sampler(rng))
