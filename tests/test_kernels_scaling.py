"""Tests for the operand-streaming (long-width) kernel code paths."""

from __future__ import annotations

import pytest

from repro.csidh.parameters import csidh_1024_like, synthesize_parameters
from repro.kernels.registry import build_kernel, make_contexts
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import ALL_VARIANTS


@pytest.fixture(scope="module")
def p1024():
    return csidh_1024_like().p


@pytest.fixture(scope="module")
def contexts1024(p1024):
    return make_contexts(p1024)


class TestParameterSynthesis:
    def test_1024_like_shape(self, p1024):
        assert 1016 <= p1024.bit_length() <= 1026
        assert p1024 % 8 == 3

    def test_synthesize_small(self):
        params = synthesize_parameters(6, max_exponent=1)
        assert params.num_primes == 6
        params.validate()

    def test_synthesize_rejects_tiny(self):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            synthesize_parameters(1)


class TestStreamingKernels:
    """All four variants, functional verification at 16/18 limbs."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_int_mul(self, contexts1024, rng, p1024, variant):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        kernel = build_kernel("int_mul", variant, ctx)
        runner = KernelRunner(kernel)
        for _ in range(2):
            a, b = rng.randrange(p1024), rng.randrange(p1024)
            assert runner.run(a, b).value == a * b

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_int_sqr(self, contexts1024, rng, p1024, variant):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        kernel = build_kernel("int_sqr", variant, ctx)
        runner = KernelRunner(kernel)
        a = rng.randrange(p1024)
        assert runner.run(a).value == a * a

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_mont_redc(self, contexts1024, rng, p1024, variant):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        kernel = build_kernel("mont_redc", variant, ctx)
        runner = KernelRunner(kernel)
        t = rng.randrange(p1024) * rng.randrange(p1024)
        value = runner.run(t).value
        assert value < 2 * p1024
        assert (value * ctx.r) % p1024 == t % p1024

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("op", ["fp_add", "fp_sub", "fast_reduce"])
    def test_linear_ops(self, contexts1024, rng, p1024, variant, op):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        kernel = build_kernel(op, variant, ctx)
        runner = KernelRunner(kernel)
        values = kernel.sampler(rng)
        runner.run(*values)  # golden-checked internally

    @pytest.mark.parametrize("variant", ["full.isa", "reduced.ise"])
    def test_fp_mul_composite(self, contexts1024, rng, p1024, variant):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        kernel = build_kernel("fp_mul", variant, ctx)
        runner = KernelRunner(kernel)
        a, b = rng.randrange(p1024), rng.randrange(p1024)
        assert runner.run(a, b).value == ctx.montgomery_multiply(a, b)

    def test_streaming_mode_actually_engaged(self, contexts1024):
        """The 1024-bit mul must contain per-MAC operand loads (the
        streaming signature): many more loads than the resident mode."""
        kernel = build_kernel("int_mul", "full.isa", contexts1024[0])
        limbs = contexts1024[0].radix.limbs
        assert kernel.static_counts["ld"] > limbs * limbs  # l^2 B loads

    def test_512_still_resident(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        assert kernel.static_counts["ld"] == 16  # 2 x 8 operand loads


class TestWidthLimits:
    def test_too_wide_raises(self):
        """Widths beyond the streaming modes' register budget must fail
        loudly, not generate broken code."""
        from repro.errors import KernelError, ReproError
        from repro.mpi.montgomery import MontgomeryContext
        from repro.mpi.representation import Radix

        # 28 limbs full radix (CSIDH-1792 scale): A alone + accumulators
        # exceed the pool
        big_prime = (1 << 1790) + 1731  # any odd number works here
        ctx = MontgomeryContext(big_prime, Radix(64, 28))
        with pytest.raises(ReproError):
            build_kernel("int_mul", "full.isa", ctx)
