"""Cross-module property-based tests (hypothesis).

These exercise whole-pipeline invariants rather than single functions:
random instruction sequences surviving assemble/encode/decode loops,
kernels matching big-integer oracles on adversarial operands, and the
timing model's monotonicity properties.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.ise import REDUCED_RADIX_ISA
from repro.kernels.runner import KernelRunner
from repro.rv64.assembler import assemble
from repro.rv64.disassembler import format_instruction
from repro.rv64.encoding import Decoder, encode_instruction
from repro.rv64.isa import BASE_ISA, Instruction
from repro.rv64.machine import Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel

REG = st.integers(min_value=0, max_value=31)
# executed programs end in `ret`, so ra (x1) must not be clobbered
REG_DST = REG.map(lambda r: 3 if r == 1 else r)
SHAMT = st.integers(min_value=0, max_value=63)
IMM12 = st.integers(min_value=-2048, max_value=2047)

_R_MNEMONICS = ("add", "sub", "and", "or", "xor", "sltu", "slt",
                "mul", "mulhu", "sll", "srl", "sra")
_I_MNEMONICS = ("addi", "andi", "ori", "xori", "sltiu")


@st.composite
def random_alu_instruction(draw):
    if draw(st.booleans()):
        mnemonic = draw(st.sampled_from(_R_MNEMONICS))
        return Instruction(mnemonic, rd=draw(REG_DST), rs1=draw(REG),
                           rs2=draw(REG))
    mnemonic = draw(st.sampled_from(_I_MNEMONICS))
    return Instruction(mnemonic, rd=draw(REG_DST), rs1=draw(REG),
                       imm=draw(IMM12))


@st.composite
def random_program(draw, max_length=20):
    length = draw(st.integers(1, max_length))
    return [draw(random_alu_instruction()) for _ in range(length)]


class TestEncodingPipeline:
    @settings(max_examples=60)
    @given(random_program())
    def test_encode_decode_fixpoint(self, program):
        decoder = Decoder(BASE_ISA)
        for ins in program:
            word = encode_instruction(BASE_ISA, ins)
            assert decoder.decode(word) == ins

    @settings(max_examples=40)
    @given(random_program())
    def test_disassemble_reassemble_fixpoint(self, program):
        text = "\n".join(
            format_instruction(BASE_ISA, ins) for ins in program)
        assert assemble(text, BASE_ISA).instructions == program

    @settings(max_examples=40)
    @given(random_program())
    def test_execution_equals_reexecution(self, program):
        """Determinism: two machines running the same image agree on
        all of the architectural state."""
        results = []
        for _ in range(2):
            machine = Machine(BASE_ISA)
            entry = machine.load_program(
                program + [Instruction("jalr", rd=0, rs1=1, imm=0)])
            machine.regs["a0"] = 0xDEADBEEF
            machine.run(entry)
            results.append(machine.regs.snapshot())
        assert results[0] == results[1]


class TestTimingProperties:
    @settings(max_examples=30)
    @given(random_program())
    def test_cycles_at_least_instructions(self, program):
        machine = Machine(BASE_ISA, pipeline=PipelineModel())
        entry = machine.load_program(
            program + [Instruction("jalr", rd=0, rs1=1, imm=0)])
        result = machine.run(entry)
        assert result.cycles >= result.instructions_retired

    @settings(max_examples=20)
    @given(random_program())
    def test_cycles_monotone_in_mul_latency(self, program):
        cycles = []
        for latency in (1, 3, 6):
            machine = Machine(BASE_ISA, pipeline=PipelineModel(
                PipelineConfig(mul_latency=latency)))
            entry = machine.load_program(
                program + [Instruction("jalr", rd=0, rs1=1, imm=0)])
            cycles.append(machine.run(entry).cycles)
        assert cycles == sorted(cycles)

    @settings(max_examples=20)
    @given(random_program())
    def test_timing_does_not_change_architecture(self, program):
        """Attaching a pipeline model never changes results."""
        snapshots = []
        for pipeline in (None, PipelineModel()):
            machine = Machine(BASE_ISA, pipeline=pipeline)
            entry = machine.load_program(
                program + [Instruction("jalr", rd=0, rs1=1, imm=0)])
            machine.run(entry)
            snapshots.append(machine.regs.snapshot())
        assert snapshots[0] == snapshots[1]


class TestKernelOracles:
    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_fp_mul_oracle_random(self, kernels512, data):
        kernel = kernels512["fp_mul.reduced.ise"]
        p = kernel.context.modulus
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1))
        KernelRunner(kernel).run(a, b)  # golden-checked internally

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_fp_add_sub_inverse(self, kernels512, data):
        """(a + b) - b == a via two kernels composed."""
        p = kernels512["fp_add.full.isa"].context.modulus
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1))
        add = KernelRunner(kernels512["fp_add.full.isa"])
        sub = KernelRunner(kernels512["fp_sub.full.isa"])
        assert sub.run(add.run(a, b).value, b).value == a

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_mul_commutes(self, kernels512, data):
        kernel = kernels512["int_mul.reduced.isa"]
        p = kernel.context.modulus
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1))
        runner = KernelRunner(kernel)
        assert runner.run(a, b).value == runner.run(b, a).value

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_sqr_equals_mul_self(self, kernels512, data):
        p = kernels512["int_sqr.full.ise"].context.modulus
        a = data.draw(st.integers(0, p - 1))
        sqr = KernelRunner(kernels512["int_sqr.full.ise"])
        mul = KernelRunner(kernels512["int_mul.full.ise"])
        assert sqr.run(a).value == mul.run(a, a).value


class TestReducedIsaConsistency:
    @settings(max_examples=30)
    @given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
    def test_sraiadd_equals_srai_plus_add(self, x, y):
        """The fused instruction must equal its two-instruction
        expansion for every input."""
        fused = Machine(REDUCED_RADIX_ISA)
        entry = fused.load_program(assemble(
            "sraiadd a0, a1, a2, 57\nret", REDUCED_RADIX_ISA))
        fused.regs["a1"], fused.regs["a2"] = x, y
        fused.run(entry)

        split = Machine(BASE_ISA)
        entry = split.load_program(assemble(
            "srai t0, a2, 57\nadd a0, a1, t0\nret", BASE_ISA))
        split.regs["a1"], split.regs["a2"] = x, y
        split.run(entry)
        assert fused.regs["a0"] == split.regs["a0"]


class TestDecoderFuzzing:
    @settings(max_examples=300)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_is_sound(self, word):
        """For any 32-bit word: decoding either raises EncodingError or
        yields an instruction that re-encodes to a word decoding to the
        same instruction (decode o encode is idempotent on its image)."""
        from repro.errors import EncodingError
        from repro.rv64.encoding import encode_instruction

        decoder = Decoder(BASE_ISA)
        try:
            ins = decoder.decode(word)
        except EncodingError:
            return
        word2 = encode_instruction(BASE_ISA, ins)
        assert decoder.decode(word2) == ins

    @settings(max_examples=150)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_custom_decoder_sound(self, word):
        from repro.errors import EncodingError
        from repro.rv64.encoding import encode_instruction

        decoder = Decoder(REDUCED_RADIX_ISA)
        try:
            ins = decoder.decode(word)
        except EncodingError:
            return
        word2 = encode_instruction(REDUCED_RADIX_ISA, ins)
        assert decoder.decode(word2) == ins


class TestSchedulerProperties:
    @settings(max_examples=25)
    @given(random_program(max_length=12))
    def test_scheduling_preserves_results(self, program):
        """Any straight-line ALU program: scheduled execution produces
        identical architectural state."""
        from repro.analysis.schedule import schedule

        ret = Instruction("jalr", rd=0, rs1=1, imm=0)
        snapshots = []
        for instructions in (program + [ret],
                             schedule(program + [ret], BASE_ISA)):
            machine = Machine(BASE_ISA)
            entry = machine.load_program(instructions)
            machine.regs["a0"] = 7
            machine.regs["a1"] = 13
            machine.run(entry)
            snapshots.append(machine.regs.snapshot())
        assert snapshots[0] == snapshots[1]

    @settings(max_examples=25)
    @given(random_program(max_length=12))
    def test_scheduling_never_hurts_by_much(self, program):
        """The scheduler may reorder but never adds instructions, so
        cycles can only improve or stay within the issue bound."""
        from repro.analysis.schedule import schedule

        ret = Instruction("jalr", rd=0, rs1=1, imm=0)
        cycles = []
        for instructions in (program + [ret],
                             schedule(program + [ret], BASE_ISA)):
            machine = Machine(BASE_ISA, pipeline=PipelineModel())
            entry = machine.load_program(instructions)
            cycles.append(machine.run(entry).cycles)
        naive, scheduled = cycles
        assert scheduled <= naive + 3  # greedy slack bound


class TestToyKernelFuzzing:
    """Exhaustive-ish kernel fuzzing on the 1-limb toy field (runs are
    ~60 instructions, so hypothesis can afford many examples)."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_all_ops_all_variants(self, toy_kernels, data):
        name = data.draw(st.sampled_from(sorted(toy_kernels)))
        kernel = toy_kernels[name]
        p = kernel.context.modulus
        values = tuple(
            data.draw(st.integers(0, p - 1))
            for _ in kernel.input_limbs
        )
        if kernel.operation in ("fast_reduce", "fast_reduce_add"):
            values = (data.draw(st.integers(0, 2 * p - 1)),)
        if kernel.operation == "mont_redc":
            values = (data.draw(st.integers(0, p - 1))
                      * data.draw(st.integers(0, p - 1)),)
        from tests.conftest import _toy_runner_cache

        _toy_runner_cache(kernel).run(*values)  # golden-checked
