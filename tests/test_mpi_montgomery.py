"""Tests for the Montgomery reference model (constants, SPS reduction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.mpi.arithmetic import product_scanning_mul
from repro.mpi.montgomery import MontgomeryContext, invert_mod
from repro.mpi.representation import (
    CSIDH512_FULL,
    CSIDH512_REDUCED,
    Radix,
)


class TestInvertMod:
    @given(st.integers(min_value=3, max_value=10**6)
           .filter(lambda n: n % 2 == 1),
           st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, modulus, value):
        from math import gcd
        if gcd(value, modulus) != 1:
            with pytest.raises(ParameterError):
                invert_mod(value, modulus)
        else:
            inv = invert_mod(value, modulus)
            assert (value * inv) % modulus == 1

    def test_not_invertible(self):
        with pytest.raises(ParameterError):
            invert_mod(6, 9)


class TestContext(object):
    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(100, CSIDH512_FULL)

    def test_rejects_oversized_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryContext((1 << 520) + 1, CSIDH512_FULL)

    def test_constants(self, p512):
        ctx = MontgomeryContext(p512, CSIDH512_FULL)
        assert ctx.r == 1 << 512
        assert ctx.r_mod_p == (1 << 512) % p512
        assert ctx.r2_mod_p == pow(1 << 512, 2, p512)
        # n0' * p == -1 mod 2^64
        assert (ctx.n0_inv * p512) % (1 << 64) == (1 << 64) - 1

    def test_n0_reduced_radix(self, p512):
        ctx = MontgomeryContext(p512, CSIDH512_REDUCED)
        assert (ctx.n0_inv * p512) % (1 << 57) == (1 << 57) - 1

    def test_conversions_roundtrip(self, p512):
        ctx = MontgomeryContext(p512, CSIDH512_FULL)
        for value in (0, 1, 12345, p512 - 1):
            assert ctx.from_montgomery(ctx.to_montgomery(value)) == value


class TestSpsReduction:
    @pytest.fixture(params=["full", "reduced"])
    def ctx(self, request, p512):
        radix = CSIDH512_FULL if request.param == "full" \
            else CSIDH512_REDUCED
        return MontgomeryContext(p512, radix)

    @settings(max_examples=15)
    @given(data=st.data())
    def test_reduction_value(self, ctx, data):
        p = ctx.modulus
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1))
        t = ctx.radix.to_limbs(a * b, limbs=2 * ctx.radix.limbs)
        result = ctx.sps_reduce(t)
        value = ctx.radix.from_limbs(result.limbs)
        r_inv = invert_mod(ctx.r, p)
        assert value % p == (a * b * r_inv) % p
        assert value < 2 * p  # [0, 2p) postcondition

    def test_zero_reduces_to_zero(self, ctx):
        t = [0] * (2 * ctx.radix.limbs)
        assert ctx.radix.from_limbs(ctx.sps_reduce(t).limbs) == 0

    def test_wrong_length_rejected(self, ctx):
        with pytest.raises(ParameterError):
            ctx.sps_reduce([0] * 3)

    @settings(max_examples=15)
    @given(data=st.data())
    def test_montgomery_multiply_matches_plain(self, ctx, data):
        p = ctx.modulus
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1))
        assert ctx.verify_against_plain(a, b)

    def test_montgomery_multiply_rejects_unreduced(self, ctx):
        with pytest.raises(ParameterError):
            ctx.montgomery_multiply(ctx.modulus, 1)

    def test_mac_work_count(self, p512):
        """SPS reduction costs exactly l^2 MACs (the l q-digit products
        are plain single-word muls, tallied separately)."""
        ctx = MontgomeryContext(p512, CSIDH512_FULL)
        l = ctx.radix.limbs
        t = product_scanning_mul(
            ctx.radix, ctx.radix.to_limbs(123), ctx.radix.to_limbs(456))
        work = ctx.sps_reduce(t.limbs).work
        assert work.macs == l * l


class TestSmallModulus:
    """Tiny-field sanity (exercises edge paths like l=1)."""

    def test_single_limb(self):
        radix = Radix(16, 1)
        ctx = MontgomeryContext(0xFFF1, radix)
        for a, b in ((0, 0), (1, 1), (1234, 4567), (0xFFF0, 0xFFF0)):
            assert ctx.verify_against_plain(a, b)
