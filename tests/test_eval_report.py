"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.csidh.parameters import csidh_mini
from repro.eval.report import ReproductionReport, generate_report


@pytest.fixture(scope="module")
def report():
    # mini params keep the group-action instrumentation fast; the
    # Table-4 side always uses the real CSIDH-512 kernels
    return generate_report(params=csidh_mini(), keys=1, seed=2)


class TestReport:
    def test_type(self, report):
        assert isinstance(report, ReproductionReport)

    def test_markdown_sections(self, report):
        text = report.to_markdown()
        for heading in ("# Reproduction report", "## Table 3",
                        "## Table 4", "## Group action",
                        "## Listings", "## Critical path"):
            assert heading in text

    def test_table3_contains_both_cores(self, report):
        assert "full-radix" in report.table3_markdown
        assert "reduced-radix" in report.table3_markdown
        assert "4807 / 4807" in report.table3_markdown

    def test_table4_has_paper_columns(self, report):
        assert "Fp-multiplication" in report.table4_markdown
        assert "/" in report.table4_markdown  # ours/paper cells

    def test_group_action_speedups(self, report):
        assert report.group_action.speedup["full.isa"] == \
            pytest.approx(1.0)
        assert "1.71x" in report.group_action_markdown  # paper column

    def test_listings_counts(self, report):
        text = report.listings_markdown
        assert "| full-radix MAC | 8 | 4 |" in text
        assert "| reduced-radix MAC | 6 | 2 |" in text
        assert "| carry propagation | 3 | 2 |" in text

    def test_timing_verdict(self, report):
        assert "does NOT extend" in report.timing_markdown

    def test_markdown_tables_well_formed(self, report):
        for section in (report.table3_markdown, report.table4_markdown,
                        report.group_action_markdown):
            lines = [line for line in section.splitlines()
                     if line.startswith("|")]
            widths = {line.count("|") for line in lines}
            assert len(widths) == 1  # consistent column counts
