"""Regenerate ``tests/golden_cycles.json``.

Run after an *intentional* change to the pipeline model or the kernel
generators::

    PYTHONPATH=src python -m tests.differential.generate_golden

The snapshot pins the static cycle count of every generated kernel for
the toy and CSIDH-512 moduli on the default Rocket-class pipeline —
the numbers behind the paper's Table 4.  Straight-line kernels have
data-independent timing, so one number per kernel is the whole story;
:func:`repro.kernels.runner.KernelRunner.static_cycles` reads it off
the compiled replay trace without executing anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.csidh.parameters import csidh_512, csidh_toy
from repro.kernels.registry import cached_kernels, cached_runner

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden_cycles.json"

#: Parameter sets pinned by the snapshot (name -> modulus factory).
PARAMETER_SETS = {
    "csidh-toy": csidh_toy,
    "csidh-512": csidh_512,
}


def collect_cycles() -> dict:
    """Current per-kernel static cycle counts, ready to serialise."""
    moduli = {}
    for set_name, factory in PARAMETER_SETS.items():
        p = factory().p
        moduli[set_name] = {
            name: cached_runner(p, name).static_cycles()
            for name in sorted(cached_kernels(p))
        }
    return {
        "_comment": (
            "Static cycle counts per generated kernel on the default "
            "Rocket-class pipeline (in-order single-issue, full "
            "forwarding, no caches).  Regenerate with: PYTHONPATH=src "
            "python -m tests.differential.generate_golden"
        ),
        "moduli": moduli,
    }


def main() -> None:
    snapshot = collect_cycles()
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    total = sum(len(v) for v in snapshot["moduli"].values())
    print(f"wrote {GOLDEN_PATH} ({total} kernels)")


if __name__ == "__main__":
    main()
