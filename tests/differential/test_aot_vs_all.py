"""The aot tier must be architecturally and cycle-count identical to
the interpreter, the replay engine AND the jit tier, for every kernel.

Same discipline as ``test_jit_vs_interpreter.py``, one tier up: each
check runs the *same* runner (same machine, same assembled image)
through all four engines and compares result limbs, retired
instructions, cycle counts and the complete final register file.  The
golden cycle snapshot (``tests/golden_cycles.json``) is additionally
asserted against aot-engine measurements — fusing whole kernels into
straight-line Python must not move a single pinned number.

On top of the four-way equivalence this module covers the persistent
artifact cache: a second runner construction against a warm cache
binds the stored entry thunk without re-tracing, and a corrupted
artifact file is deleted and silently recompiled.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest

from repro import telemetry
from repro.csidh.parameters import csidh_toy
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    ALL_VARIANTS,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.artifacts import cache_dir

from tests.differential.generate_golden import GOLDEN_PATH
from tests.helpers import boundary_operand_values

ENGINES = ("interpreter", "replay", "jit", "aot")

FIELD_OPERATIONS = (OP_FP_MUL, OP_FP_SQR, OP_FP_ADD, OP_FP_SUB)
FIELD_KERNELS = [
    f"{operation}.{variant}"
    for operation in FIELD_OPERATIONS
    for variant in ALL_VARIANTS
]

_RUNNERS: dict[str, KernelRunner] = {}


@pytest.fixture(scope="module", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Keep the suite's artifacts out of the user's real cache dir."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_AOT_CACHE",
              str(tmp_path_factory.mktemp("aot-artifacts")))
    yield
    mp.undo()


def runner_for(name: str) -> KernelRunner:
    """Module-lifetime runner pool (assembly is per-kernel pure)."""
    if name not in _RUNNERS:
        kernels = cached_kernels(csidh_toy().p)
        _RUNNERS[name] = KernelRunner(kernels[name], engine="aot")
    return _RUNNERS[name]


def assert_four_way_exact(runner: KernelRunner, values) -> None:
    """One differential observation across all four engines."""
    observed = {}
    for engine in ENGINES:
        run = runner.run(*values, check=False, engine=engine)
        regs = list(runner.machine.state.regs._regs)
        observed[engine] = (run.limbs, run.value, run.instructions,
                            run.cycles, regs)

    name = runner.kernel.name
    interp = observed["interpreter"]
    for engine in ENGINES[1:]:
        got = observed[engine]
        assert got[0] == interp[0], (
            f"{name}: {engine} result limbs diverge on {values}")
        assert got[1] == interp[1], (
            f"{name}: {engine} value diverges on {values}")
        assert got[2] == interp[2], (
            f"{name}: {engine} retired-instruction count diverges "
            f"({got[2]} vs {interp[2]})")
        assert got[3] == interp[3], (
            f"{name}: {engine} cycle count diverges "
            f"({got[3]} vs {interp[3]})")
        assert got[4] == interp[4], (
            f"{name}: {engine} final register state diverges on "
            f"{values}")


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_aot_supported(name):
    """All 16 field-op kernels fuse into aot functions."""
    runner = runner_for(name)
    assert runner.machine.aot_supported(runner.entry)
    assert runner._aot_thunk is not None


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_boundary_operands(name):
    """Exhaustive cartesian boundary sweep, four engines per point."""
    runner = runner_for(name)
    per_operand = boundary_operand_values(runner.kernel,
                                          clip_to_domain=False)
    for values in itertools.product(*per_operand):
        assert_four_way_exact(runner, values)


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_random_operands(name):
    """Seeded random sweep drawn from each kernel's own sampler."""
    runner = runner_for(name)
    rng = random.Random(0x717)
    for _ in range(15):
        assert_four_way_exact(runner, runner.kernel.sampler(rng))


def test_every_generated_kernel_is_aot_exact():
    """Beyond the field ops: the full kernel matrix (integer multiply,
    Montgomery reduction, ablation variants) fuses exactly."""
    rng = random.Random(0x717)
    for name in cached_kernels(csidh_toy().p):
        runner = runner_for(name)
        assert runner.machine.aot_supported(runner.entry), name
        for _ in range(3):
            assert_four_way_exact(runner, runner.kernel.sampler(rng))


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_aot_histogram_identical(variant):
    """Dynamic mnemonic histograms agree across the fused tier."""
    runner = runner_for(f"{OP_FP_MUL}.{variant}")
    machine = runner.machine
    machine.collect_histogram = True
    try:
        machine.reset()
        interp = machine.run(runner.entry)
        machine.reset()
        fused = machine.run(runner.entry, engine="aot")
        assert fused.engine == "aot"
        assert sum(fused.histogram.values()) \
            == fused.instructions_retired
        assert fused.histogram == interp.histogram
    finally:
        machine.collect_histogram = False


def test_aot_cycles_match_golden_snapshot():
    """aot-engine cycle counts equal the pinned golden snapshot —
    whole-kernel fusion cannot move the paper's headline numbers."""
    golden = json.loads(GOLDEN_PATH.read_text())["moduli"]["csidh-toy"]
    rng = random.Random(0x717)
    for name, want in golden.items():
        runner = runner_for(name)
        run = runner.run(*runner.kernel.sampler(rng), check=False,
                         engine="aot")
        assert run.cycles == want, (
            f"{name}: aot cycles {run.cycles} != golden {want}")


def test_aot_entry_is_compiled_once_and_reused():
    runner = runner_for(f"{OP_FP_ADD}.reduced.ise")
    machine = runner.machine
    rng = random.Random(2)
    entry_first = machine._aot_entry_cache[runner.entry]
    thunk_first = runner._aot_thunk
    runner.run(*runner.kernel.sampler(rng), check=False, engine="aot")
    runner.run(*runner.kernel.sampler(rng), check=False, engine="aot")
    assert machine._aot_entry_cache[runner.entry] is entry_first
    assert runner._aot_thunk is thunk_first


def test_batch_matches_looped_singles():
    """run_batch is semantically the scalar loop, on every engine."""
    runner = runner_for(f"{OP_FP_MUL}.reduced.ise")
    rng = random.Random(5)
    sets = [runner.kernel.sampler(rng) for _ in range(8)]
    looped = [runner.run(*v, check=False, engine="interpreter")
              for v in sets]
    for engine in ENGINES:
        batched = runner.run_batch(sets, check=False, engine=engine)
        assert [r.value for r in batched] == [r.value for r in looped]
        assert [r.limbs for r in batched] == [r.limbs for r in looped]
        assert [r.cycles for r in batched] == [r.cycles for r in looped]
        assert ([r.instructions for r in batched]
                == [r.instructions for r in looped])


def _fresh_runner(kernels, name):
    return KernelRunner(kernels[name], engine="aot")


def test_warm_cache_binds_without_recompiling(monkeypatch, tmp_path):
    """A second runner construction against a warm artifact cache
    loads the stored entry thunk — no re-trace, no re-codegen."""
    monkeypatch.setenv("REPRO_AOT_CACHE", str(tmp_path / "warm"))
    name = f"{OP_FP_MUL}.full.ise"
    kernels = cached_kernels(csidh_toy().p)

    with telemetry.capture() as cold:
        cold_runner = _fresh_runner(kernels, name)
    assert cold.registry.counter("aot_artifact_writes_total").total() \
        > 0
    assert list(cache_dir().glob("*.json")), \
        "cold construction must persist an artifact"

    with telemetry.capture() as warm:
        warm_runner = _fresh_runner(kernels, name)
    assert warm.registry.counter("aot_artifact_hits_total").total() > 0
    assert warm.registry.counter("aot_compiles_total").total() == 0, \
        "warm start must not re-run the fuser"
    assert warm_runner._aot_thunk is not None

    rng = random.Random(9)
    values = warm_runner.kernel.sampler(rng)
    warm_run = warm_runner.run(*values, check=False, engine="aot")
    cold_run = cold_runner.run(*values, check=False,
                               engine="interpreter")
    assert warm_run.limbs == cold_run.limbs
    assert warm_run.cycles == cold_run.cycles


def test_corrupt_artifact_is_deleted_and_recompiled(monkeypatch,
                                                    tmp_path):
    """Garbage on disk never surfaces: the loader deletes the file,
    records the invalidation and falls back to a cold compile."""
    monkeypatch.setenv("REPRO_AOT_CACHE", str(tmp_path / "corrupt"))
    name = f"{OP_FP_ADD}.full.isa"
    kernels = cached_kernels(csidh_toy().p)

    _fresh_runner(kernels, name)
    files = list(cache_dir().glob("*.json"))
    assert files
    files[0].write_text("{ not json at all")

    with telemetry.capture() as cap:
        runner = _fresh_runner(kernels, name)
    reg = cap.registry
    assert reg.counter("aot_artifact_invalidations_total").total() > 0
    assert reg.counter("aot_compiles_total").total() > 0, \
        "corruption must fall back to a cold compile"
    assert runner._aot_thunk is not None

    rng = random.Random(11)
    assert_four_way_exact(runner, runner.kernel.sampler(rng))
