"""Replay mode must be architecturally and cycle-count identical to the
interpreter, for every kernel, on random and adversarial operands.

Each check runs the *same* runner (same machine, same assembled image)
once through the fetch-decode-execute interpreter and once through the
compiled trace, then compares result limbs, retired instructions, cycle
counts and the complete final register file.  Boundary operands (0, 1,
``p-1``, all-ones limb vectors — including vectors *outside* the
reference domain, which only a differential oracle can exercise) target
the carry chains and conditional subtractions where the two execution
paths could plausibly diverge.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.csidh.parameters import csidh_toy
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    ALL_VARIANTS,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.pipeline import ROCKET_CONFIG_WITH_CACHES

from tests.helpers import boundary_operand_values

#: The four field operations x four variants = the 16 combinations the
#: simulated field context dispatches to.
FIELD_OPERATIONS = (OP_FP_MUL, OP_FP_SQR, OP_FP_ADD, OP_FP_SUB)
FIELD_KERNELS = [
    f"{operation}.{variant}"
    for operation in FIELD_OPERATIONS
    for variant in ALL_VARIANTS
]

_RUNNERS: dict[str, KernelRunner] = {}


def runner_for(name: str) -> KernelRunner:
    """Module-lifetime runner pool (assembly is per-kernel pure)."""
    if name not in _RUNNERS:
        kernels = cached_kernels(csidh_toy().p)
        _RUNNERS[name] = KernelRunner(kernels[name])
    return _RUNNERS[name]


def assert_replay_exact(runner: KernelRunner, values) -> None:
    """One differential observation: interpreter vs replay."""
    interp = runner.run(*values, check=False, replay=False)
    interp_regs = list(runner.machine.state.regs._regs)
    rep = runner.run(*values, check=False, replay=True)
    replay_regs = list(runner.machine.state.regs._regs)

    name = runner.kernel.name
    assert rep.limbs == interp.limbs, (
        f"{name}: result limbs diverge on {values}")
    assert rep.value == interp.value
    assert rep.instructions == interp.instructions, (
        f"{name}: retired-instruction counts diverge "
        f"({rep.instructions} vs {interp.instructions})")
    assert rep.cycles == interp.cycles, (
        f"{name}: cycle counts diverge "
        f"({rep.cycles} vs {interp.cycles})")
    assert replay_regs == interp_regs, (
        f"{name}: final register state diverges on {values}")


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_replay_supported(name):
    """All 16 field-op kernels compile to replay traces."""
    runner = runner_for(name)
    assert runner.machine.replay_supported(runner.entry)


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_boundary_operands(name):
    """Exhaustive cartesian boundary sweep for each field kernel."""
    runner = runner_for(name)
    per_operand = boundary_operand_values(runner.kernel,
                                          clip_to_domain=False)
    for values in itertools.product(*per_operand):
        assert_replay_exact(runner, values)


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_random_operands(name):
    """Seeded random sweep drawn from each kernel's own sampler."""
    runner = runner_for(name)
    rng = random.Random(0xD1FF)
    for _ in range(25):
        assert_replay_exact(runner, runner.kernel.sampler(rng))


def test_every_generated_kernel_is_replay_exact():
    """Beyond the field ops: the full kernel matrix (integer multiply,
    Montgomery reduction, ablation variants) replays exactly."""
    rng = random.Random(0xD1FF)
    for name in cached_kernels(csidh_toy().p):
        runner = runner_for(name)
        assert runner.machine.replay_supported(runner.entry), name
        for _ in range(5):
            assert_replay_exact(runner, runner.kernel.sampler(rng))


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_replay_histogram_identical(variant):
    """Dynamic mnemonic histograms agree (straight-line code makes the
    static trace histogram exact)."""
    runner = runner_for(f"{OP_FP_MUL}.{variant}")
    machine = runner.machine
    machine.collect_histogram = True
    try:
        machine.reset()
        interp = machine.run(runner.entry)
        machine.reset()
        rep = machine.run(runner.entry, replay=True)
        assert sum(rep.histogram.values()) == rep.instructions_retired
        assert rep.histogram == interp.histogram
    finally:
        machine.collect_histogram = False


def test_trace_is_compiled_once_and_reused():
    runner = runner_for(f"{OP_FP_ADD}.reduced.ise")
    machine = runner.machine
    rng = random.Random(2)
    runner.run(*runner.kernel.sampler(rng), check=False, replay=True)
    trace_first = machine._trace_cache[runner.entry]
    runner.run(*runner.kernel.sampler(rng), check=False, replay=True)
    assert machine._trace_cache[runner.entry] is trace_first


def test_cache_enabled_timing_falls_back_to_interpreter():
    """Cache miss patterns are history-dependent, so replay refuses and
    the runner transparently interprets — results stay verified."""
    kernels = cached_kernels(csidh_toy().p)
    runner = KernelRunner(
        kernels[f"{OP_FP_MUL}.reduced.ise"],
        pipeline_config=ROCKET_CONFIG_WITH_CACHES,
        replay=True,
    )
    assert not runner.machine.replay_supported(runner.entry)
    rng = random.Random(3)
    run = runner.run(*runner.kernel.sampler(rng))  # check=True
    assert run.cycles > 0
