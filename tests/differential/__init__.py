"""Differential-testing subsystem: trace-replay vs the interpreter.

The trace-replay engine (:mod:`repro.rv64.replay`) claims to be an
*exact* drop-in for the reference interpreter on straight-line kernels:
identical result limbs, identical retired-instruction counts, identical
cycle counts, identical final register state.  This package proves the
claim operand-by-operand — the paper's machine-checked-equivalence
story extended to our own optimisation — and pins per-kernel cycle
counts in ``tests/golden_cycles.json`` so future changes to the
pipeline model or kernel generators cannot silently drift the Table 4
numbers.
"""
