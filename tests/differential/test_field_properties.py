"""Property tests: replay-backed field arithmetic vs pure Python.

:class:`SimulatedFieldContext` defaults to the trace-replay fast path;
these Hypothesis properties assert it is *extensionally equal* to the
pure-Python :class:`FieldContext` over randomly drawn (and boundary-
biased) field elements, for every implementation variant.  A second
property drives individual kernels through :func:`kernel_operands`
and compares the replayed result against the kernel's golden
reference — the same oracle ``check=True`` uses, but sampled by
Hypothesis instead of a fixed seed.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.csidh.parameters import csidh_toy
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext
from repro.kernels.registry import cached_runner
from repro.kernels.spec import (
    ALL_VARIANTS,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
    OP_INT_MUL,
    OP_MONT_REDC,
)

from tests.helpers import kernel_operands

P = csidh_toy().p

#: Module-lifetime contexts: kernels assemble and trace-compile once.
_SIM: dict[str, SimulatedFieldContext] = {}


def simulated(variant: str) -> SimulatedFieldContext:
    if variant not in _SIM:
        _SIM[variant] = SimulatedFieldContext(P, variant=variant)
    return _SIM[variant]


elements = st.integers(min_value=0, max_value=P - 1)
variants = st.sampled_from(ALL_VARIANTS)


@settings(deadline=None, max_examples=30)
@given(variant=variants, a=elements, b=elements)
def test_mul_matches_python(variant, a, b):
    assert simulated(variant).mul(a, b) == FieldContext(P).mul(a, b)


@settings(deadline=None, max_examples=30)
@given(variant=variants, a=elements)
def test_sqr_matches_python(variant, a):
    assert simulated(variant).sqr(a) == FieldContext(P).sqr(a)


@settings(deadline=None, max_examples=30)
@given(variant=variants, a=elements, b=elements)
def test_add_matches_python(variant, a, b):
    assert simulated(variant).add(a, b) == FieldContext(P).add(a, b)


@settings(deadline=None, max_examples=30)
@given(variant=variants, a=elements, b=elements)
def test_sub_matches_python(variant, a, b):
    assert simulated(variant).sub(a, b) == FieldContext(P).sub(a, b)


@settings(deadline=None, max_examples=20)
@given(variant=variants, a=elements, b=elements, c=elements)
def test_algebraic_identities_on_fast_path(variant, a, b, c):
    """(a+b)*c == a*c + b*c and (a-b)+(b-a) == 0, computed entirely by
    replayed kernels — exercises composition, not just single ops."""
    sim = simulated(variant)
    lhs = sim.mul(sim.add(a, b), c)
    rhs = sim.add(sim.mul(a, c), sim.mul(b, c))
    assert lhs == rhs
    assert sim.add(sim.sub(a, b), sim.sub(b, a)) == 0


#: Kernel-level: replayed execution vs the kernel's golden reference.
_KERNEL_NAMES = [
    f"{operation}.{variant}"
    for operation in (OP_FP_MUL, OP_FP_SQR, OP_FP_ADD, OP_FP_SUB,
                      OP_INT_MUL, OP_MONT_REDC)
    for variant in ALL_VARIANTS
]


@settings(deadline=None, max_examples=60)
@given(data=st.data())
def test_replayed_kernel_matches_reference(data):
    name = data.draw(st.sampled_from(_KERNEL_NAMES))
    runner = cached_runner(P, name)
    values = data.draw(kernel_operands(runner.kernel))
    run = runner.run(*values, check=False, replay=True)
    assert run.value == runner.kernel.reference(*values), (
        f"{name} diverges from its reference on {values}")
