"""Golden cycle-count regression: pin every kernel's static cost.

Cycle counts are the paper's headline numbers; a pipeline-model tweak
or a kernel-generator change that shifts them must be a *conscious*
decision.  This test recomputes the static cycle count of all 76
kernels (toy + CSIDH-512) and diffs against ``tests/golden_cycles.json``,
reporting every drift as ``kernel: golden -> current (+delta)`` so the
failure is reviewable at a glance.  Regenerate after intentional
changes with::

    PYTHONPATH=src python -m tests.differential.generate_golden
"""

from __future__ import annotations

import json

from tests.differential.generate_golden import (
    GOLDEN_PATH,
    PARAMETER_SETS,
    collect_cycles,
)


def test_snapshot_exists_and_covers_all_parameter_sets():
    golden = json.loads(GOLDEN_PATH.read_text())["moduli"]
    assert set(golden) == set(PARAMETER_SETS)
    for set_name, cycles in golden.items():
        assert cycles, f"{set_name}: empty snapshot"
        assert all(
            isinstance(c, int) and c > 0 for c in cycles.values()
        ), f"{set_name}: non-positive cycle counts"


def test_cycle_counts_match_golden_snapshot():
    golden = json.loads(GOLDEN_PATH.read_text())["moduli"]
    current = collect_cycles()["moduli"]

    lines = []
    for set_name in sorted(set(golden) | set(current)):
        want = golden.get(set_name, {})
        got = current.get(set_name, {})
        for kernel in sorted(set(want) | set(got)):
            if kernel not in got:
                lines.append(f"  {set_name}/{kernel}: kernel vanished "
                             f"(golden {want[kernel]})")
            elif kernel not in want:
                lines.append(f"  {set_name}/{kernel}: new kernel "
                             f"({got[kernel]} cycles) missing from "
                             f"snapshot")
            elif got[kernel] != want[kernel]:
                delta = got[kernel] - want[kernel]
                lines.append(
                    f"  {set_name}/{kernel}: "
                    f"{want[kernel]} -> {got[kernel]} ({delta:+d})")

    assert not lines, (
        "cycle counts drifted from tests/golden_cycles.json "
        "(regenerate via python -m tests.differential.generate_golden "
        "if intentional):\n" + "\n".join(lines))
