"""The jit tier must be architecturally and cycle-count identical to
the interpreter AND the replay engine, for every kernel.

Same discipline as ``test_replay_vs_interpreter.py``, one tier up:
each check runs the *same* runner (same machine, same assembled image)
through all three engines and compares result limbs, retired
instructions, cycle counts and the complete final register file.  The
golden cycle snapshot (``tests/golden_cycles.json``) is additionally
asserted against jit-engine measurements — introducing the code
generator must not move a single pinned number.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest

from repro.csidh.parameters import csidh_toy
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    ALL_VARIANTS,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)

from tests.differential.generate_golden import GOLDEN_PATH
from tests.helpers import boundary_operand_values

FIELD_OPERATIONS = (OP_FP_MUL, OP_FP_SQR, OP_FP_ADD, OP_FP_SUB)
FIELD_KERNELS = [
    f"{operation}.{variant}"
    for operation in FIELD_OPERATIONS
    for variant in ALL_VARIANTS
]

_RUNNERS: dict[str, KernelRunner] = {}


def runner_for(name: str) -> KernelRunner:
    """Module-lifetime runner pool (assembly is per-kernel pure)."""
    if name not in _RUNNERS:
        kernels = cached_kernels(csidh_toy().p)
        _RUNNERS[name] = KernelRunner(kernels[name], engine="jit")
    return _RUNNERS[name]


def assert_three_way_exact(runner: KernelRunner, values) -> None:
    """One differential observation: interpreter vs replay vs jit."""
    observed = {}
    for engine in ("interpreter", "replay", "jit"):
        run = runner.run(*values, check=False, engine=engine)
        regs = list(runner.machine.state.regs._regs)
        observed[engine] = (run.limbs, run.value, run.instructions,
                            run.cycles, regs)

    name = runner.kernel.name
    interp = observed["interpreter"]
    for engine in ("replay", "jit"):
        got = observed[engine]
        assert got[0] == interp[0], (
            f"{name}: {engine} result limbs diverge on {values}")
        assert got[1] == interp[1], (
            f"{name}: {engine} value diverges on {values}")
        assert got[2] == interp[2], (
            f"{name}: {engine} retired-instruction count diverges "
            f"({got[2]} vs {interp[2]})")
        assert got[3] == interp[3], (
            f"{name}: {engine} cycle count diverges "
            f"({got[3]} vs {interp[3]})")
        assert got[4] == interp[4], (
            f"{name}: {engine} final register state diverges on "
            f"{values}")


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_jit_supported(name):
    """All 16 field-op kernels compile to jit functions."""
    runner = runner_for(name)
    assert runner.machine.jit_supported(runner.entry)


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_boundary_operands(name):
    """Exhaustive cartesian boundary sweep, three engines per point."""
    runner = runner_for(name)
    per_operand = boundary_operand_values(runner.kernel,
                                          clip_to_domain=False)
    for values in itertools.product(*per_operand):
        assert_three_way_exact(runner, values)


@pytest.mark.parametrize("name", FIELD_KERNELS)
def test_field_kernels_random_operands(name):
    """Seeded random sweep drawn from each kernel's own sampler."""
    runner = runner_for(name)
    rng = random.Random(0x717)
    for _ in range(15):
        assert_three_way_exact(runner, runner.kernel.sampler(rng))


def test_every_generated_kernel_is_jit_exact():
    """Beyond the field ops: the full kernel matrix (integer multiply,
    Montgomery reduction, ablation variants) jit-compiles exactly."""
    rng = random.Random(0x717)
    for name in cached_kernels(csidh_toy().p):
        runner = runner_for(name)
        assert runner.machine.jit_supported(runner.entry), name
        for _ in range(3):
            assert_three_way_exact(runner, runner.kernel.sampler(rng))


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_jit_histogram_identical(variant):
    """Dynamic mnemonic histograms agree across all three engines."""
    runner = runner_for(f"{OP_FP_MUL}.{variant}")
    machine = runner.machine
    machine.collect_histogram = True
    try:
        machine.reset()
        interp = machine.run(runner.entry)
        machine.reset()
        jitted = machine.run(runner.entry, engine="jit")
        assert jitted.engine == "jit"
        assert sum(jitted.histogram.values()) \
            == jitted.instructions_retired
        assert jitted.histogram == interp.histogram
    finally:
        machine.collect_histogram = False


def test_jit_cycles_match_golden_snapshot():
    """jit-engine cycle counts equal the pinned golden snapshot —
    the code generator cannot move the paper's headline numbers."""
    golden = json.loads(GOLDEN_PATH.read_text())["moduli"]["csidh-toy"]
    rng = random.Random(0x717)
    for name, want in golden.items():
        runner = runner_for(name)
        run = runner.run(*runner.kernel.sampler(rng), check=False,
                         engine="jit")
        assert run.cycles == want, (
            f"{name}: jit cycles {run.cycles} != golden {want}")


def test_jit_function_is_compiled_once_and_reused():
    runner = runner_for(f"{OP_FP_ADD}.reduced.ise")
    machine = runner.machine
    rng = random.Random(2)
    runner.run(*runner.kernel.sampler(rng), check=False, engine="jit")
    jitfn_first = machine._jit_cache[runner.entry]
    runner.run(*runner.kernel.sampler(rng), check=False, engine="jit")
    assert machine._jit_cache[runner.entry] is jitfn_first


def test_batch_matches_looped_singles():
    """run_batch is semantically the scalar loop, on every engine."""
    runner = runner_for(f"{OP_FP_MUL}.reduced.ise")
    rng = random.Random(5)
    sets = [runner.kernel.sampler(rng) for _ in range(8)]
    looped = [runner.run(*v, check=False, engine="interpreter")
              for v in sets]
    for engine in ("interpreter", "replay", "jit"):
        batched = runner.run_batch(sets, check=False, engine=engine)
        assert [r.value for r in batched] == [r.value for r in looped]
        assert [r.limbs for r in batched] == [r.limbs for r in looped]
        assert [r.cycles for r in batched] == [r.cycles for r in looped]
        assert ([r.instructions for r in batched]
                == [r.instructions for r in looped])
