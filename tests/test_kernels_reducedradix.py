"""Functional verification of the reduced-radix (57-bit) kernels."""

from __future__ import annotations

import pytest

from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    VARIANT_REDUCED_ISA,
    VARIANT_REDUCED_ISE,
)

VARIANTS = (VARIANT_REDUCED_ISA, VARIANT_REDUCED_ISE)


@pytest.fixture(scope="module")
def runners(kernels512):
    cache: dict[str, KernelRunner] = {}

    def get(name: str) -> KernelRunner:
        if name not in cache:
            cache[name] = KernelRunner(kernels512[name])
        return cache[name]

    return get


@pytest.mark.parametrize("variant", VARIANTS)
class TestReducedRadixKernels:
    def test_int_mul(self, runners, variant, rng, p512):
        runner = runners(f"int_mul.{variant}")
        for a, b in [(0, 0), (1, 1), (p512 - 1, p512 - 1)]:
            assert runner.run(a, b).value == a * b
        for _ in range(5):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == a * b

    def test_int_mul_max_canonical(self, runners, variant):
        runner = runners(f"int_mul.{variant}")
        top = (1 << 513) - 1  # all 9 limbs at 2^57 - 1
        assert runner.run(top, top).value == top * top

    def test_int_sqr_doubled_limb_trick(self, runners, variant, rng,
                                        p512):
        """Squaring uses 58-bit doubled limbs — exercising exactly the
        multiplier-saturation case the ISE design solves."""
        runner = runners(f"int_sqr.{variant}")
        for a in (0, 1, p512 - 1, (1 << 513) - 1):
            assert runner.run(a).value == a * a
        for _ in range(5):
            a = rng.randrange(p512)
            assert runner.run(a).value == a * a

    def test_mont_redc(self, runners, variant, rng, p512, contexts512):
        runner = runners(f"mont_redc.{variant}")
        ctx = contexts512[1]
        for _ in range(5):
            t = rng.randrange(p512) * rng.randrange(p512)
            value = runner.run(t).value
            assert value < 2 * p512
            assert (value * ctx.r) % p512 == t % p512

    def test_fast_reduce(self, runners, variant, rng, p512):
        runner = runners(f"fast_reduce.{variant}")
        for a in (0, p512 - 1, p512, 2 * p512 - 1):
            assert runner.run(a).value == a % p512
        for _ in range(4):
            a = rng.randrange(2 * p512)
            assert runner.run(a).value == a % p512

    def test_fast_reduce_addition_ablation(self, runners, variant, rng,
                                           p512):
        runner = runners(f"fast_reduce_add.{variant}")
        for _ in range(4):
            a = rng.randrange(2 * p512)
            assert runner.run(a).value == a % p512

    def test_fp_add(self, runners, variant, rng, p512):
        runner = runners(f"fp_add.{variant}")
        for a, b in [(0, 0), (p512 - 1, p512 - 1), (p512 - 1, 1),
                     (p512 // 2, p512 // 2)]:
            assert runner.run(a, b).value == (a + b) % p512
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a + b) % p512

    def test_fp_sub(self, runners, variant, rng, p512):
        runner = runners(f"fp_sub.{variant}")
        for a, b in [(0, 0), (0, 1), (0, p512 - 1), (1, p512 - 1)]:
            assert runner.run(a, b).value == (a - b) % p512
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a - b) % p512

    def test_fp_mul_composite(self, runners, variant, rng, p512,
                              contexts512):
        runner = runners(f"fp_mul.{variant}")
        ctx = contexts512[1]
        for _ in range(4):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == ctx.montgomery_multiply(a, b)

    def test_fp_sqr_composite(self, runners, variant, rng, p512,
                              contexts512):
        runner = runners(f"fp_sqr.{variant}")
        ctx = contexts512[1]
        for _ in range(4):
            a = rng.randrange(p512)
            assert runner.run(a).value == ctx.montgomery_multiply(a, a)

    def test_output_limbs_canonical(self, runners, variant, rng, p512,
                                    contexts512):
        """All reduced-radix kernels must emit canonical 57-bit limbs."""
        ctx = contexts512[1]
        for op in ("fp_add", "fp_sub", "fp_mul", "fast_reduce"):
            runner = runners(f"{op}.{variant}")
            values = (rng.randrange(p512),) * len(
                runner.kernel.input_limbs)
            run = runner.run(*values)
            assert ctx.radix.is_canonical(list(run.limbs)), op


class TestStructure:
    def test_listing_2_vs_4_instruction_ratio(self, kernels512):
        """Listing 2 (6 instr) vs Listing 4 (2 instr) per MAC shows up
        as a large static-count gap: 81 MACs x 4 saved instructions."""
        isa = sum(kernels512["int_mul.reduced.isa"].static_counts
                  .values())
        ise = sum(kernels512["int_mul.reduced.ise"].static_counts
                  .values())
        assert isa - ise >= 81 * 3

    def test_sqr_uses_doubled_limbs(self, kernels512):
        sqr = kernels512["int_sqr.reduced.ise"]
        assert sqr.static_counts["slli"] >= 9  # the 2*a_i preparation

    def test_ise_variants_use_sraiadd(self, kernels512):
        for op in ("fp_add", "fp_sub", "fast_reduce", "int_mul",
                   "mont_redc"):
            kernel = kernels512[f"{op}.reduced.ise"]
            assert kernel.static_counts.get("sraiadd", 0) > 0, op

    def test_reduced_mul_has_more_macs_than_full(self, kernels512):
        full = kernels512["int_mul.full.isa"].static_counts["mulhu"]
        reduced = kernels512["int_mul.reduced.isa"].static_counts[
            "mulhu"]
        assert (full, reduced) == (64, 81)
