"""Tests for the x-only Montgomery curve arithmetic."""

from __future__ import annotations

import random

import pytest

from repro.csidh.montgomery import (
    Curve,
    INFINITY,
    XPoint,
    curve_rhs,
    ladder,
    sample_point_x,
    xadd,
    xdbl,
)
from repro.errors import ParameterError
from repro.field.fp import FieldContext


@pytest.fixture(scope="module")
def field(mini_params):
    return FieldContext(mini_params.p)


@pytest.fixture(scope="module")
def curve(field):
    return Curve.from_affine(field, 0)


def _point_on_curve(field, a, rng) -> XPoint:
    while True:
        x, side = sample_point_x(field, a, rng)
        if side == 1:
            return XPoint(x, 1)


class TestCurve:
    def test_from_affine_roundtrip(self, field):
        for a in (0, 5, 1234, field.p - 3):
            curve = Curve.from_affine(field, a)
            assert curve.affine_a(field) == a

    def test_degenerate_rejected(self, field):
        with pytest.raises(ParameterError):
            Curve(1, 0).affine_a(field)

    def test_smoothness(self, field):
        assert Curve.from_affine(field, 0).is_smooth(field)
        assert not Curve.from_affine(field, 2).is_smooth(field)
        assert not Curve.from_affine(field, field.p - 2).is_smooth(field)

    def test_rhs(self, field):
        # x^3 + 0 + x at x=2 -> 10
        assert curve_rhs(field, 0, 2) == 10


class TestDoubling:
    def test_double_infinity_z_zero(self, field, curve):
        assert xdbl(field, XPoint(1, 0), curve).is_infinity

    def test_double_order2_point(self, field, curve):
        # (0, 0) is the 2-torsion point on y^2 = x^3 + x
        assert xdbl(field, XPoint(0, 1), curve).is_infinity

    def test_double_matches_ladder(self, field, curve, rng):
        point = _point_on_curve(field, 0, rng)
        doubled = xdbl(field, point, curve)
        laddered = ladder(field, 2, point, curve)
        # compare projectively: X1*Z2 == X2*Z1
        assert (doubled.X * laddered.Z - laddered.X * doubled.Z) \
            % field.p == 0


class TestLadder:
    def test_zero_scalar(self, field, curve, rng):
        point = _point_on_curve(field, 0, rng)
        assert ladder(field, 0, point, curve).is_infinity

    def test_negative_scalar_rejected(self, field, curve):
        with pytest.raises(ParameterError):
            ladder(field, -1, XPoint(2, 1), curve)

    def test_one_is_identity_map(self, field, curve, rng):
        point = _point_on_curve(field, 0, rng)
        result = ladder(field, 1, point, curve)
        assert (result.X * point.Z - point.X * result.Z) % field.p == 0

    def test_group_order_annihilates(self, field, curve, rng,
                                     mini_params):
        """Supersingular: every point is killed by p + 1."""
        for _ in range(5):
            point = _point_on_curve(field, 0, rng)
            assert ladder(field, field.p + 1, point, curve).is_infinity

    def test_twist_points_killed_too(self, field, curve, rng):
        """x-only arithmetic is twist-agnostic; twist order is also
        p + 1 for supersingular curves."""
        while True:
            x, side = sample_point_x(field, 0, rng)
            if side == -1:
                break
        assert ladder(field, field.p + 1, XPoint(x, 1),
                      curve).is_infinity

    def test_scalar_additivity(self, field, curve, rng):
        point = _point_on_curve(field, 0, rng)
        k1, k2 = 13, 29
        lhs = ladder(field, k1 * k2, point, curve)
        rhs = ladder(field, k2, ladder(field, k1, point, curve), curve)
        if lhs.is_infinity or rhs.is_infinity:
            assert lhs.is_infinity == rhs.is_infinity
        else:
            assert (lhs.X * rhs.Z - rhs.X * lhs.Z) % field.p == 0

    def test_cofactor_clearing_gives_odd_torsion(self, field, curve,
                                                 rng, mini_params):
        p = field.p
        point = _point_on_curve(field, 0, rng)
        odd_part = (p + 1) // 4
        cleared = ladder(field, 4, point, curve)
        if not cleared.is_infinity:
            assert ladder(field, odd_part, cleared, curve).is_infinity


class TestXadd:
    def test_differential_addition(self, field, curve, rng):
        """x([m+n]P) from x([m]P), x([n]P), x([m-n]P)."""
        point = _point_on_curve(field, 0, rng)
        p2 = xdbl(field, point, curve)
        p3 = xadd(field, p2, point, point)      # 2P + P, diff = P
        expected = ladder(field, 3, point, curve)
        if p3.is_infinity or expected.is_infinity:
            assert p3.is_infinity == expected.is_infinity
        else:
            assert (p3.X * expected.Z - expected.X * p3.Z) % field.p == 0


class TestNormalise:
    def test_infinity_has_no_x(self, field):
        with pytest.raises(ParameterError):
            INFINITY.normalise(field)

    def test_normalise(self, field):
        point = XPoint(field.mul(7, 3), 3)
        assert point.normalise(field) == 7
