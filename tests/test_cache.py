"""Tests for the set-associative cache models."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.rv64.cache import Cache, CacheConfig


class TestGeometry:
    def test_default_is_16kb(self):
        config = CacheConfig()
        assert config.size_bytes == 16 * 1024
        assert config.num_sets * config.ways * config.line_bytes \
            == config.size_bytes

    def test_bad_line_size(self):
        with pytest.raises(ParameterError):
            CacheConfig(line_bytes=48)

    def test_indivisible_geometry(self):
        with pytest.raises(ParameterError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=4)


class TestBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = Cache(CacheConfig())
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_hits(self):
        cache = Cache(CacheConfig(line_bytes=64))
        cache.access(0x100)
        assert cache.access(0x13F)   # same 64-byte line
        assert not cache.access(0x140)  # next line

    def test_lru_eviction(self):
        # 2-way set: touching 3 conflicting lines evicts the oldest
        config = CacheConfig(size_bytes=2 * 64 * 4, line_bytes=64, ways=2)
        cache = Cache(config)
        stride = config.num_sets * config.line_bytes
        a, b, c = 0, stride, 2 * stride  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)        # evicts a
        assert not cache.access(a)
        assert cache.access(c)

    def test_lru_refresh_on_hit(self):
        config = CacheConfig(size_bytes=2 * 64 * 4, line_bytes=64, ways=2)
        cache = Cache(config)
        stride = config.num_sets * config.line_bytes
        a, b, c = 0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)        # refresh a
        cache.access(c)        # evicts b, not a
        assert cache.access(a)
        assert not cache.access(b)

    def test_warm_prefills_without_stats(self):
        cache = Cache(CacheConfig())
        cache.warm(0x1000, 512)
        assert cache.misses == 0
        assert cache.access(0x1100)
        assert cache.miss_rate == 0.0

    def test_miss_rate(self):
        cache = Cache(CacheConfig())
        cache.access(0)
        cache.access(0)
        cache.access(0x10000)
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_reset_stats(self):
        cache = Cache(CacheConfig())
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0
