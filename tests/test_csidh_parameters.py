"""Tests for the CSIDH parameter sets."""

from __future__ import annotations

import math
import random

import pytest

from repro.csidh.parameters import (
    CsidhParameters,
    csidh_512,
    csidh_mini,
    csidh_toy,
)
from repro.errors import ParameterError
from repro.mpi.primality import is_prime


class TestCsidh512:
    def test_prime_shape(self):
        params = csidh_512()
        assert params.p == 4 * math.prod(params.ells) - 1
        assert params.p.bit_length() == 511
        assert params.p % 8 == 3
        assert is_prime(params.p)

    def test_prime_list(self):
        params = csidh_512()
        assert params.num_primes == 74
        assert params.ells[0] == 3
        assert params.ells[72] == 373   # 73 smallest odd primes ...
        assert params.ells[73] == 587   # ... plus 587

    def test_key_space_size(self):
        # (2*5+1)^74 = 11^74 ~ 2^256 keys (NIST level 1 target)
        assert csidh_512().key_space_bits == pytest.approx(256, abs=1)

    def test_exponent_sampling(self):
        params = csidh_512()
        key = params.sample_private_key(random.Random(0))
        assert len(key) == 74
        assert all(-5 <= e <= 5 for e in key)

    def test_cached(self):
        assert csidh_512() is csidh_512()


class TestToySets:
    def test_toy_valid(self):
        params = csidh_toy()
        params.validate()
        assert params.p == 419

    def test_mini_valid(self):
        params = csidh_mini()
        params.validate()
        assert is_prime(params.p)
        assert params.p % 8 == 3


class TestValidation:
    def test_nonprime_p_rejected(self):
        bad = CsidhParameters("bad", (3, 5, 7, 11), 1)  # p = 4619 = 31*149
        with pytest.raises(ParameterError, match="not prime"):
            bad.validate()

    def test_composite_factor_rejected(self):
        bad = CsidhParameters("bad", (3, 5, 9), 1)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_unsorted_factors_rejected(self):
        with pytest.raises(ParameterError):
            CsidhParameters("bad", (5, 3), 1)

    def test_empty_factors_rejected(self):
        with pytest.raises(ParameterError):
            CsidhParameters("bad", (), 1)

    def test_bad_exponent_bound(self):
        with pytest.raises(ParameterError):
            CsidhParameters("bad", (3, 5, 7), 0)
