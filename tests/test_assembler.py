"""Tests for the two-pass assembler: syntax, labels, pseudo expansion."""

from __future__ import annotations

import pytest

from repro.core.ise import EXTENDED_ISA
from repro.errors import AssemblerError
from repro.rv64.assembler import Assembler, assemble, expand_li
from repro.rv64.bits import u64
from repro.rv64.isa import BASE_ISA, Instruction
from tests.helpers import run_asm


class TestBasicSyntax:
    def test_simple_instruction(self):
        prog = assemble("add a0, a1, a2", BASE_ISA)
        assert prog.instructions == [
            Instruction("add", rd=10, rs1=11, rs2=12)
        ]

    def test_comments_stripped(self):
        source = """
        # full line comment
        add a0, a1, a2  # trailing
        sub a0, a0, a1  // c++ style
        and a0, a0, a1  ; asm style
        """
        assert len(assemble(source, BASE_ISA)) == 3

    def test_hex_and_binary_immediates(self):
        prog = assemble("addi a0, zero, 0x7f\naddi a1, zero, 0b101",
                        BASE_ISA)
        assert prog.instructions[0].imm == 0x7F
        assert prog.instructions[1].imm == 0b101

    def test_memory_operand_forms(self):
        prog = assemble("ld a0, 16(sp)\nsd a0, (sp)", BASE_ISA)
        assert prog.instructions[0].imm == 16
        assert prog.instructions[1].imm == 0

    def test_r4_operands(self):
        prog = assemble("maddlu t0, a0, a1, t0", EXTENDED_ISA)
        ins = prog.instructions[0]
        assert (ins.rd, ins.rs1, ins.rs2, ins.rs3) == (5, 10, 11, 5)

    def test_sraiadd_operands(self):
        prog = assemble("sraiadd t0, t1, t2, 57", EXTENDED_ISA)
        ins = prog.instructions[0]
        assert (ins.rd, ins.rs1, ins.rs2, ins.imm) == (5, 6, 7, 57)


class TestLabels:
    def test_forward_branch(self):
        source = """
            beq a0, zero, done
            addi a1, a1, 1
        done:
            ret
        """
        prog = assemble(source, BASE_ISA)
        assert prog.instructions[0].imm == 8
        assert "done" in prog.labels

    def test_backward_branch(self):
        source = """
        loop:
            addi a0, a0, -1
            bne a0, zero, loop
        """
        prog = assemble(source, BASE_ISA)
        assert prog.instructions[1].imm == -4

    def test_jump_to_label(self):
        prog = assemble("j end\nnop\nend: ret", BASE_ISA)
        assert prog.instructions[0].mnemonic == "jal"
        assert prog.instructions[0].imm == 8

    def test_label_on_same_line(self):
        prog = assemble("start: add a0, a0, a1", BASE_ISA)
        assert prog.labels["start"] == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("beq a0, a1, nowhere", BASE_ISA)

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: nop", BASE_ISA)

    def test_label_offsets_account_for_li_expansion(self):
        source = """
            li a0, 0x123456789abcdef0
            beq a0, zero, done
            nop
        done:
            ret
        """
        machine = run_asm(source, append_ret=False)
        assert machine.regs["a0"] == 0x123456789ABCDEF0


class TestLiExpansion:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 100, -100, 2047, -2048, 2048, -2049,
        0x7FFFFFFF, -0x80000000, 0x80000000, 1 << 40,
        (1 << 57) - 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000000,
        0xDEADBEEFCAFEBABE,
    ])
    def test_value_exact(self, value):
        machine = run_asm(f"li t3, {value}")
        assert machine.regs["t3"] == u64(value)

    def test_small_is_one_instruction(self):
        assert len(expand_li(10, 42)) == 1
        assert len(expand_li(10, -42)) == 1

    def test_32bit_is_two_instructions(self):
        assert len(expand_li(10, 0x12345678)) == 2

    def test_expansion_writes_only_target(self):
        for ins in expand_li(10, 0xDEADBEEFCAFEBABE):
            assert ins.rd == 10


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1", BASE_ISA)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expected 3"):
            assemble("add a0, a1", BASE_ISA)

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1, q9", BASE_ISA)

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError):
            assemble("addi a0, a1, twelve", BASE_ISA)

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="imm\\(reg\\)"):
            assemble("ld a0, a1", BASE_ISA)

    def test_line_number_in_error(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus x, y", BASE_ISA)

    def test_ise_mnemonic_requires_extended_isa(self):
        with pytest.raises(AssemblerError):
            Assembler(BASE_ISA).assemble("maddlu t0, a0, a1, t0")


class TestControlFlowExecution:
    def test_loop_countdown(self):
        source = """
            li a0, 10
            li a1, 0
        loop:
            addi a1, a1, 2
            addi a0, a0, -1
            bnez a0, loop
            ret
        """
        machine = run_asm(source, append_ret=False)
        assert machine.regs["a1"] == 20

    def test_jal_links(self):
        source = """
            jal a5, target
        target:
            ret
        """
        machine = run_asm(source, append_ret=False)
        assert machine.regs["a5"] == 0x1000 + 4

    def test_beqz_taken(self):
        source = """
            beqz zero, skip
            li a0, 111
        skip:
            ret
        """
        machine = run_asm(source, append_ret=False)
        assert machine.regs["a0"] == 0
