"""Tests for public-key (supersingularity) validation."""

from __future__ import annotations

import random

import pytest

from repro.csidh.group_action import group_action
from repro.csidh.validate import is_supersingular
from repro.field.fp import FieldContext


@pytest.fixture(scope="module")
def mini_field(mini_params):
    return FieldContext(mini_params.p)


class TestAccepts:
    def test_base_curve(self, mini_params, mini_field):
        assert is_supersingular(mini_params, mini_field, 0,
                                random.Random(1))

    def test_action_results(self, mini_params, mini_field):
        rng = random.Random(3)
        for seed in range(3):
            key = mini_params.sample_private_key(random.Random(seed))
            a = group_action(mini_params, mini_field, 0, key, rng)
            assert is_supersingular(mini_params, mini_field, a,
                                    random.Random(seed))


class TestRejects:
    def test_singular_curves(self, mini_params, mini_field):
        p = mini_params.p
        for bad in (2, p - 2):
            assert not is_supersingular(mini_params, mini_field, bad,
                                        random.Random(0))

    def test_ordinary_curves(self, mini_params, mini_field):
        """Random coefficients are overwhelmingly ordinary curves (there
        are only O(sqrt(p)) supersingular ones)."""
        rng = random.Random(9)
        rejected = 0
        for _ in range(8):
            candidate = rng.randrange(3, mini_params.p - 3)
            if not is_supersingular(mini_params, mini_field, candidate,
                                    random.Random(1)):
                rejected += 1
        assert rejected >= 7  # allow one unlucky supersingular hit

    def test_toy_field_exhaustive_count(self, toy_params):
        """Over p=419 every supersingular A can be enumerated: the
        validator must accept exactly the class-group orbit of A=0."""
        field = FieldContext(toy_params.p)
        reachable = set()
        rng = random.Random(5)
        for e1 in range(-2, 3):
            for e2 in range(-2, 3):
                for e3 in range(-2, 3):
                    reachable.add(group_action(
                        toy_params, field, 0, (e1, e2, e3), rng))
        accepted = {
            a for a in range(toy_params.p)
            if is_supersingular(toy_params, field, a, random.Random(7))
        }
        assert reachable <= accepted
        # class number of Z[sqrt(-419)] bounds the orbit; the accepted
        # set must stay tiny compared with the field
        assert len(accepted) < toy_params.p // 10
