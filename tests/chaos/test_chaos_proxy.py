"""Per-kind behavior of the chaos proxy against a plain echo server.

Each scenario arms one site, pushes framed lines through the proxy,
and asserts the injected network fault — and that the proxy degrades
to exact pass-through afterwards (the one-shot contract the campaign's
recovery guarantee rests on).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.chaos import ChaosProxy, ChaosSite, corrupt_line
from repro.errors import ChaosError


def make_site(kind, *, nth=0, byte=3, mask=0, delay=1, direction=1):
    return ChaosSite(index=0, kind=kind, nth=nth, byte=byte,
                     mask=mask, delay=delay, direction=direction)


async def _echo_env():
    """An upstream that echoes every line and records what it saw."""
    seen: list[bytes] = []

    async def handle(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                seen.append(line)
                writer.write(line)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    proxy = ChaosProxy("127.0.0.1", port)
    proxy_port = await proxy.start()
    return server, proxy, proxy_port, seen


def run(scenario):
    async def wrapped():
        server, proxy, port, seen = await _echo_env()
        try:
            return await asyncio.wait_for(
                scenario(proxy, port, seen), 10)
        finally:
            await proxy.aclose()
            server.close()
            await server.wait_closed()

    return asyncio.run(wrapped())


class TestDrops:
    def test_drop_pre_never_reaches_upstream(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("drop_pre"))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            assert seen == []
            assert proxy.fired
            assert proxy.injections == {"drop_pre": 1}

        run(scenario)

    def test_drop_mid_forwards_then_drops_response(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("drop_mid"))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            # The request DID execute upstream — exactly the lost-
            # response case idempotency keys protect against.
            assert seen == [b'{"id": 1}\n']

        run(scenario)

    def test_drop_post_relays_then_drops(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("drop_post"))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.readline() == b'{"id": 1}\n'
            assert await reader.read() == b""
            writer.close()

        run(scenario)

    def test_one_shot_then_pass_through(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("drop_pre"))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.read() == b""
            writer.close()
            # Reconnect: the site has fired, traffic must pass clean.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 2}\n')
            await writer.drain()
            assert await reader.readline() == b'{"id": 2}\n'
            writer.close()
            assert proxy.injections == {"drop_pre": 1}

        run(scenario)


class TestMangling:
    def test_corrupt_c2s_changes_exactly_one_byte(self):
        async def scenario(proxy, port, seen):
            site = make_site("corrupt", byte=4, mask=17, direction=0)
            proxy.arm(site)
            sent = b'{"id": 1, "pad": "xxxx"}\n'
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(sent)
            await writer.drain()
            echoed = await reader.readline()
            writer.close()
            assert echoed != sent
            assert echoed == corrupt_line(sent, site.byte, site.mask)
            assert seen == [echoed]

        run(scenario)

    def test_corrupt_s2c_leaves_request_intact(self):
        async def scenario(proxy, port, seen):
            site = make_site("corrupt", byte=2, mask=5, direction=1)
            proxy.arm(site)
            sent = b'{"id": 7}\n'
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(sent)
            await writer.drain()
            echoed = await reader.readline()
            writer.close()
            assert seen == [sent]
            assert echoed == corrupt_line(sent, site.byte, site.mask)

        run(scenario)

    def test_partial_write_sends_strict_prefix(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("partial_write", byte=6))
            sent = b'{"id": 1, "pad": "yyyyyyyy"}\n'
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(sent)
            await writer.drain()
            got = await reader.read()
            writer.close()
            assert 0 < len(got) < len(sent)
            assert sent.startswith(got)

        run(scenario)

    def test_duplicate_sends_the_line_twice(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("duplicate"))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.readline() == b'{"id": 1}\n'
            assert await reader.readline() == b'{"id": 1}\n'
            writer.close()

        run(scenario)


class TestTiming:
    def test_latency_below_delays_but_delivers(self):
        async def scenario(proxy, port, seen):
            # delay=1 is odd: the below-timeout branch.
            proxy.arm(make_site("latency", delay=1),
                      latency_below_s=0.02)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await reader.readline() == b'{"id": 1}\n'
            writer.close()

        run(scenario)

    def test_latency_above_holds_past_the_bound(self):
        async def scenario(proxy, port, seen):
            # delay=0 is even: the above-timeout branch.
            proxy.arm(make_site("latency", delay=0),
                      latency_above_s=0.3)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(reader.readline(), 0.1)
            assert await asyncio.wait_for(
                reader.readline(), 2) == b'{"id": 1}\n'
            writer.close()

        run(scenario)

    def test_reorder_swaps_adjacent_responses(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("reorder"), hold_s=1.0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            writer.write(b'{"id": 2}\n')
            await writer.drain()
            assert await reader.readline() == b'{"id": 2}\n'
            assert await reader.readline() == b'{"id": 1}\n'
            writer.close()

        run(scenario)

    def test_reorder_flushes_when_nothing_overtakes(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("reorder"), hold_s=0.05)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b'{"id": 1}\n')
            await writer.drain()
            assert await asyncio.wait_for(
                reader.readline(), 2) == b'{"id": 1}\n'
            writer.close()

        run(scenario)


class TestArming:
    def test_nth_wraps_modulo_lines_per_trial(self):
        async def scenario(proxy, port, seen):
            proxy.arm(make_site("drop_pre", nth=4), lines_per_trial=4)
            assert proxy.armed.nth == 0

        run(scenario)

    def test_corrupt_is_never_a_noop(self):
        line = b'{"id": 1}\n'
        for mask in range(0, 256, 17):
            assert corrupt_line(line, 3, mask) != line

    def test_double_start_rejected(self):
        async def scenario(proxy, port, seen):
            with pytest.raises(ChaosError, match="already started"):
                await proxy.start()

        run(scenario)
