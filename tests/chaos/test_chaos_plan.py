"""Determinism and validation of the chaos plan layer.

Same contract as the fault-plan suite: the seed is the whole story.
Re-running with the seed from a failing chaos report must reproduce
the exact fault sequence, so the plan generator is a pure function of
the seed and survives JSON round trips bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import ALL_KINDS, ChaosPlan, ChaosSite
from repro.errors import ChaosError

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)


class TestPlanDeterminism:
    @given(seed=SEEDS, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_sites(self, seed, n):
        assert (ChaosPlan(seed=seed).generate(n)
                == ChaosPlan(seed=seed).generate(n))

    @given(seed=SEEDS, n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_prefix_stability(self, seed, n):
        """Asking for fewer faults yields a prefix, not a reshuffle."""
        full = ChaosPlan(seed=seed).generate(n)
        assert ChaosPlan(seed=seed).generate(n - 1) == full[:-1]

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_site_fields_in_range(self, seed):
        for site in ChaosPlan(seed=seed).generate(16):
            assert site.kind in ALL_KINDS
            assert 0 <= site.nth < 1 << 16
            assert 0 <= site.byte < 1 << 16
            assert 0 <= site.mask < 1 << 8
            assert 0 <= site.delay < 1 << 8
            assert 0 <= site.direction < 1 << 8

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_kind_restriction_respected(self, seed):
        kinds = ALL_KINDS[:3]
        for site in ChaosPlan(seed=seed, kinds=kinds).generate(16):
            assert site.kind in kinds

    def test_all_kinds_reachable(self):
        kinds = {site.kind
                 for site in ChaosPlan(seed=0).generate(256)}
        assert kinds == set(ALL_KINDS)


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos kind"):
            ChaosPlan(seed=1, kinds=("packet_storm",))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ChaosError, match="at least one kind"):
            ChaosPlan(seed=1, kinds=())

    def test_zero_trials_rejected(self):
        with pytest.raises(ChaosError, match="at least one trial"):
            ChaosPlan(seed=1).generate(0)


class TestRoundTrip:
    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_plan_round_trip(self, seed):
        plan = ChaosPlan(seed=seed, kinds=ALL_KINDS[2:5])
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_site_round_trip(self, seed):
        for site in ChaosPlan(seed=seed).generate(8):
            assert ChaosSite.from_dict(site.to_dict()) == site

    def test_plan_missing_field_rejected(self):
        with pytest.raises(ChaosError, match="missing field"):
            ChaosPlan.from_dict({"seed": 3})

    def test_site_missing_field_rejected(self):
        with pytest.raises(ChaosError, match="missing field"):
            ChaosSite.from_dict({"index": 0, "kind": "latency"})
