"""End-to-end chaos campaigns: every fault recovers or fails clean.

The acceptance gate of the whole resilience stack: a full campaign
over all eight fault kinds must finish with zero hangs, zero escapes,
every recovered secret bit-identical to the pure-Python oracle, and a
report that serializes byte-identically across two same-seed runs.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ALL_KINDS,
    OUTCOME_ESCAPED,
    OUTCOME_HUNG,
    OUTCOMES,
    run_chaos_campaign,
)
from repro.errors import ChaosError

#: Fast fault kinds (no above-timeout latency stall, no client-side
#: timeout wait) for the tests that re-run campaigns.
QUICK_KINDS = ("drop_pre", "drop_mid", "drop_post", "duplicate",
               "reorder")


@pytest.fixture(scope="module")
def campaign(toy_params):
    return run_chaos_campaign(toy_params, seed=3, n=10,
                              timeout_s=0.4)


class TestCampaign:
    def test_nothing_hangs_or_escapes(self, campaign):
        assert campaign.hung == 0
        assert campaign.escaped == 0

    def test_every_site_fired(self, campaign):
        assert all(trial.injected for trial in campaign.trials)

    def test_outcomes_are_classified(self, campaign):
        for trial in campaign.trials:
            assert trial.outcome in OUTCOMES
        counts = campaign.outcomes
        assert sum(counts.values()) == campaign.n
        assert set(counts) == set(OUTCOMES)

    def test_recovery_rate_counts_correct_completions(self, campaign):
        counts = campaign.outcomes
        good = (counts["recovered_by_retry"] + counts["masked"])
        assert campaign.recovery_rate == good / campaign.n
        assert campaign.recovery_rate == 1.0

    def test_by_kind_partitions_trials(self, campaign):
        total = sum(sum(row.values())
                    for row in campaign.by_kind.values())
        assert total == campaign.n

    def test_bench_record_shape(self, campaign):
        record = campaign.to_record()
        assert record["mode"] == "chaos_load"
        assert record["escaped"] == 0
        assert record["hung"] == 0
        assert record["recovery_rate"] == 1.0
        assert record["duration_s"] > 0

    def test_report_excludes_wall_clock(self, campaign):
        data = campaign.to_dict()
        assert "duration_s" not in data
        assert "retries_total" not in data
        assert "reconnects_total" not in data


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self, toy_params):
        kwargs = dict(seed=11, n=6, kinds=QUICK_KINDS, timeout_s=0.4)
        first = run_chaos_campaign(toy_params, **kwargs)
        second = run_chaos_campaign(toy_params, **kwargs)
        assert (json.dumps(first.to_dict(), sort_keys=True)
                == json.dumps(second.to_dict(), sort_keys=True))


class TestValidation:
    def test_zero_retries_rejected(self, toy_params):
        with pytest.raises(ChaosError, match="at least one retry"):
            run_chaos_campaign(toy_params, n=2, retries=0)

    def test_non_positive_timeout_rejected(self, toy_params):
        with pytest.raises(ChaosError, match="timeout_s"):
            run_chaos_campaign(toy_params, n=2, timeout_s=0)

    def test_unknown_kind_rejected(self, toy_params):
        with pytest.raises(ChaosError, match="unknown chaos kind"):
            run_chaos_campaign(toy_params, n=2, kinds=("fire",))


class TestOutcomeConstants:
    def test_failure_outcomes_are_distinct(self):
        assert OUTCOME_HUNG in OUTCOMES
        assert OUTCOME_ESCAPED in OUTCOMES
        assert len(set(OUTCOMES)) == len(OUTCOMES)

    def test_all_kinds_is_the_default_surface(self):
        assert set(QUICK_KINDS) <= set(ALL_KINDS)
