"""Tests for the per-phase group-action cost breakdown."""

from __future__ import annotations

import random

import pytest

from repro.csidh.breakdown import PHASES, group_action_breakdown
from repro.csidh.group_action import group_action
from repro.csidh.opcount import count_group_action
from repro.field.fp import FieldContext


@pytest.fixture(scope="module")
def mini_breakdown(mini_params):
    key = (2, -1, 1, 0, 1, -2, 1)
    return key, group_action_breakdown(mini_params, key, seed=4)


class TestEquivalence:
    def test_same_result_as_plain_action(self, mini_params):
        """The instrumented copy must stay algorithmically identical."""
        key = (1, -1, 2, 0, -1, 1, 0)
        field = FieldContext(mini_params.p)
        plain = group_action(mini_params, field, 0, key,
                             random.Random(9))
        # breakdown uses its own rng; results are key-deterministic
        breakdown_result = group_action_breakdown(mini_params, key,
                                                  seed=9)
        assert breakdown_result.total.mul > 0
        # result equality: rerun plain action and compare coefficients
        plain2 = group_action(mini_params, field, 0, key,
                              random.Random(1234))
        assert plain == plain2  # determinism of the group action itself

    def test_totals_close_to_opcount(self, mini_params):
        """Phase totals must equal a full instrumented run's totals for
        the same algorithm (allowing for RNG-dependent round counts)."""
        key = (1, 0, -1, 2, 0, 1, -1)
        breakdown = group_action_breakdown(mini_params, key, seed=3)
        profile = count_group_action(mini_params, key, seed=3)
        total = breakdown.total
        # same seed => same sampling sequence => identical counts
        assert total.mul == profile.ops.mul
        assert total.sqr == profile.ops.sqr


class TestShape:
    def test_all_phases_present(self, mini_breakdown):
        _, breakdown = mini_breakdown
        assert set(breakdown.phases) == set(PHASES)
        fractions = breakdown.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_ladders_dominate(self, mini_breakdown):
        """Cofactor + kernel ladders plus sampling (Legendre
        exponentiations) carry most of the work — the reason the paper
        optimises multiplication above all."""
        _, breakdown = mini_breakdown
        fractions = breakdown.fractions()
        ladder_like = (fractions["cofactor"] + fractions["kernel"]
                       + fractions["sampling"])
        assert ladder_like > 0.5

    def test_report_renders(self, mini_breakdown):
        _, breakdown = mini_breakdown
        text = breakdown.report()
        for phase in PHASES:
            assert phase in text

    def test_zero_key_zero_phases(self, mini_params):
        breakdown = group_action_breakdown(
            mini_params, (0,) * mini_params.num_primes, seed=0)
        assert breakdown.total.total == 0
