"""Fault-injection campaign acceptance: nothing escapes, almost
everything recovers, and the protocol layer's output validation closes
the loop end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro.csidh.parameters import csidh_toy
from repro.csidh.protocol import Csidh, key_exchange_demo
from repro.errors import FaultDetectedError
from repro.fault import ALL_SITES, FaultPlan, run_campaign
from repro.fault.campaign import (
    OUTCOME_ESCAPED,
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOMES,
)
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext


@pytest.fixture(scope="module")
def report():
    """The reference campaign (same shape the CI smoke job runs)."""
    return run_campaign(csidh_toy().p, seed=1, n=25)


class TestCampaignAcceptance:
    def test_no_fault_escapes(self, report):
        assert report.escaped == 0
        for trial in report.trials:
            assert trial.outcome != OUTCOME_ESCAPED

    def test_recovery_rate_at_least_90_percent(self, report):
        assert report.detected > 0
        assert report.recovery_rate >= 0.9

    def test_every_site_exercised(self, report):
        assert set(report.by_site) == set(ALL_SITES)

    def test_recovered_trials_saw_detection_and_recovery(self, report):
        for trial in report.trials:
            if trial.outcome == OUTCOME_RECOVERED:
                assert trial.detections >= 1
                assert trial.recoveries >= 1
            if trial.outcome == OUTCOME_MASKED:
                assert trial.detections == 0

    def test_outcome_partition(self, report):
        assert sum(report.outcomes.values()) == report.n
        assert set(report.outcomes) == set(OUTCOMES)

    def test_report_is_json_roundtrippable(self, report):
        document = json.loads(json.dumps(report.to_dict()))
        assert document["seed"] == 1
        assert document["escaped"] == 0
        assert len(document["trials"]) == 25
        injected = document["metrics"]["faults_injected_total"]
        assert sum(e["value"] for e in injected) == 25

    def test_trials_follow_the_plan(self, report):
        planned = FaultPlan(seed=1).generate(25)
        assert [t.site for t in report.trials] \
            == [s.site for s in planned]
        assert [t.operation for t in report.trials] \
            == [s.operation for s in planned]


class TestCampaignKnobs:
    def test_site_restriction(self):
        restricted = run_campaign(csidh_toy().p, seed=3, n=6,
                                  sites=("output_corrupt",))
        assert set(restricted.by_site) == {"output_corrupt"}
        assert restricted.escaped == 0

    def test_isa_variant_campaign(self):
        """The hardening layer is variant-agnostic: the ISA-only
        kernels survive the same campaign."""
        isa = run_campaign(csidh_toy().p, seed=4, n=6,
                           variant="reduced.isa")
        assert isa.escaped == 0
        assert isa.recovery_rate >= 0.9


class TestProtocolOutputValidation:
    """The CSIDH fault-attack countermeasure: outputs are validated
    supersingular before release (``verify_output=True``)."""

    def test_honest_exchange_passes_validation(self):
        params = csidh_toy()
        alice = Csidh(params, seed=11, verify_output=True)
        bob = Csidh(params, seed=12, verify_output=True)
        alice_priv, alice_pub = alice.keygen()
        bob_priv, bob_pub = bob.keygen()
        assert alice.shared_secret(alice_priv, bob_pub) \
            == bob.shared_secret(bob_priv, alice_pub)

    def test_corrupted_output_withheld(self):
        params = csidh_toy()
        party = Csidh(params, seed=11, verify_output=True)
        # the singular curve A=2 can never be a group-action result;
        # a fault that skews the walk there must be caught
        with pytest.raises(FaultDetectedError, match="withholding"):
            party._checked_output(2, "shared secret")

    def test_validation_off_by_default(self):
        params = csidh_toy()
        party = Csidh(params, seed=11)
        assert party._checked_output(2, "shared secret") == 2


class TestSelfHealingEndToEnd:
    """A checked simulated context heals around a persistent fault and
    still completes protocol-grade work with correct results."""

    def test_exchange_on_checked_context_matches_pure_python(self):
        params = csidh_toy()
        field = SimulatedFieldContext(params.p, checked=True,
                                      check_interval=1)
        alice = Csidh(params, field=field, seed=21)
        private, public = alice.keygen()

        pure = Csidh(params, field=FieldContext(params.p), seed=21)
        assert public.coefficient == pure.keygen()[1].coefficient

    def test_poisoned_trace_healed_mid_stream(self):
        from repro.fault import arm_fault
        from repro.fault.plan import FaultSite

        p = csidh_toy().p
        context = SimulatedFieldContext(p, checked=True,
                                        check_interval=1)
        reference = FieldContext(p)
        site = FaultSite(index=0, site="replay_closure_corrupt",
                         operation="mul", step=5, bit=13, lane=3,
                         delta=1)
        armed = arm_fault(context._mul, site)
        try:
            # the poison is persistent until recovery evicts the trace;
            # every subsequent product must still come out right
            for a, b in [(3, 5), (7, 11), (p - 1, p - 2), (42, 81)]:
                assert context.mul(a, b) == reference.mul(a, b)
        finally:
            armed.disarm()
        assert context.fault_recoveries == context.fault_detections
