"""Fault-injection campaign acceptance: nothing escapes, almost
everything recovers, and the protocol layer's output validation closes
the loop end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro.csidh.parameters import csidh_toy
from repro.csidh.protocol import Csidh, key_exchange_demo
from repro.errors import FaultDetectedError
from repro.fault import ALL_SITES, FaultPlan, run_campaign
from repro.fault.campaign import (
    OUTCOME_ESCAPED,
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOMES,
)
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext


@pytest.fixture(scope="module")
def report():
    """The reference campaign (same shape the CI smoke job runs)."""
    return run_campaign(csidh_toy().p, seed=1, n=25)


class TestCampaignAcceptance:
    def test_no_fault_escapes(self, report):
        assert report.escaped == 0
        for trial in report.trials:
            assert trial.outcome != OUTCOME_ESCAPED

    def test_recovery_rate_at_least_90_percent(self, report):
        assert report.detected > 0
        assert report.recovery_rate >= 0.9

    def test_every_site_exercised(self, report):
        assert set(report.by_site) == set(ALL_SITES)

    def test_recovered_trials_saw_detection_and_recovery(self, report):
        for trial in report.trials:
            if trial.outcome == OUTCOME_RECOVERED:
                assert trial.detections >= 1
                assert trial.recoveries >= 1
            if trial.outcome == OUTCOME_MASKED:
                assert trial.detections == 0

    def test_outcome_partition(self, report):
        assert sum(report.outcomes.values()) == report.n
        assert set(report.outcomes) == set(OUTCOMES)

    def test_report_is_json_roundtrippable(self, report):
        document = json.loads(json.dumps(report.to_dict()))
        assert document["seed"] == 1
        assert document["escaped"] == 0
        assert len(document["trials"]) == 25
        injected = document["metrics"]["faults_injected_total"]
        assert sum(e["value"] for e in injected) == 25

    def test_trials_follow_the_plan(self, report):
        planned = FaultPlan(seed=1).generate(25)
        assert [t.site for t in report.trials] \
            == [s.site for s in planned]
        assert [t.operation for t in report.trials] \
            == [s.operation for s in planned]


class TestCampaignKnobs:
    def test_site_restriction(self):
        restricted = run_campaign(csidh_toy().p, seed=3, n=6,
                                  sites=("output_corrupt",))
        assert set(restricted.by_site) == {"output_corrupt"}
        assert restricted.escaped == 0

    def test_isa_variant_campaign(self):
        """The hardening layer is variant-agnostic: the ISA-only
        kernels survive the same campaign."""
        isa = run_campaign(csidh_toy().p, seed=4, n=6,
                           variant="reduced.isa")
        assert isa.escaped == 0
        assert isa.recovery_rate >= 0.9


class TestProtocolOutputValidation:
    """The CSIDH fault-attack countermeasure: outputs are validated
    supersingular before release (``verify_output=True``)."""

    def test_honest_exchange_passes_validation(self):
        params = csidh_toy()
        alice = Csidh(params, seed=11, verify_output=True)
        bob = Csidh(params, seed=12, verify_output=True)
        alice_priv, alice_pub = alice.keygen()
        bob_priv, bob_pub = bob.keygen()
        assert alice.shared_secret(alice_priv, bob_pub) \
            == bob.shared_secret(bob_priv, alice_pub)

    def test_corrupted_output_withheld(self):
        params = csidh_toy()
        party = Csidh(params, seed=11, verify_output=True)
        # the singular curve A=2 can never be a group-action result;
        # a fault that skews the walk there must be caught
        with pytest.raises(FaultDetectedError, match="withholding"):
            party._checked_output(2, "shared secret")

    def test_validation_off_by_default(self):
        params = csidh_toy()
        party = Csidh(params, seed=11)
        assert party._checked_output(2, "shared secret") == 2


class TestSelfHealingEndToEnd:
    """A checked simulated context heals around a persistent fault and
    still completes protocol-grade work with correct results."""

    def test_exchange_on_checked_context_matches_pure_python(self):
        params = csidh_toy()
        field = SimulatedFieldContext(params.p, checked=True,
                                      check_interval=1)
        alice = Csidh(params, field=field, seed=21)
        private, public = alice.keygen()

        pure = Csidh(params, field=FieldContext(params.p), seed=21)
        assert public.coefficient == pure.keygen()[1].coefficient

    def test_poisoned_trace_healed_mid_stream(self):
        from repro.fault import arm_fault
        from repro.fault.plan import FaultSite

        p = csidh_toy().p
        context = SimulatedFieldContext(p, checked=True,
                                        check_interval=1)
        reference = FieldContext(p)
        site = FaultSite(index=0, site="replay_closure_corrupt",
                         operation="mul", step=5, bit=13, lane=3,
                         delta=1)
        armed = arm_fault(context._mul, site)
        try:
            # the poison is persistent until recovery evicts the trace;
            # every subsequent product must still come out right
            for a, b in [(3, 5), (7, 11), (p - 1, p - 2), (42, 81)]:
                assert context.mul(a, b) == reference.mul(a, b)
        finally:
            armed.disarm()
        assert context.fault_recoveries == context.fault_detections


class TestJitFaultSymmetry:
    """Replay-cache poisoning must reach a live compiled jit function,
    be detected on the jit tier, and recovery must evict the compiled
    function — not just the trace."""

    def test_poisoning_swaps_and_disarm_restores_the_jit_function(self):
        from repro.fault import arm_fault
        from repro.fault.plan import FaultSite
        from repro.kernels.registry import cached_kernels
        from repro.kernels.runner import KernelRunner

        p = csidh_toy().p
        kernels = cached_kernels(p)
        runner = KernelRunner(kernels["fp_mul.reduced.ise"],
                              engine="jit")
        runner.run(3, 5, check=False)  # compile the jit function
        machine = runner.machine
        pristine = machine._jit_cache[runner.entry]
        pristine_trace = machine._trace_cache[runner.entry]

        site = FaultSite(index=0, site="replay_step_skip",
                         operation="mul", step=5, bit=0, lane=0,
                         delta=1)
        armed = arm_fault(runner, site)
        try:
            assert machine._jit_cache[runner.entry] is not pristine
            assert machine._trace_cache[runner.entry] \
                is not pristine_trace
        finally:
            armed.disarm()
        assert machine._jit_cache[runner.entry] is pristine
        assert machine._trace_cache[runner.entry] is pristine_trace

    def test_jit_context_heals_and_evicts_the_compiled_function(self):
        from repro import telemetry
        from repro.fault import arm_fault
        from repro.fault.plan import FaultSite

        p = csidh_toy().p
        context = SimulatedFieldContext(p, checked=True,
                                        check_interval=1, engine="jit")
        reference = FieldContext(p)
        context.mul(2, 3)  # compile the jit function before arming
        assert context._mul.entry in context._mul.machine._jit_cache

        site = FaultSite(index=0, site="replay_step_skip",
                         operation="mul", step=2, bit=13, lane=3,
                         delta=1)
        armed = arm_fault(context._mul, site)
        try:
            with telemetry.capture(fresh=True) as cap:
                for a, b in [(3, 5), (7, 11), (p - 1, p - 2), (42, 81)]:
                    assert context.mul(a, b) == reference.mul(a, b)
        finally:
            armed.disarm()
        assert context.fault_detections >= 1
        assert context.fault_recoveries == context.fault_detections
        # recovery dropped the compiled tier, not just the trace
        evictions = cap.registry.counter("jit_evictions_total")
        assert evictions.value() >= 1
        invalidations = cap.registry.counter("trace_invalidations_total")
        assert invalidations.value() >= 1

    def test_jit_campaign_no_escapes(self):
        report = run_campaign(csidh_toy().p, seed=1, n=12,
                              engine="jit")
        assert report.engine == "jit"
        assert report.escaped == 0
        assert report.recovery_rate >= 0.9
