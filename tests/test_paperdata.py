"""Meta-tests on the transcribed paper data itself.

If the numbers copied from the paper were mistyped, every comparison in
the evaluation would silently drift.  These tests check the *internal
consistency* of the published values — relations the paper's own data
must satisfy — so a transcription error cannot hide.
"""

from __future__ import annotations

import pytest

from repro.eval.paperdata import (
    PAPER_GROUP_ACTION_CYCLES,
    PAPER_GROUP_ACTION_SPEEDUP,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.kernels.spec import ALL_VARIANTS


class TestTable4Consistency:
    def test_fp_mul_additivity(self):
        """The paper's Fp-mul equals int-mul + Montgomery reduction +
        fast reduction within a couple of cycles of call overhead."""
        for variant in ALL_VARIANTS:
            parts = (PAPER_TABLE4["int_mul"][variant]
                     + PAPER_TABLE4["mont_redc"][variant]
                     + PAPER_TABLE4["fast_reduce"][variant])
            whole = PAPER_TABLE4["fp_mul"][variant]
            assert abs(whole - parts) <= 8, variant

    def test_fp_sqr_additivity(self):
        for variant in ALL_VARIANTS:
            parts = (PAPER_TABLE4["int_sqr"][variant]
                     + PAPER_TABLE4["mont_redc"][variant]
                     + PAPER_TABLE4["fast_reduce"][variant])
            whole = PAPER_TABLE4["fp_sqr"][variant]
            assert abs(whole - parts) <= 8, variant

    def test_full_radix_ise_blind_spots(self):
        """Paper columns: full-radix ISEs leave fast reduction and
        Fp-add/sub unchanged."""
        for op in ("fast_reduce", "fp_add", "fp_sub"):
            assert PAPER_TABLE4[op]["full.isa"] \
                == PAPER_TABLE4[op]["full.ise"], op

    def test_full_radix_ise_mul_equals_sqr(self):
        """Paper: 371 == 371 (no ISE squaring trick at full radix)."""
        assert PAPER_TABLE4["int_mul"]["full.ise"] \
            == PAPER_TABLE4["int_sqr"]["full.ise"]

    def test_every_ise_cell_at_most_isa(self):
        for op, row in PAPER_TABLE4.items():
            assert row["full.ise"] <= row["full.isa"], op
            assert row["reduced.ise"] <= row["reduced.isa"], op


class TestGroupActionConsistency:
    def test_speedups_match_cycles(self):
        base = PAPER_GROUP_ACTION_CYCLES["full.isa"]
        for variant in ALL_VARIANTS:
            implied = base / PAPER_GROUP_ACTION_CYCLES[variant]
            stated = PAPER_GROUP_ACTION_SPEEDUP[variant]
            assert implied == pytest.approx(stated, abs=0.011), variant

    def test_headline(self):
        assert PAPER_GROUP_ACTION_SPEEDUP["reduced.ise"] == 1.71


class TestTable3Consistency:
    def test_dsps_constant(self):
        dsps = {row[2] for row in PAPER_TABLE3.values()}
        assert dsps == {16}

    def test_overheads_in_claimed_range(self):
        """Abstract: 'hardware overhead of about 10%'."""
        base = PAPER_TABLE3["base"]
        for key in ("full", "reduced"):
            extended = PAPER_TABLE3[key]
            lut_pct = 100 * (extended[0] - base[0]) / base[0]
            reg_pct = 100 * (extended[1] - base[1]) / base[1]
            assert 3 < lut_pct < 10
            assert 8 < reg_pct < 12

    def test_paper_text_percentages(self):
        """Sect. 4 quotes 4%/9% LUTs and 11%/9% Regs — re-derive."""
        base = PAPER_TABLE3["base"]
        full = PAPER_TABLE3["full"]
        reduced = PAPER_TABLE3["reduced"]
        assert round(100 * (full[0] - base[0]) / base[0]) == 4
        assert round(100 * (reduced[0] - base[0]) / base[0]) == 9
        assert round(100 * (full[1] - base[1]) / base[1]) == 11
        assert round(100 * (reduced[1] - base[1]) / base[1]) == 9
