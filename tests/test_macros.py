"""Tests for the MAC listings (Listings 1-4) and carry propagation.

Verifies both the paper's instruction-count claims and the functional
equivalence of all four MAC variants on the simulator.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.macros import (
    LISTING_INSTRUCTION_COUNTS,
    carry_propagate_isa,
    carry_propagate_ise,
    mac_full_radix_isa,
    mac_full_radix_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)
from repro.rv64.bits import MASK64
from tests.helpers import run_asm

U64 = st.integers(min_value=0, max_value=MASK64)
U57 = st.integers(min_value=0, max_value=(1 << 57) - 1)


class TestInstructionCounts:
    """The paper's headline software numbers: 8->4 and 6->2."""

    def test_full_radix_isa_is_8(self):
        lines = mac_full_radix_isa("s0", "s1", "s2", "a0", "a1",
                                   "t0", "t1")
        assert len(lines) == 8 == \
            LISTING_INSTRUCTION_COUNTS["mac_full_radix_isa"]

    def test_full_radix_ise_is_4(self):
        lines = mac_full_radix_ise("s0", "s1", "s2", "a0", "a1", "t0")
        assert len(lines) == 4

    def test_reduced_radix_isa_is_6(self):
        lines = mac_reduced_radix_isa("s0", "s1", "a0", "a1", "t0", "t1")
        assert len(lines) == 6

    def test_reduced_radix_ise_is_2(self):
        assert len(mac_reduced_radix_ise("s0", "s1", "a0", "a1")) == 2

    def test_carry_propagation_3_to_2(self):
        assert len(carry_propagate_isa("s0", "s1", "t1", "t0")) == 3
        assert len(carry_propagate_ise("s0", "s1", "t1")) == 2

    def test_ise_listings_use_only_custom_mnemonics_plus_add(self):
        lines = mac_full_radix_ise("s0", "s1", "s2", "a0", "a1", "t0")
        mnemonics = {line.split()[0] for line in lines}
        assert mnemonics == {"maddhu", "maddlu", "cadd", "add"}
        lines = mac_reduced_radix_ise("s0", "s1", "a0", "a1")
        assert {line.split()[0] for line in lines} == \
            {"madd57hu", "madd57lu"}


def _acc192(machine) -> int:
    return ((machine.regs["s2"] << 128) | (machine.regs["s1"] << 64)
            | machine.regs["s0"])


class TestFullRadixMacSemantics:
    """(e||h||l) += a*b for both flavours, against the big-int oracle."""

    @settings(max_examples=25)
    @given(U64, U64, U64, U64, st.integers(0, 3))
    def test_isa_listing1(self, a, b, low, high, extra):
        source = "\n".join(
            mac_full_radix_isa("s2", "s1", "s0", "a0", "a1", "t0", "t1"))
        machine = run_asm(source, {
            "a0": a, "a1": b, "s0": low, "s1": high, "s2": extra})
        expected = ((extra << 128) | (high << 64) | low) + a * b
        assert _acc192(machine) == expected & ((1 << 192) - 1)

    @settings(max_examples=25)
    @given(U64, U64, U64, U64, st.integers(0, 3))
    def test_ise_listing3(self, a, b, low, high, extra):
        source = "\n".join(
            mac_full_radix_ise("s2", "s1", "s0", "a0", "a1", "t0"))
        machine = run_asm(source, {
            "a0": a, "a1": b, "s0": low, "s1": high, "s2": extra})
        expected = ((extra << 128) | (high << 64) | low) + a * b
        assert _acc192(machine) == expected & ((1 << 192) - 1)

    @settings(max_examples=25)
    @given(U64, U64, U64, U64)
    def test_isa_and_ise_agree(self, a, b, low, high):
        regs = {"a0": a, "a1": b, "s0": low, "s1": high, "s2": 0}
        isa_m = run_asm("\n".join(
            mac_full_radix_isa("s2", "s1", "s0", "a0", "a1", "t0",
                               "t1")), dict(regs))
        ise_m = run_asm("\n".join(
            mac_full_radix_ise("s2", "s1", "s0", "a0", "a1", "t0")),
            dict(regs))
        assert _acc192(isa_m) == _acc192(ise_m)


class TestReducedRadixMacSemantics:
    @settings(max_examples=25)
    @given(U57, U57, U64, st.integers(0, (1 << 60) - 1))
    def test_isa_listing2(self, a, b, low, high):
        source = "\n".join(
            mac_reduced_radix_isa("s1", "s0", "a0", "a1", "t0", "t1"))
        machine = run_asm(source,
                          {"a0": a, "a1": b, "s0": low, "s1": high})
        got = (machine.regs["s1"] << 64) | machine.regs["s0"]
        assert got == (((high << 64) | low) + a * b) & ((1 << 128) - 1)

    @settings(max_examples=25)
    @given(U57, U57, st.integers(0, (1 << 60) - 1),
           st.integers(0, (1 << 60) - 1))
    def test_ise_listing4(self, a, b, low, high):
        # split accumulators: value = l + (h << 57)
        source = "\n".join(mac_reduced_radix_ise("s1", "s0", "a0", "a1"))
        machine = run_asm(source,
                          {"a0": a, "a1": b, "s0": low, "s1": high})
        got = machine.regs["s0"] + (machine.regs["s1"] << 57)
        assert got == (low + (high << 57)) + a * b


class TestCarryPropagation:
    @settings(max_examples=25)
    @given(st.integers(0, (1 << 62) - 1), U57)
    def test_isa_sequence(self, x, y):
        source = "li t1, 0x1ffffffffffffff\n" + "\n".join(
            carry_propagate_isa("s0", "s1", "t1", "t0"))
        machine = run_asm(source, {"s0": x, "s1": y})
        assert machine.regs["s0"] == x & ((1 << 57) - 1)
        assert machine.regs["s1"] == y + (x >> 57)

    @settings(max_examples=25)
    @given(st.integers(0, (1 << 62) - 1), U57)
    def test_ise_sequence_matches_isa(self, x, y):
        mask_load = "li t1, 0x1ffffffffffffff\n"
        isa = run_asm(mask_load + "\n".join(
            carry_propagate_isa("s0", "s1", "t1", "t0")),
            {"s0": x, "s1": y})
        ise = run_asm(mask_load + "\n".join(
            carry_propagate_ise("s0", "s1", "t1")),
            {"s0": x, "s1": y})
        assert isa.regs["s0"] == ise.regs["s0"]
        assert isa.regs["s1"] == ise.regs["s1"]

    def test_negative_limb_propagates_borrow(self):
        # signed limbs: a -1 carry must flow into the next limb
        x = (1 << 64) - 1  # represents -1
        source = "li t1, 0x1ffffffffffffff\n" + "\n".join(
            carry_propagate_ise("s0", "s1", "t1"))
        machine = run_asm(source, {"s0": x, "s1": 10})
        assert machine.regs["s1"] == 9  # 10 + (-1)
        assert machine.regs["s0"] == (1 << 57) - 1
