"""Tests for the memory layout constants and the Kernel descriptor."""

from __future__ import annotations

import pytest

from repro.kernels.layout import (
    ARG_A_ADDR,
    ARG_B_ADDR,
    CODE_BASE,
    CONST_BASE,
    ConstPoolLayout,
    RESULT_ADDR,
    SCRATCH_ADDR,
)


class TestLayout:
    def test_regions_disjoint(self):
        """Code, constants, operands, result and scratch must never
        overlap for any supported limb count."""
        max_limbs = 20
        regions = [
            (CODE_BASE, CODE_BASE + 0x1000),
            (CONST_BASE,
             CONST_BASE + ConstPoolLayout(max_limbs).size_bytes),
            (ARG_A_ADDR, ARG_A_ADDR + 16 * 8 * max_limbs),
            (ARG_B_ADDR, ARG_B_ADDR + 8 * max_limbs),
            (RESULT_ADDR, RESULT_ADDR + 16 * 8 * max_limbs),
            (SCRATCH_ADDR, SCRATCH_ADDR + 32 * 8 * max_limbs),
        ]
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_addresses_eight_byte_aligned(self):
        for address in (CONST_BASE, ARG_A_ADDR, ARG_B_ADDR,
                        RESULT_ADDR, SCRATCH_ADDR):
            assert address % 8 == 0

    def test_buffers_do_not_alias_dcache_sets(self):
        """The operand regions must land in different 16 kB/4-way
        D$ sets (same set + >4 regions would thrash; see layout.py)."""
        line, sets = 64, 64
        set_of = lambda a: (a // line) % sets
        indices = [set_of(a) for a in
                   (ARG_A_ADDR, ARG_B_ADDR, RESULT_ADDR, SCRATCH_ADDR)]
        assert len(set(indices)) == len(indices)

    def test_const_pool_offsets(self):
        layout = ConstPoolLayout(9)
        assert layout.modulus_offset == 0
        assert layout.n0_offset == 72
        assert layout.mask_offset == 80
        assert layout.size_bytes == 88


class TestKernelDescriptor:
    def test_properties(self, kernels512):
        kernel = kernels512["fp_mul.reduced.ise"]
        assert kernel.uses_ise
        assert kernel.radix_name == "reduced"
        assert "fp_mul.reduced.ise" in str(kernel)
        isa_kernel = kernels512["fp_mul.full.isa"]
        assert not isa_kernel.uses_ise
        assert isa_kernel.radix_name == "full"

    def test_shapes_consistent(self, kernels512):
        for kernel in kernels512.values():
            limbs = kernel.context.radix.limbs
            assert all(n in (limbs, 2 * limbs)
                       for n in kernel.input_limbs)
            assert kernel.output_limbs in (limbs, 2 * limbs)

    def test_samplers_in_domain(self, kernels512, rng):
        """Sampled operands must satisfy each kernel's preconditions
        (reduced < p, fast-reduce < 2p, redc < p*R)."""
        for kernel in kernels512.values():
            values = kernel.sampler(rng)
            assert len(values) == len(kernel.input_limbs)
            capacity = 1 << (kernel.context.radix.bits
                             * max(kernel.input_limbs))
            assert all(0 <= v < capacity for v in values)
