"""Tests for the functional machine: execution control and diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.rv64.assembler import assemble
from repro.rv64.isa import BASE_ISA
from repro.rv64.machine import HALT_ADDRESS, Machine
from tests.helpers import result_of, run_asm


class TestExecutionControl:
    def test_ret_halts(self):
        machine = run_asm("li a0, 5")
        assert machine.regs["a0"] == 5

    def test_ebreak_halts(self):
        machine = run_asm("li a0, 1\nebreak\nli a0, 2", append_ret=False)
        assert machine.regs["a0"] == 1

    def test_ecall_raises(self):
        with pytest.raises(SimulationError, match="ecall"):
            run_asm("ecall", append_ret=False)

    def test_fetch_from_unmapped_raises(self):
        machine = Machine(BASE_ISA)
        machine.load_program(assemble("nop", BASE_ISA))
        with pytest.raises(SimulationError, match="unmapped"):
            machine.run(0x1000, setup_return=False)

    def test_step_limit(self):
        machine = Machine(BASE_ISA, max_steps=100)
        entry = machine.load_program(assemble("loop: j loop", BASE_ISA))
        with pytest.raises(SimulationError, match="step limit"):
            machine.run(entry)

    def test_ra_points_to_halt(self):
        machine = run_asm("mv a0, ra")
        assert machine.regs["a0"] == HALT_ADDRESS

    def test_sp_initialised(self):
        machine = run_asm("mv a0, sp")
        assert machine.regs["a0"] != 0


class TestStatistics:
    def test_retired_count(self):
        machine = run_asm("nop\nnop\nnop")
        assert result_of(machine).instructions_retired == 4  # + ret

    def test_histogram(self):
        machine = Machine(BASE_ISA)
        machine.collect_histogram = True
        entry = machine.load_program(
            assemble("add a0, a0, a1\nadd a0, a0, a1\nmul a2, a0, a1\nret",
                     BASE_ISA))
        result = machine.run(entry)
        assert result.histogram["add"] == 2
        assert result.histogram["mul"] == 1
        assert result.histogram["jalr"] == 1

    def test_no_cycles_without_pipeline(self):
        machine = run_asm("nop", pipeline=None)
        assert result_of(machine).cycles is None

    def test_trace_hook_sees_instructions(self):
        machine = Machine(BASE_ISA)
        entry = machine.load_program(assemble("li a0, 7\nret", BASE_ISA))
        seen = []
        machine.add_trace_hook(lambda state, ins: seen.append(ins.mnemonic))
        machine.run(entry)
        assert seen == ["addi", "jalr"]

    def test_program_extent(self):
        machine = Machine(BASE_ISA)
        machine.load_program(assemble("nop\nnop\nret", BASE_ISA), 0x2000)
        low, size = machine.program_extent()
        assert low == 0x2000
        assert size == 12


class TestReset:
    def test_reset_clears_registers_keeps_memory(self):
        machine = run_asm("li a0, 9\nsd a0, 0(a1)", {"a1": 0x9000})
        machine.reset()
        assert machine.regs["a0"] == 0
        assert machine.mem.load_u64(0x9000) == 9

    def test_rerun_after_reset(self):
        machine = Machine(BASE_ISA)
        entry = machine.load_program(
            assemble("addi a0, a0, 1\nret", BASE_ISA))
        machine.run(entry)
        machine.run(entry)  # state carries over without reset
        assert machine.regs["a0"] == 2
        machine.reset()
        machine.run(entry)
        assert machine.regs["a0"] == 1
