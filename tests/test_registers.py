"""Unit tests for the register file and name resolution."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.rv64.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    RegisterFile,
    register_index,
    register_name,
)


class TestNameResolution:
    def test_abi_names(self):
        assert register_index("zero") == 0
        assert register_index("ra") == 1
        assert register_index("sp") == 2
        assert register_index("a0") == 10
        assert register_index("t6") == 31
        assert register_index("s11") == 27

    def test_architectural_names(self):
        for i in range(NUM_REGISTERS):
            assert register_index(f"x{i}") == i

    def test_fp_alias(self):
        assert register_index("fp") == register_index("s0") == 8

    def test_case_and_whitespace(self):
        assert register_index(" A0 ") == 10
        assert register_index("X5") == 5

    def test_integer_passthrough(self):
        assert register_index(7) == 7

    def test_bad_names(self):
        with pytest.raises(SimulationError):
            register_index("x32")
        with pytest.raises(SimulationError):
            register_index("bogus")
        with pytest.raises(SimulationError):
            register_index(32)

    def test_register_name_roundtrip(self):
        for i in range(NUM_REGISTERS):
            assert register_index(register_name(i)) == i

    def test_register_name_bounds(self):
        with pytest.raises(SimulationError):
            register_name(32)


class TestRegisterFile:
    def test_initial_zero(self):
        rf = RegisterFile()
        assert all(rf.read(i) == 0 for i in range(NUM_REGISTERS))

    def test_write_read(self):
        rf = RegisterFile()
        rf.write("a0", 123)
        assert rf.read("a0") == 123
        assert rf.read("x10") == 123

    def test_x0_hardwired(self):
        rf = RegisterFile()
        rf.write("zero", 999)
        assert rf.read("zero") == 0
        rf.write(0, 999)
        assert rf.read(0) == 0

    def test_truncation_to_64_bits(self):
        rf = RegisterFile()
        rf.write("t0", 1 << 64)
        assert rf.read("t0") == 0
        rf.write("t0", -1)
        assert rf.read("t0") == (1 << 64) - 1

    def test_item_access(self):
        rf = RegisterFile()
        rf["s3"] = 42
        assert rf["s3"] == 42

    def test_reset(self):
        rf = RegisterFile()
        rf["t1"] = 5
        rf.reset()
        assert rf["t1"] == 0

    def test_snapshot_names(self):
        rf = RegisterFile()
        rf["a1"] = 7
        snap = rf.snapshot()
        assert snap["a1"] == 7
        assert "zero" in snap

    def test_dump_contains_all(self):
        text = RegisterFile().dump()
        for name in ABI_NAMES:
            assert name in text
