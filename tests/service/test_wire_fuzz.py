"""Hypothesis fuzzing of the wire protocol over real TCP sockets.

The server-side contract under arbitrary client behavior: every line
gets an in-band answer (or is a clean close), every error carries a
stable lowercase code, the connection keeps serving afterwards, and a
retried idempotent request never executes twice.  The run counter in
``service.stats()`` is the double-execution oracle.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import KeyExchangeService, TenantConfig, start_server
from repro.service.wire import frame_decode, frame_encode

#: Wire ids used by the liveness probe, far above anything the fuzz
#: strategies generate.
_PROBE_ID = 10**9


@pytest.fixture()
def wire_env(toy_params):
    """One live service + TCP server shared by a test's examples."""
    loop = asyncio.new_event_loop()

    async def setup():
        service = KeyExchangeService(toy_params, [TenantConfig(
            "t", engine="replay", lanes=2, max_queue=8,
            variant="reduced.ise")])
        server = await start_server(service)
        return service, server

    service, server = loop.run_until_complete(setup())
    env = SimpleNamespace(
        loop=loop, service=service,
        port=server.sockets[0].getsockname()[1])
    yield env

    async def teardown():
        server.close()
        await server.wait_closed()
        await service.aclose()

    loop.run_until_complete(teardown())
    loop.close()


async def _read_response(reader, rid):
    """Read frames until the one answering *rid* (others may be the
    error responses provoked by the fuzzed payload)."""
    for _ in range(400):
        line = await asyncio.wait_for(reader.readline(), 10)
        assert line, "server closed the connection"
        try:
            response = frame_decode(line)
        except ValueError:
            continue
        if response.get("id") == rid:
            return response
    raise AssertionError(f"no response for id {rid}")


async def _poke(env, payload: bytes):
    """Send *payload*, then prove the connection still serves."""
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", env.port)
    try:
        writer.write(payload)
        writer.write(frame_encode({"id": _PROBE_ID, "op": "ping"}))
        await writer.drain()
        probe = await _read_response(reader, _PROBE_ID)
        assert probe["ok"] is True
        assert probe["result"] == "pong"
    finally:
        writer.close()


def drive(env, coroutine):
    return env.loop.run_until_complete(
        asyncio.wait_for(coroutine, 30))


class TestArbitraryBytes:
    @given(junk=st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_junk_never_kills_the_connection(self, wire_env, junk):
        drive(wire_env, _poke(wire_env, junk + b"\n"))

    @given(cut=st.integers(min_value=1, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_truncated_request_fails_clean(self, wire_env, cut):
        frame = frame_encode({"id": 1, "op": "keygen", "tenant": "t",
                              "seed": 1})
        truncated = frame[:min(cut, len(frame) - 2)] + b"\n"
        drive(wire_env, _poke(wire_env, truncated))

    @given(junk=st.binary(max_size=120),
           frames=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_interleaved_junk_and_valid_frames(self, wire_env, junk,
                                               frames):
        async def scenario():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", wire_env.port)
            try:
                for index in range(frames):
                    writer.write(junk + b"\n")
                    writer.write(frame_encode(
                        {"id": 1000 + index, "op": "ping"}))
                await writer.drain()
                for index in range(frames):
                    response = await _read_response(
                        reader, 1000 + index)
                    assert response["ok"] is True
            finally:
                writer.close()

        drive(wire_env, scenario())


_WEIRD = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(),
    st.text(max_size=8), st.lists(st.integers(), max_size=3),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=2),
)


class TestWrongTypes:
    @given(op=_WEIRD, tenant=_WEIRD, seed=_WEIRD)
    @settings(max_examples=30, deadline=None)
    def test_wrong_typed_fields_get_stable_codes(self, wire_env, op,
                                                 tenant, seed):
        async def scenario():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", wire_env.port)
            try:
                writer.write(frame_encode({
                    "id": 1, "op": op, "tenant": tenant,
                    "seed": seed}))
                await writer.drain()
                response = await _read_response(reader, 1)
                if not response.get("ok"):
                    code = response["code"]
                    assert isinstance(code, str)
                    assert code == code.lower() and " " not in code
                # and the connection keeps serving:
                writer.write(frame_encode(
                    {"id": _PROBE_ID, "op": "ping"}))
                await writer.drain()
                probe = await _read_response(reader, _PROBE_ID)
                assert probe["ok"] is True
            finally:
                writer.close()

        drive(wire_env, scenario())

    @given(rid=_WEIRD)
    @settings(max_examples=20, deadline=None)
    def test_any_id_type_is_echoed_back(self, wire_env, rid):
        async def scenario():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", wire_env.port)
            try:
                writer.write(frame_encode({"id": rid, "op": "ping"}))
                await writer.drain()
                for _ in range(10):
                    response = frame_decode(
                        await asyncio.wait_for(reader.readline(), 10))
                    if response.get("id") == rid or (
                            isinstance(rid, float)
                            and response.get("id") is not None):
                        break
                assert response["ok"] is True
            finally:
                writer.close()

        drive(wire_env, scenario())

    def test_duplicate_wire_ids_both_answered(self, wire_env):
        async def scenario():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", wire_env.port)
            try:
                writer.write(frame_encode({"id": 1, "op": "ping"}))
                writer.write(frame_encode({"id": 1, "op": "ping"}))
                await writer.drain()
                for _ in range(2):
                    response = frame_decode(
                        await asyncio.wait_for(reader.readline(), 10))
                    assert response["id"] == 1
                    assert response["ok"] is True
            finally:
                writer.close()

        drive(wire_env, scenario())


class TestIdempotentRetries:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           dups=st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_retries_never_double_execute(self, wire_env, seed, dups):
        async def scenario():
            before = wire_env.service.stats()["requests_total"]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", wire_env.port)
            try:
                request = {"op": "keygen", "tenant": "t",
                           "seed": seed, "idem": f"fuzz-{seed}"}
                for index in range(dups + 1):
                    writer.write(frame_encode(
                        dict(request, id=index + 1)))
                await writer.drain()
                results = set()
                for index in range(dups + 1):
                    response = await _read_response(
                        reader, index + 1)
                    assert response["ok"] is True
                    results.add(response["result"])
                # Every duplicate saw the same bits, and the service
                # ran the operation exactly once.
                assert len(results) == 1
                after = wire_env.service.stats()["requests_total"]
                assert after - before == 1
            finally:
                writer.close()

        drive(wire_env, scenario())
