"""Concurrent sessions are bit-identical to sequential execution.

The service's whole value proposition is *safe* concurrency: N
exchanges in flight across tenants and lanes must produce exactly the
public keys and shared secrets the sequential pure-Python reference
produces — on every execution engine — and the process-global
telemetry counters must account for every kernel run exactly (a lost
update under the old unlocked counters showed up here first).
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro import telemetry
from repro.csidh.parameters import csidh_toy
from repro.rv64.machine import ENGINES
from repro.service import (
    KeyExchangeService,
    TenantConfig,
    default_tenant_configs,
    expected_handshakes,
    run_load,
)

EXCHANGES = 6


@pytest.fixture(scope="module")
def toy():
    return csidh_toy()


@pytest.fixture(scope="module")
def oracle(toy):
    """Sequential pure-Python reference for the shared session seeds."""
    return expected_handshakes(toy, EXCHANGES, seed=0)


class TestConcurrentEqualsSequential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_concurrent_exchanges_match_reference(self, toy, oracle,
                                                  engine):
        """Fully concurrent handshakes across 2 tenants x 2 lanes are
        bit-identical to the sequential oracle on each engine."""
        report = asyncio.run(run_load(
            toy, exchanges=EXCHANGES, concurrency=EXCHANGES,
            tenants=2, lanes=2, engine=engine, seed=0,
            oracle=oracle,
        ))
        assert report.divergences == 0
        assert report.requests == 4 * EXCHANGES

    def test_hardened_concurrent_exchanges_match_reference(self, toy,
                                                           oracle):
        """Checked contexts + output validation stay on under
        concurrency and still agree with the reference."""
        report = asyncio.run(run_load(
            toy, exchanges=4, concurrency=4, tenants=2, lanes=1,
            engine="replay", hardened=True, seed=0, oracle=oracle,
        ))
        assert report.divergences == 0
        assert report.fault_detections == 0

    def test_single_lane_tenant_serialises_but_stays_correct(self,
                                                             toy,
                                                             oracle):
        """One tenant, one lane, many concurrent sessions: the lane
        queue serialises access to the machine, results still match."""
        report = asyncio.run(run_load(
            toy, exchanges=4, concurrency=4, tenants=1, lanes=1,
            engine="replay", seed=0, oracle=oracle,
        ))
        assert report.divergences == 0


class TestCounterExactness:
    def test_kernel_run_counters_sum_exactly_under_service_load(
            self, toy):
        """Each scalar service ``mul`` is exactly two fp_mul kernel
        runs (Montgomery conversion + product); K concurrent coalesced
        requests must account for exactly 2K runs — and the cycle and
        instruction totals must equal a sequential rerun of the same
        multiset (the kernels are constant-time, so totals are
        deterministic)."""
        rng = random.Random(9)
        ops = [(rng.randrange(toy.p), rng.randrange(toy.p))
               for _ in range(48)]

        async def drive(service: KeyExchangeService):
            async with service:
                # warm outside the capture: trace compilation noise
                # (and its machine runs) stays out of the books
                await service.field_op("t0", "mul", [3, 5])
                await service.field_op("t1", "mul", [3, 5])
                with telemetry.capture(fresh=True) as cap:
                    results = await asyncio.gather(*(
                        service.field_op(f"t{i % 2}", "mul", [a, b])
                        for i, (a, b) in enumerate(ops)))
                    await service.drain()
                return cap, results

        configs = [
            TenantConfig("t0", engine="replay", lanes=2, max_queue=64),
            TenantConfig("t1", engine="replay", lanes=2, max_queue=64),
        ]
        cap, results = asyncio.run(
            drive(KeyExchangeService(toy, configs)))
        assert results == [(a * b) % toy.p for a, b in ops]

        runs = cap.registry.counter("kernel_runs_total")
        assert runs.total() == 2 * len(ops)
        concurrent_cycles = cap.registry.counter(
            "kernel_cycles_total").total()
        concurrent_instructions = cap.registry.counter(
            "kernel_instructions_total").total()

        # sequential rerun of the same multiset on a fresh service
        async def sequential(service: KeyExchangeService):
            async with service:
                await service.field_op("t0", "mul", [3, 5])
                await service.field_op("t1", "mul", [3, 5])
                with telemetry.capture(fresh=True) as cap:
                    for i, (a, b) in enumerate(ops):
                        await service.field_op(
                            f"t{i % 2}", "mul", [a, b])
                    await service.drain()
                return cap

        configs = [
            TenantConfig("t0", engine="replay", lanes=2, max_queue=64),
            TenantConfig("t1", engine="replay", lanes=2, max_queue=64),
        ]
        seq_cap = asyncio.run(sequential(KeyExchangeService(toy, configs)))
        assert seq_cap.registry.counter(
            "kernel_runs_total").total() == 2 * len(ops)
        assert seq_cap.registry.counter(
            "kernel_cycles_total").total() == concurrent_cycles
        assert seq_cap.registry.counter(
            "kernel_instructions_total").total() \
            == concurrent_instructions

    def test_no_lost_updates_hammering_record_kernel_run(self):
        """The raw counter path itself: 8 threads x 500 increments
        must sum to exactly 4000 runs (pre-lock this dropped counts)."""
        threads, each = 8, 500
        barrier = threading.Barrier(threads)

        def hammer() -> None:
            barrier.wait()
            for _ in range(each):
                telemetry.record_kernel_run(
                    "hammer_kernel", "replay", 7, 3)

        with telemetry.capture(fresh=True) as cap:
            workers = [threading.Thread(target=hammer)
                       for _ in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        runs = cap.registry.counter("kernel_runs_total")
        assert runs.value(kernel="hammer_kernel",
                          engine="replay") == threads * each
        cycles = cap.registry.counter("kernel_cycles_total")
        assert cycles.value(kernel="hammer_kernel") \
            == 7 * threads * each
        instructions = cap.registry.counter(
            "kernel_instructions_total")
        assert instructions.value(kernel="hammer_kernel") \
            == 3 * threads * each


class TestTenantIsolation:
    def test_concurrent_tenants_never_share_runner_machines(self, toy):
        """After a concurrent run, every lane's pooled runners are
        distinct objects from every other lane's (scope partitioning
        end-to-end)."""

        async def drive():
            service = KeyExchangeService(
                toy, default_tenant_configs(
                    2, engine="replay", lanes=2, max_queue=32))
            async with service:
                await asyncio.gather(*(
                    service.field_op(f"tenant-{i % 2}", "mul",
                                     [i + 2, i + 3])
                    for i in range(8)))
                await service.drain()
                machines = set()
                lanes_with_contexts = 0
                for tenant in service.tenants.values():
                    for lane in tenant.lanes:
                        for ctx in lane._contexts.values():
                            lanes_with_contexts += 1
                            machine_id = id(ctx._mul.machine)
                            assert machine_id not in machines
                            machines.add(machine_id)
                assert lanes_with_contexts >= 2

        asyncio.run(drive())
