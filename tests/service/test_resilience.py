"""The resilience stack: deadlines, idempotent retries, the circuit
breaker, health/drain — plus the two wire-layer regression fixes
(internal errors must answer in-band, oversized lines must not tear
down the connection).

Everything here runs against real in-process services and, where the
contract is about the wire, over real TCP sockets.
"""

from __future__ import annotations

import asyncio
import json
import zlib

import pytest

from repro import telemetry
from repro.errors import (
    CircuitOpenError,
    DeadlineError,
    ServiceError,
)
from repro.service import (
    CircuitBreaker,
    KeyExchangeService,
    ServiceClient,
    TenantConfig,
    start_server,
)
from repro.service.load import expected_handshakes
from repro.service.wire import (
    MAX_LINE_BYTES,
    WIRE_BUFFER_LIMIT,
    frame_decode,
    frame_encode,
)


def run(coroutine_factory, timeout=30):
    async def wrapped():
        return await asyncio.wait_for(coroutine_factory(), timeout)

    return asyncio.run(wrapped())


def make_service(params, **kwargs):
    kwargs.setdefault("lanes", 2)
    kwargs.setdefault("max_queue", 8)
    breaker_kwargs = {
        key: kwargs.pop(key)
        for key in ("breaker_threshold", "breaker_reset_s",
                    "breaker_clock")
        if key in kwargs
    }
    config = TenantConfig("t", engine="replay",
                          variant="reduced.ise", **kwargs)
    return KeyExchangeService(params, [config], **breaker_kwargs)


async def raw_connect(server):
    port = server.sockets[0].getsockname()[1]
    return await asyncio.open_connection("127.0.0.1", port)


async def send_frame(writer, payload):
    writer.write(frame_encode(payload))
    await writer.drain()


async def read_frame(reader):
    return frame_decode(await reader.readline())


class TestDeadlines:
    def test_expired_deadline_rejected_with_stable_code(
            self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            try:
                with pytest.raises(DeadlineError) as err:
                    await service.keygen("t", 1, deadline_s=1e-9)
                assert err.value.code == "deadline"
                stats = service.stats()
                assert stats["deadline_exceeded_total"] == 1
                assert stats["tenants"]["t"]["deadline_exceeded"] == 1
            finally:
                await service.aclose()

        run(scenario)

    def test_late_work_drains_and_lane_recovers(self, toy_params):
        async def scenario():
            service = make_service(toy_params, lanes=1)
            oracle = expected_handshakes(toy_params, 1, seed=0)
            try:
                # Deadline far too tight for a real keygen: the
                # request fails, but its late work must drain and
                # hand the lane back.
                with pytest.raises(DeadlineError):
                    await service.keygen("t", 1, deadline_s=1e-6)
                pub = await service.keygen("t", 0)
                assert pub == oracle[0][0]
            finally:
                await service.aclose()

        run(scenario)

    def test_bad_deadline_type_rejected(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            try:
                with pytest.raises(ServiceError):
                    await service.keygen("t", 1, deadline_s="soon")
                with pytest.raises(ServiceError):
                    await service.keygen("t", 1, deadline_s=-1.0)
            finally:
                await service.aclose()

        run(scenario)

    def test_deadline_enforced_over_the_wire(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                await send_frame(writer, {
                    "id": 1, "op": "keygen", "tenant": "t",
                    "seed": 1, "deadline": 1e-9})
                response = await read_frame(reader)
                assert response["ok"] is False
                assert response["code"] == "deadline"
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)


class TestIdempotency:
    def test_lost_response_retry_does_not_double_execute(
            self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            oracle = expected_handshakes(toy_params, 1, seed=0)
            try:
                reader, writer = await raw_connect(server)
                request = {"id": 1, "op": "keygen", "tenant": "t",
                           "seed": 0, "idem": "retry-key-1"}
                await send_frame(writer, request)
                first = await read_frame(reader)
                # The client never saw the response: same idempotency
                # key, new wire id.
                await send_frame(writer, dict(request, id=2))
                second = await read_frame(reader)
                assert first["ok"] and second["ok"]
                assert first["result"] == second["result"]
                assert first["result"] == oracle[0][0]
                assert second.get("cached") is True
                assert service.stats()["requests_total"] == 1
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_concurrent_duplicates_share_one_execution(
            self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                request = {"op": "keygen", "tenant": "t", "seed": 3,
                           "idem": "dup"}
                await send_frame(writer, dict(request, id=1))
                await send_frame(writer, dict(request, id=2))
                responses = [await read_frame(reader)
                             for _ in range(2)]
                assert all(r["ok"] for r in responses)
                assert (responses[0]["result"]
                        == responses[1]["result"])
                assert service.stats()["requests_total"] == 1
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_client_retries_through_a_dropped_connection(
            self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            oracle = expected_handshakes(toy_params, 1, seed=0)
            client = ServiceClient(timeout_s=5.0, retries=2,
                                   backoff_s=0.01)
            try:
                await client.connect("127.0.0.1", port)
                assert await client.ping()
                # Sever the transport under the client's feet; the
                # next request must reconnect and retry.
                client._writer.close()
                pub = await client.keygen("t", 0)
                assert pub == oracle[0][0]
                assert client.reconnects_total >= 1
            finally:
                await client.aclose()
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=3,
                                 reset_timeout_s=10.0,
                                 clock=lambda: clock[0])
        breaker.configure("t")
        for _ in range(3):
            breaker.check("t")
            breaker.record("t", False)
        assert breaker.state("t") == "open"
        with pytest.raises(CircuitOpenError) as err:
            breaker.check("t")
        assert err.value.code == "circuit_open"
        assert breaker.rejected("t") == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.configure("t")
        breaker.record("t", False)
        breaker.record("t", True)
        breaker.record("t", False)
        assert breaker.state("t") == "closed"
        assert breaker.consecutive_failures("t") == 1

    def test_half_open_admits_exactly_one_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.configure("t")
        breaker.check("t")
        breaker.record("t", False)
        assert breaker.state("t") == "open"
        clock[0] = 5.0
        breaker.check("t")  # the probe
        assert breaker.state("t") == "half_open"
        with pytest.raises(CircuitOpenError):
            breaker.check("t")  # concurrent request during the probe
        breaker.record("t", True)
        assert breaker.state("t") == "closed"

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.configure("t")
        breaker.check("t")
        breaker.record("t", False)
        clock[0] = 5.0
        breaker.check("t")
        breaker.record("t", False)
        assert breaker.state("t") == "open"
        clock[0] = 9.0
        with pytest.raises(CircuitOpenError):
            breaker.check("t")  # new cool-down started at t=5

    def test_neutral_outcome_releases_probe_without_deciding(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.configure("t")
        breaker.check("t")
        breaker.record("t", False)
        clock[0] = 5.0
        breaker.check("t")
        breaker.record("t", None)  # e.g. an admission rejection
        assert breaker.state("t") == "half_open"
        breaker.check("t")  # the next request becomes the probe
        breaker.record("t", True)
        assert breaker.state("t") == "closed"

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(reset_timeout_s=0)

    def test_breaker_trips_end_to_end(self, toy_params):
        async def scenario():
            clock = [0.0]
            service = make_service(
                toy_params, breaker_threshold=2,
                breaker_reset_s=30.0,
                breaker_clock=lambda: clock[0])
            oracle = expected_handshakes(toy_params, 1, seed=0)
            try:
                # Two deadline blowups are backend failures: trip.
                for _ in range(2):
                    with pytest.raises(DeadlineError):
                        await service.keygen("t", 1, deadline_s=1e-9)
                assert service.breaker.state("t") == "open"
                with pytest.raises(CircuitOpenError):
                    await service.keygen("t", 1)
                assert (service.stats()["tenants"]["t"]
                        ["circuit_rejections"] == 1)
                # Cool-down elapses; the successful probe closes it.
                clock[0] = 30.0
                pub = await service.keygen("t", 0)
                assert pub == oracle[0][0]
                assert service.breaker.state("t") == "closed"
            finally:
                await service.aclose()

        run(scenario)


class TestHealthAndDrain:
    def test_health_and_ready_over_the_wire(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            client = ServiceClient()
            try:
                await client.connect("127.0.0.1", port)
                health = await client.health()
                assert health["status"] == "ok"
                assert health["ready"] is True
                assert health["tenants"]["t"]["circuit"] == "closed"
                assert await client.ready() is True
            finally:
                await client.aclose()
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_drain_rejects_new_work_and_goes_idle(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            try:
                await service.keygen("t", 0)
                service.begin_drain()
                assert service.ready() is False
                assert service.health()["status"] == "draining"
                with pytest.raises(ServiceError, match="draining"):
                    await service.keygen("t", 1)
                assert await service.wait_idle(grace_s=5.0) is True
            finally:
                await service.aclose()

        run(scenario)


class TestInternalErrorContainment:
    """Satellite fix 1: a non-ReproError out of a dispatched handler
    must answer in-band with the stable ``service`` code, not kill the
    connection task and strand the waiter."""

    def test_hostile_payload_answers_in_band(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                # An unhashable tenant raises TypeError deep inside
                # dispatch — not a ReproError.
                await send_frame(writer, {
                    "id": 1, "op": "keygen",
                    "tenant": {"nested": "dict"}, "seed": 1})
                response = await read_frame(reader)
                assert response["id"] == 1
                assert response["ok"] is False
                assert response["code"] == "service"
                assert "internal error" in response["error"]
                # The connection keeps serving.
                await send_frame(writer, {"id": 2, "op": "ping"})
                pong = await read_frame(reader)
                assert pong["ok"] is True
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_internal_errors_are_counted(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                with telemetry.capture() as cap:
                    reader, writer = await raw_connect(server)
                    await send_frame(writer, {
                        "id": 1, "op": "keygen",
                        "tenant": {"bad": 1}, "seed": 1})
                    await read_frame(reader)
                    assert cap.registry.counter(
                        "service_internal_errors_total").total() == 1
                    writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)


class TestOversizedLines:
    """Satellite fix 2: an oversized request line is answered with a
    malformed-request error and drained; the connection keeps
    serving."""

    @staticmethod
    def _padded_request(total_len: int) -> bytes:
        base = {"id": 1, "op": "ping", "pad": ""}
        overhead = len(frame_encode(base))
        base["pad"] = "x" * (total_len - overhead)
        line = frame_encode(base)
        assert len(line) == total_len
        return line

    def test_exactly_max_line_bytes_is_served(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                writer.write(self._padded_request(MAX_LINE_BYTES))
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is True
                assert response["id"] == 1
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_one_byte_over_is_rejected_not_fatal(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                writer.write(self._padded_request(MAX_LINE_BYTES + 1))
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is False
                assert response["code"] == "service"
                assert "malformed request" in response["error"]
                # The connection survives and serves the next frame.
                await send_frame(writer, {"id": 2, "op": "ping"})
                pong = await read_frame(reader)
                assert pong["id"] == 2 and pong["ok"] is True
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_line_beyond_buffer_limit_is_drained(self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                writer.write(b"j" * (WIRE_BUFFER_LIMIT + 100) + b"\n")
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is False
                assert "malformed request" in response["error"]
                await send_frame(writer, {"id": 2, "op": "ping"})
                pong = await read_frame(reader)
                assert pong["ok"] is True
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)


class TestFrameChecksums:
    def test_corrupted_frame_rejected_with_transport_code(
            self, toy_params):
        async def scenario():
            service = make_service(toy_params)
            server = await start_server(service)
            try:
                reader, writer = await raw_connect(server)
                line = bytearray(frame_encode(
                    {"id": 5, "op": "ping"}))
                # Flip one bit inside the op string: still valid
                # JSON, but the checksum no longer matches.
                pos = line.index(b"ping")
                line[pos] ^= 0x01
                writer.write(bytes(line))
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is False
                assert response["code"] == "transport"
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        run(scenario)

    def test_checksum_covers_canonical_payload(self):
        frame = frame_encode({"id": 1, "op": "ping"})
        decoded = json.loads(frame)
        body = {k: v for k, v in decoded.items() if k != "ck"}
        want = zlib.crc32(
            json.dumps(body, sort_keys=True).encode("utf-8"))
        assert decoded["ck"] == want
