"""Unit tests: tenant policy, the engine ladder, the wire layer, CLI.

The concurrency suites (``test_concurrent_sessions``,
``test_admission``, ``test_fault_under_load``) exercise the service
under load; this module pins the small contracts — config validation,
ladder mechanics, seed normalisation, JSON-lines framing, error-code
round-tripping over TCP, and the ``repro serve`` / ``repro load``
CLI surface.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cli import build_parser, main
from repro.csidh.parameters import csidh_toy
from repro.errors import AdmissionError, ServiceError
from repro.service import (
    ENGINE_LADDER,
    KeyExchangeService,
    ServiceClient,
    Tenant,
    TenantConfig,
    default_tenant_configs,
    start_server,
)
from repro.service.server import _seed_bytes
from repro.service.wire import _error_class


@pytest.fixture(scope="module")
def toy():
    return csidh_toy()


class TestTenantConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ServiceError):
            TenantConfig("t", engine="quantum")

    def test_rejects_zero_lanes(self):
        with pytest.raises(ServiceError):
            TenantConfig("t", lanes=0)

    def test_rejects_negative_queue(self):
        with pytest.raises(ServiceError):
            TenantConfig("t", max_queue=-1)

    def test_capacity_is_lanes_plus_queue(self):
        assert TenantConfig("t", lanes=3, max_queue=5).capacity == 8

    def test_default_fleet_is_uniform_and_named(self):
        configs = default_tenant_configs(3, engine="replay", lanes=4)
        assert [c.name for c in configs] \
            == ["tenant-0", "tenant-1", "tenant-2"]
        assert all(c.engine == "replay" and c.lanes == 4
                   for c in configs)

    def test_default_fleet_needs_at_least_one(self):
        with pytest.raises(ServiceError):
            default_tenant_configs(0)


class TestEngineLadder:
    def test_fault_demotion_walks_to_the_interpreter(self, toy):
        tenant = Tenant(TenantConfig("t", engine="jit"), toy)
        assert tenant.engine == "jit"
        assert tenant.demote("fault")
        assert tenant.engine == "replay"
        assert tenant.demote("fault")
        assert tenant.engine == "interpreter"
        assert not tenant.demote("fault")  # floor reached
        assert tenant.demotions == 2

    def test_overload_demotion_stops_at_replay(self, toy):
        tenant = Tenant(TenantConfig("t", engine="jit"), toy)
        assert tenant.demote("overload")
        assert tenant.engine == "replay"
        assert not tenant.demote("overload")
        assert tenant.engine == "replay"

    def test_promotion_needs_a_full_clean_streak(self, toy):
        tenant = Tenant(TenantConfig("t", engine="jit",
                                     promote_after=3), toy)
        tenant.demote("fault")
        tenant.note_result(True)
        tenant.note_result(True)
        tenant.note_result(False)  # a dirty op resets the streak
        tenant.note_result(True)
        tenant.note_result(True)
        assert tenant.engine == "replay"
        tenant.note_result(True)
        assert tenant.engine == "jit"
        assert tenant.promotions == 1

    def test_never_promotes_past_preference(self, toy):
        tenant = Tenant(TenantConfig("t", engine="replay",
                                     promote_after=1), toy)
        for _ in range(5):
            tenant.note_result(True)
        assert tenant.engine == "replay"
        assert tenant.promotions == 0

    def test_ladder_order_is_fastest_first(self):
        assert ENGINE_LADDER == ("aot", "jit", "replay", "interpreter")

    def test_scope_prefix_separates_services(self, toy):
        config = TenantConfig("t", lanes=2)
        first = Tenant(config, toy, scope_prefix="svcA/")
        second = Tenant(config, toy, scope_prefix="svcB/")
        first_scopes = {lane.scope for lane in first.lanes}
        second_scopes = {lane.scope for lane in second.lanes}
        assert first_scopes.isdisjoint(second_scopes)


class TestSeedNormalisation:
    def test_bytes_pass_through(self):
        assert _seed_bytes(b"abc") == b"abc"

    def test_int_and_str_are_deterministic(self):
        assert _seed_bytes(7) == _seed_bytes(7)
        assert _seed_bytes(-7) != _seed_bytes(7)
        assert _seed_bytes("alice") == b"alice"

    def test_unsupported_type_is_service_error(self):
        with pytest.raises(ServiceError):
            _seed_bytes(3.14)


class TestServiceSurface:
    def test_duplicate_tenant_names_rejected(self, toy):
        configs = [TenantConfig("same"), TenantConfig("same")]
        with pytest.raises(ServiceError):
            KeyExchangeService(toy, configs)

    def test_unknown_tenant_and_bad_ops_are_service_errors(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay")
            async with KeyExchangeService(toy, [config]) as service:
                with pytest.raises(ServiceError):
                    await service.keygen("ghost", 1)
                with pytest.raises(ServiceError):
                    await service.field_op("t", "div", [1, 2])
                with pytest.raises(ServiceError):
                    await service.field_op("t", "mul", [1, 2, 3])
                with pytest.raises(ServiceError):
                    await service.exchange("t", 1, "not-a-coeff")

        asyncio.run(main())

    def test_closed_service_refuses_requests(self, toy):
        async def main():
            service = KeyExchangeService(
                toy, [TenantConfig("t", engine="replay")])
            await service.aclose()
            with pytest.raises(ServiceError):
                await service.keygen("t", 1)
            with pytest.raises(ServiceError):
                await service.field_op("t", "mul", [1, 2])

        asyncio.run(main())

    def test_verify_accepts_good_and_rejects_bad_keys(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay")
            async with KeyExchangeService(toy, [config]) as service:
                public = await service.keygen("t", 42)
                assert await service.verify("t", public) is True
                # 2 is not a supersingular coefficient for the toy p
                assert await service.verify("t", 2) is False

        asyncio.run(main())


class TestWireLayer:
    def test_error_class_resolves_stable_codes(self):
        assert _error_class("admission") is AdmissionError
        assert _error_class("service") is ServiceError
        assert _error_class("no-such-code") is ServiceError

    def test_full_roundtrip_over_tcp(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay", lanes=2)
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient() as client:
                await client.connect("127.0.0.1", port)
                assert await client.ping() == "pong"
                public = await client.keygen("t", 11)
                secret_ab = await client.exchange("t", 12, public)
                public_b = await client.keygen("t", 12)
                secret_ba = await client.exchange("t", 11, public_b)
                assert secret_ab == secret_ba
                assert await client.verify("t", public) is True
                assert await client.field_op("t", "mul", [7, 9]) == 63
                stats = await client.stats()
                assert stats["tenants"]["t"]["engine"] == "replay"
                # errors come back typed with their stable code
                with pytest.raises(ServiceError) as excinfo:
                    await client.keygen("ghost", 1)
                assert excinfo.value.code == "service"
                assert not isinstance(excinfo.value, AdmissionError)
            server.close()
            await server.wait_closed()
            await service.aclose()

        asyncio.run(main())

    def test_malformed_lines_get_in_band_errors(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay")
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"this is not json\n")
            writer.write(b'[1, 2, 3]\n')
            writer.write(json.dumps(
                {"id": 9, "op": "teleport"}).encode() + b"\n")
            await writer.drain()
            responses = [json.loads(await reader.readline())
                         for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.aclose()
            return responses

        responses = asyncio.run(main())
        assert all(not r["ok"] for r in responses)
        assert responses[0]["code"] == "service"
        assert responses[1]["code"] == "service"
        by_id = [r for r in responses if r["id"] == 9]
        assert by_id and "teleport" in by_id[0]["error"]


class TestCli:
    def test_load_subcommand_runs_and_appends_bench(self, tmp_path,
                                                    capsys):
        bench = tmp_path / "BENCH_service.json"
        exit_code = main([
            "load", "--params", "toy", "--exchanges", "2",
            "--concurrency", "2", "--tenants", "1", "--engine",
            "replay", "--bench-out", str(bench),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "0 divergences" in captured.out
        document = json.loads(bench.read_text())
        assert document["benchmark"] == "protocol"
        record = document["runs"][-1]
        assert record["mode"] == "service_load"
        assert record["exchanges"] == 2
        assert record["divergences"] == 0
        assert record["requests"] == 8
        assert record["latency_p99_ms"] >= record["latency_p50_ms"]

    def test_load_rejects_bad_knobs(self):
        assert main(["load", "--params", "toy",
                     "--exchanges", "0"]) == 2
        assert main(["load", "--params", "toy",
                     "--concurrency", "0"]) == 2

    def test_service_commands_refuse_full_size_params(self):
        assert main(["load", "--params", "csidh-512",
                     "--exchanges", "1"]) == 2
        assert main(["serve", "--params", "csidh-512"]) == 2

    def test_parser_wires_serve_and_load(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--params", "toy", "--port", "7007"])
        assert args.port == 7007
        assert args.engine == "jit"
        args = parser.parse_args(
            ["load", "--params", "toy", "--hardened"])
        assert args.hardened is True
        assert args.exchanges == 100
        assert args.concurrency == 16
