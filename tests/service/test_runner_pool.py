"""Regression tests: the runner pool under concurrent hammering.

The pool (:mod:`repro.kernels.registry`) promises: one live
:class:`KernelRunner` per key no matter how many threads race the
build; ``scope`` partitions machines between concurrent executors;
evictions and scoped clears never corrupt the bookkeeping; pool
telemetry counts stay exact.  These tests drive all of it from many
threads (and asyncio tasks hopping threads via ``to_thread``) — before
the pool lock landed, every one of them was a coin-flip.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import telemetry
from repro.csidh.parameters import csidh_toy
from repro.kernels.registry import (
    cached_runner,
    clear_runner_pool,
    evict_runner,
)

KERNEL = "fp_mul.reduced.ise"
THREADS = 12
ROUNDS = 40


def _toy_p() -> int:
    return csidh_toy().p


class TestSingleInstancePerKey:
    def test_racing_lookups_converge_on_one_runner(self):
        """THREADS x ROUNDS concurrent lookups of one key yield exactly
        one object (the build race has one winner, losers adopt it)."""
        p = _toy_p()
        scope = "pooltest/single"
        clear_runner_pool(scope)
        barrier = threading.Barrier(THREADS)
        seen: list[int] = []

        def hammer() -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                runner = cached_runner(p, KERNEL, engine="replay",
                                       scope=scope)
                seen.append(id(runner))

        with ThreadPoolExecutor(THREADS) as pool:
            futures = [pool.submit(hammer) for _ in range(THREADS)]
            for future in futures:
                future.result()
        assert len(seen) == THREADS * ROUNDS
        assert len(set(seen)) == 1
        clear_runner_pool(scope)

    def test_asyncio_tasks_share_the_same_pool(self):
        """Tasks dispatched through ``asyncio.to_thread`` observe the
        same single pooled object as raw threads."""
        p = _toy_p()
        scope = "pooltest/tasks"
        clear_runner_pool(scope)

        async def main() -> set[int]:
            jobs = [
                asyncio.to_thread(
                    cached_runner, p, KERNEL, engine="replay",
                    scope=scope)
                for _ in range(THREADS * 2)
            ]
            runners = await asyncio.gather(*jobs)
            return {id(r) for r in runners}

        assert len(asyncio.run(main())) == 1
        clear_runner_pool(scope)


class TestScopePartitioning:
    def test_distinct_scopes_get_distinct_machines(self):
        p = _toy_p()
        scopes = [f"pooltest/lane{i}" for i in range(6)]
        for scope in scopes:
            clear_runner_pool(scope)
        runners = {
            scope: cached_runner(p, KERNEL, engine="replay",
                                 scope=scope)
            for scope in scopes
        }
        assert len({id(r) for r in runners.values()}) == len(scopes)
        machines = {id(r.machine) for r in runners.values()}
        assert len(machines) == len(scopes)
        for scope in scopes:
            clear_runner_pool(scope)

    def test_scoped_clear_leaves_other_scopes_pooled(self):
        p = _toy_p()
        clear_runner_pool("pooltest/a")
        clear_runner_pool("pooltest/b")
        runner_a = cached_runner(p, KERNEL, engine="replay",
                                 scope="pooltest/a")
        runner_b = cached_runner(p, KERNEL, engine="replay",
                                 scope="pooltest/b")
        clear_runner_pool("pooltest/a")
        # b survived the scoped clear; a rebuilds fresh
        assert cached_runner(p, KERNEL, engine="replay",
                             scope="pooltest/b") is runner_b
        rebuilt = cached_runner(p, KERNEL, engine="replay",
                                scope="pooltest/a")
        assert rebuilt is not runner_a
        clear_runner_pool("pooltest/a")
        clear_runner_pool("pooltest/b")


class TestEvictionStorm:
    def test_concurrent_evict_and_lookup_stay_consistent(self):
        """Interleaved evictions and lookups never crash and always
        end with a usable runner (correct product on toy operands)."""
        p = _toy_p()
        scope = "pooltest/storm"
        clear_runner_pool(scope)
        barrier = threading.Barrier(THREADS)

        def churn(index: int) -> None:
            barrier.wait()
            for round_no in range(ROUNDS):
                cached_runner(p, KERNEL, engine="replay", scope=scope)
                if (index + round_no) % 3 == 0:
                    evict_runner(p, KERNEL, engine="replay",
                                 scope=scope)

        with ThreadPoolExecutor(THREADS) as pool:
            futures = [pool.submit(churn, i) for i in range(THREADS)]
            for future in futures:
                future.result()

        survivor = cached_runner(p, KERNEL, engine="replay",
                                 scope=scope)
        first = survivor.run(3, 5, check=False)
        again = survivor.run(3, 5, check=False)
        assert first == again
        clear_runner_pool(scope)

    def test_evict_returns_whether_pooled(self):
        p = _toy_p()
        scope = "pooltest/evict"
        clear_runner_pool(scope)
        assert not evict_runner(p, KERNEL, engine="replay",
                                scope=scope)
        cached_runner(p, KERNEL, engine="replay", scope=scope)
        assert evict_runner(p, KERNEL, engine="replay", scope=scope)
        assert not evict_runner(p, KERNEL, engine="replay",
                                scope=scope)


class TestPoolTelemetryExactness:
    def test_hits_and_misses_sum_exactly_under_threads(self):
        """Every lookup is counted exactly once even when all counting
        races: hits + misses == lookups, misses == builds (1)."""
        p = _toy_p()
        scope = "pooltest/counts"
        clear_runner_pool(scope)
        lookups = THREADS * ROUNDS
        barrier = threading.Barrier(THREADS)

        def hammer() -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                cached_runner(p, KERNEL, engine="replay", scope=scope)

        with telemetry.capture(fresh=True) as cap:
            with ThreadPoolExecutor(THREADS) as pool:
                futures = [pool.submit(hammer)
                           for _ in range(THREADS)]
                for future in futures:
                    future.result()
        hits = cap.registry.counter("runner_pool_hits_total").total()
        misses = cap.registry.counter(
            "runner_pool_misses_total").total()
        assert misses == 1
        assert hits + misses == lookups
        clear_runner_pool(scope)
