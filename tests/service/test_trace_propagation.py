"""End-to-end trace propagation: wire -> service -> batch -> kernels.

The PR 7 acceptance path: a request's trace_id travels over the
JSON-lines protocol, out-of-order responses echo the right id, the
coalescer's batches are reachable from every member trace, demoted
retries stay under one trace, and a traced load's span forest passes
the cycle-conservation gate and lands a summary in the BENCH record.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import telemetry
from repro.csidh.parameters import csidh_toy
from repro.errors import FaultDetectedError, ServiceError
from repro.service import (
    KeyExchangeService,
    ServiceClient,
    TenantConfig,
    default_tenant_configs,
    run_load,
    run_load_remote,
    start_server,
)
from repro.telemetry import tracing
from repro.telemetry.dashboard import poll_dashboard, render_dashboard


@pytest.fixture(scope="module")
def toy():
    return csidh_toy()


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _run(coro):
    return asyncio.run(coro)


class TestWireTracePropagation:
    def test_out_of_order_responses_carry_their_trace(self, toy):
        """A slow exchange and fast field ops interleave on one
        connection; each response must echo the trace id its own
        request carried, not the one that happened to finish first."""
        async def main():
            telemetry.enable()
            config = TenantConfig("t", engine="replay", lanes=2)
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient() as client:
                await client.connect("127.0.0.1", port)
                public = await client.keygen("t", 11)
                slow = asyncio.ensure_future(client.request_traced(
                    "exchange", tenant="t", seed=12, peer=public,
                    trace="slow000000000001"))
                fasts = [
                    asyncio.ensure_future(client.request_traced(
                        "field_op", tenant="t", field_op="mul",
                        operands=[3, n], trace=f"fast{n:012d}"))
                    for n in range(4)
                ]
                fast_results = await asyncio.gather(*fasts)
                _, slow_trace = await slow
                document = await client.trace_export()
            server.close()
            await server.wait_closed()
            await service.aclose()
            return fast_results, slow_trace, document

        fast_results, slow_trace, document = _run(main())
        assert slow_trace == "slow000000000001"
        for n, (value, trace_id) in enumerate(fast_results):
            assert value == (3 * n) % toy.p
            assert trace_id == f"fast{n:012d}"
        exported = {t["trace_id"] for t in document["traces"]}
        assert "slow000000000001" in exported
        assert {f"fast{n:012d}" for n in range(4)} <= exported

    def test_server_generates_trace_when_client_omits(self, toy):
        async def main():
            telemetry.enable()
            config = TenantConfig("t", engine="replay")
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient() as client:
                await client.connect("127.0.0.1", port)
                # The convenience verbs auto-generate ids client-side;
                # go below them to send a bare request.
                response = await client._request_response(
                    "keygen", {"tenant": "t", "seed": 5})
                ping = await client._request_response("ping", {})
            server.close()
            await server.wait_closed()
            await service.aclose()
            return response, ping

        response, ping = _run(main())
        assert len(response["trace"]) == 16
        assert "trace" not in ping  # untraced op stays untraced

    def test_client_verbs_generate_and_echo_ids(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay")
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient() as client:
                await client.connect("127.0.0.1", port)
                value, trace_id = await client.request_traced(
                    "field_op", tenant="t", field_op="add",
                    operands=[1, 2])
            server.close()
            await server.wait_closed()
            await service.aclose()
            return value, trace_id

        value, trace_id = _run(main())
        assert value == 3
        assert len(trace_id) == 16

    def test_error_responses_echo_the_trace(self, toy):
        async def main():
            config = TenantConfig("t", engine="replay")
            service = KeyExchangeService(toy, [config])
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            import json
            writer.write(json.dumps(
                {"id": 1, "op": "keygen", "tenant": "ghost",
                 "seed": 1, "trace": "deadbeefdeadbeef"}
            ).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.aclose()
            return response

        response = _run(main())
        assert response["ok"] is False
        assert response["trace"] == "deadbeefdeadbeef"


class TestBatchTracePropagation:
    def test_coalesced_batch_reachable_from_every_member(self, toy):
        async def main():
            with telemetry.capture() as cap:
                configs = default_tenant_configs(1, engine="jit")
                async with KeyExchangeService(toy, configs) as svc:
                    values = await asyncio.gather(*(
                        svc.field_op("tenant-0", "mul", [5, n])
                        for n in range(8)))
                    await svc.drain()
                return cap, values

        cap, values = _run(main())
        assert values == [(5 * n) % toy.p for n in range(8)]
        tracer = cap.tracer
        assert len(tracer.traces) == 8
        assert tracer.batches  # at least one flush happened
        for ctx in tracer.traces.values():
            assert ctx.status == "ok"
            assert ctx.batch_ids, "member trace lost its batch link"
            for batch_id in ctx.batch_ids:
                batch = tracer.batches[batch_id]
                assert ctx.trace_id in batch.member_ids
                link = ctx.node.find("coalesced", batch=batch_id)
                assert link.count == 1
            assert ctx.node.find("coalesce.wait").count >= 1
        # Batch cycles booked once on the batch, zero per member.
        batch_cycles = sum(b.node.total_cycles
                           for b in tracer.batches.values())
        member_cycles = sum(t.node.total_cycles
                            for t in tracer.traces.values())
        assert batch_cycles > 0
        assert member_cycles == 0
        assert cap.root.total_cycles == batch_cycles


class TestLadderTracePropagation:
    def test_demoted_retry_stays_under_one_trace(self, toy):
        """A jit-tier fault mid-request demotes to replay and retries:
        both attempts must appear as sibling execute spans under the
        *same* request node."""
        async def main():
            with telemetry.capture() as cap:
                config = TenantConfig("t", engine="jit")
                async with KeyExchangeService(toy, [config]) as svc:
                    attempts = []

                    def flaky(engine, lane):
                        attempts.append(engine)
                        if len(attempts) == 1:
                            raise FaultDetectedError("injected")
                        return 42

                    result = await svc._run_op(
                        "t", "exchange", flaky,
                        trace_id="feedface00000001")
                return cap, attempts, result

        cap, attempts, result = _run(main())
        assert result == 42
        assert attempts == ["jit", "replay"]
        ctx = cap.tracer.traces["feedface00000001"]
        assert ctx.status == "ok"
        engines = sorted(
            dict(n.labels)["engine"]
            for n in ctx.node.children.values()
            if n.name == "execute")
        assert engines == ["jit", "replay"]
        # One request, one node: the retry did not fork a new trace.
        assert ctx.node.count == 1
        assert len(cap.tracer.traces) == 1

    def test_failed_request_marks_trace_error(self, toy):
        async def main():
            with telemetry.capture() as cap:
                config = TenantConfig("t", engine="replay")
                async with KeyExchangeService(toy, [config]) as svc:
                    def boom(engine, lane):
                        raise ServiceError("wedged mid-request")

                    with pytest.raises(ServiceError):
                        await svc._run_op("t", "exchange", boom)
                return cap

        cap = _run(main())
        (ctx,) = cap.tracer.traces.values()
        assert ctx.status == "error"
        assert ctx.error_code == "service"


class TestTracedLoad:
    def test_traced_load_conserves_cycles_and_summarises(self, toy):
        report = _run(run_load(
            toy, exchanges=2, concurrency=2, tenants=1,
            engine="jit", trace=True))
        assert report.divergences == 0
        # run_load(trace=True) itself asserts conservation; pin the
        # artifacts it derived from the surviving forest.
        assert report.trace_root is not None
        summary = report.trace_summary
        assert summary["requests"] == 8  # 2 sessions x 4 requests
        assert summary["total_cycles"] \
            == report.trace_root.total_cycles > 0
        assert summary["top_kernels"]
        assert summary["top_kernels"][0]["kernel"].startswith("fp_mul")
        record = report.to_record()
        assert record["trace"] == summary
        collapsed = tracing.to_collapsed(report.trace_root)
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in collapsed.strip().splitlines())
        assert total == summary["total_cycles"]

    def test_untraced_load_has_no_trace_record(self, toy):
        report = _run(run_load(
            toy, exchanges=1, concurrency=1, tenants=1,
            engine="replay"))
        assert report.trace_summary is None
        assert "trace" not in report.to_record()

    def test_trace_with_foreign_service_refused(self, toy):
        async def main():
            configs = default_tenant_configs(1, engine="replay")
            async with KeyExchangeService(toy, configs) as svc:
                with pytest.raises(ServiceError):
                    await run_load(toy, exchanges=1, service=svc,
                                   trace=True)

        _run(main())


class TestRemoteLoad:
    def test_remote_load_fetches_trace_over_the_wire(self, toy):
        async def main():
            telemetry.enable()
            configs = default_tenant_configs(2, engine="jit")
            service = KeyExchangeService(toy, configs)
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            try:
                report = await run_load_remote(
                    toy, "127.0.0.1", port, exchanges=2,
                    concurrency=2)
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return report

        report = _run(main())
        assert report.divergences == 0
        assert report.engine == "jit"
        assert report.requests == 8
        assert report.trace_root is not None
        assert report.trace_summary["requests"] == 8
        assert report.trace_summary["total_cycles"] > 0
        # The rebuilt forest feeds both exporters.
        chrome = tracing.to_chrome_trace(report.trace_root)
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        assert tracing.to_collapsed(report.trace_root)

    def test_remote_load_rejects_modulus_mismatch(self, toy):
        from repro.csidh.parameters import csidh_mini

        async def main():
            configs = default_tenant_configs(1, engine="replay")
            service = KeyExchangeService(toy, configs)
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ServiceError):
                    await run_load_remote(
                        csidh_mini(), "127.0.0.1", port, exchanges=1)
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()

        _run(main())


class TestDashboardOverWire:
    def test_poll_dashboard_draws_frames(self, toy, capsys):
        import io

        async def main():
            configs = default_tenant_configs(1, engine="replay")
            service = KeyExchangeService(toy, configs)
            server = await start_server(service)
            port = server.sockets[0].getsockname()[1]
            out = io.StringIO()
            try:
                await service.field_op("tenant-0", "add", [1, 2])
                frames = await poll_dashboard(
                    "127.0.0.1", port, interval_s=0.01,
                    iterations=2, plain=True, out=out)
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return frames, out.getvalue()

        frames, text = _run(main())
        assert frames == 2
        assert text.count("repro service") == 2
        assert "tenant-0" in text
        assert "latency ms p50" in text

    def test_render_dashboard_is_pure_and_complete(self):
        stats = {
            "modulus_bits": 9, "uptime_s": 3.5, "total_inflight": 1,
            "requests_total": 10, "errors_total": 0,
            "rejections_total": 2,
            "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 3.0,
                           "window": 10},
            "tenants": {"t": {
                "engine": "replay", "preferred_engine": "jit",
                "hardened": True, "lanes": 2, "capacity": 18,
                "inflight": 1, "requests": 10, "errors": 0,
                "rejections": 2, "demotions": 1, "promotions": 0,
                "fault_detections": 3, "fault_recoveries": 3,
            }},
            "coalesced": {"t": {"batches": 2, "items": 10}},
        }
        previous = {"requests_total": 0,
                    "tenants": {"t": {"requests": 0}}}
        frame = render_dashboard(stats, previous, 2.0)
        assert "replay*+h" in frame  # demoted + hardened marker
        assert "5.0" in frame  # 10 requests / 2 s
        assert "coalesced 10 field op(s) into 2 batch(es)" in frame
        # Identical inputs, identical frame: no hidden state.
        assert frame == render_dashboard(stats, previous, 2.0)
        # plain=False screens clear
        assert render_dashboard(stats, clear=True).startswith("\x1b[2J")
