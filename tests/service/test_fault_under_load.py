"""Armed faults with sessions in flight: zero escapes, one-tenant blast.

The hardened service promises (``docs/SERVICE.md``, building on
``docs/ROBUSTNESS.md``): a poisoned replay trace or compiled jit
function under concurrent load is *detected* by the checked contexts,
*recovered* within the bounded retry budget, demotes **only** the
faulted tenant down the engine ladder, and never lets a wrong result
reach any client — ``divergences == 0`` against the sequential
pure-Python oracle is the definition of "no escape".
"""

from __future__ import annotations

import asyncio

import pytest

from repro.csidh.parameters import csidh_toy
from repro.fault import arm_fault
from repro.fault.plan import FaultSite
from repro.service import (
    KeyExchangeService,
    TenantConfig,
    expected_handshakes,
    run_load,
)

EXCHANGES = 4


@pytest.fixture(scope="module")
def toy():
    return csidh_toy()


@pytest.fixture(scope="module")
def oracle(toy):
    return expected_handshakes(toy, EXCHANGES, seed=0)


def _hardened_pair(engine: str) -> list[TenantConfig]:
    return [
        TenantConfig("victim", engine=engine, hardened=True, lanes=1,
                     check_interval=1, max_queue=32),
        TenantConfig("bystander", engine=engine, hardened=True,
                     lanes=1, check_interval=1, max_queue=32),
    ]


def _poison_site(site: str) -> FaultSite:
    # steps chosen to actually perturb the toy fp_mul kernel on the
    # targeted tier (dead steps exist per lowering — see
    # tests/test_fault_campaign.py)
    step = {"replay_closure_corrupt": 5, "replay_step_skip": 2}[site]
    return FaultSite(index=0, site=site, operation="mul", step=step,
                     bit=13, lane=3, delta=1)


async def _load_with_fault(toy, oracle, *, engine: str,
                           site_name: str):
    """Arm a persistent poison on the victim tenant's mul runner, then
    drive concurrent handshakes over both tenants."""
    service = KeyExchangeService(toy, _hardened_pair(engine))
    victim_lane = service.tenants["victim"].lanes[0]
    context = victim_lane.context(engine)
    context.mul(3, 5)  # build the runner (and its trace/jit caches)
    armed = arm_fault(context._mul, _poison_site(site_name))
    try:
        report = await run_load(
            toy, exchanges=EXCHANGES, concurrency=EXCHANGES,
            engine=engine, hardened=True, seed=0,
            service=service, oracle=oracle,
        )
    finally:
        armed.disarm()
    stats = service.stats()
    await service.aclose()
    return report, stats, context


class TestReplayPoisonUnderLoad:
    def test_zero_escapes_and_bounded_recovery(self, toy, oracle):
        report, stats, context = asyncio.run(_load_with_fault(
            toy, oracle, engine="replay",
            site_name="replay_closure_corrupt"))
        # nothing wrong ever left the service
        assert report.divergences == 0
        # the poison fired and was caught ...
        assert report.fault_detections >= 1
        # ... and every detection was recovered within the budget
        assert context.fault_recoveries == context.fault_detections

    def test_only_the_faulted_tenant_degrades(self, toy, oracle):
        report, stats, _ = asyncio.run(_load_with_fault(
            toy, oracle, engine="replay",
            site_name="replay_closure_corrupt"))
        assert report.divergences == 0
        assert stats["tenants"]["victim"]["demotions"] >= 1
        assert stats["tenants"]["victim"]["engine"] == "interpreter"
        assert stats["tenants"]["bystander"]["demotions"] == 0
        assert stats["tenants"]["bystander"]["engine"] == "replay"
        assert stats["tenants"]["bystander"]["fault_detections"] == 0


class TestJitPoisonUnderLoad:
    def test_zero_escapes_on_the_jit_tier(self, toy, oracle):
        report, stats, context = asyncio.run(_load_with_fault(
            toy, oracle, engine="jit", site_name="replay_step_skip"))
        assert report.divergences == 0
        assert report.fault_detections >= 1
        assert context.fault_recoveries == context.fault_detections
        assert stats["tenants"]["victim"]["demotions"] >= 1
        assert stats["tenants"]["bystander"]["demotions"] == 0


class TestOverloadDemotion:
    def test_saturation_demotes_jit_to_replay_never_lower(self, toy):
        """Saturating a jit tenant walks it to replay (the overload
        floor) — not to the interpreter — and service results stay
        correct throughout."""

        async def main():
            config = TenantConfig("t", engine="jit", lanes=1,
                                  max_queue=64)
            async with KeyExchangeService(
                    toy, [config],
                    overload_threshold=0.05) as service:
                results = await asyncio.gather(*(
                    service.field_op("t", "mul", [7, n])
                    for n in range(24)))
                tenant = service.tenants["t"]
                return results, tenant.engine, tenant.demotions

        results, engine, demotions = asyncio.run(main())
        assert results == [(7 * n) % toy.p for n in range(24)]
        assert demotions == 1       # jit -> replay, then floor holds
        assert engine == "replay"   # never demoted to the interpreter

    def test_clean_streak_promotes_back_to_preference(self, toy):
        """After ``promote_after`` consecutive clean operations the
        tenant climbs back toward its preferred engine."""

        async def main():
            config = TenantConfig("t", engine="replay", lanes=1,
                                  max_queue=64, promote_after=5)
            async with KeyExchangeService(toy, [config]) as service:
                tenant = service.tenants["t"]
                assert tenant.demote("fault")  # push to interpreter
                assert tenant.engine == "interpreter"
                for n in range(6):
                    await service.field_op("t", "add", [n, n])
                return tenant.engine, tenant.promotions

        engine, promotions = asyncio.run(main())
        assert engine == "replay"
        assert promotions == 1
