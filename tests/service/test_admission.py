"""Hypothesis properties: admission bounds and coalescing integrity.

Two promises hold under *any* arrival order and batch-size knob:

* the :class:`RequestCoalescer` never drops or duplicates a request —
  every submission resolves exactly once with exactly its own value,
  the executor sees each operand set exactly once, and no batch
  exceeds ``max_batch``;
* the :class:`AdmissionController` never lets a tenant exceed
  ``capacity``, never under-counts a release, and every rejection is
  an :class:`AdmissionError` carrying the stable wire code
  ``"admission"``.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, strategies as st

from repro.csidh.parameters import csidh_toy
from repro.errors import AdmissionError, ReproError, ServiceError
from repro.service import (
    AdmissionController,
    KeyExchangeService,
    RequestCoalescer,
    TenantConfig,
)

OPS = ("mul", "add")


def _apply(op: str, a: int, b: int) -> int:
    return a * b if op == "mul" else a + b


requests_strategy = st.lists(
    st.tuples(st.sampled_from(OPS),
              st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=1, max_size=50,
)


class TestCoalescerNeverDropsOrDuplicates:
    @given(requests=requests_strategy, max_batch=st.integers(1, 8))
    def test_every_request_resolves_exactly_once(self, requests,
                                                 max_batch):
        executed: list[tuple[str, list[tuple]]] = []

        async def execute(op: str, operand_sets):
            executed.append((op, list(operand_sets)))
            return [_apply(op, a, b) for a, b in operand_sets]

        async def main():
            coalescer = RequestCoalescer(
                execute, max_batch=max_batch, max_wait_s=0.0)
            results = await asyncio.gather(*(
                coalescer.submit(op, (a, b))
                for op, a, b in requests))
            await coalescer.drain()
            assert coalescer.pending == 0
            return results

        results = asyncio.run(main())
        # exactly once, with exactly its own value
        assert results == [_apply(op, a, b) for op, a, b in requests]
        # the executor saw each request exactly once ...
        total_executed = sum(len(sets) for _, sets in executed)
        assert total_executed == len(requests)
        # ... in op-homogeneous batches within the size bound
        for op, operand_sets in executed:
            assert 1 <= len(operand_sets) <= max_batch
        for op in OPS:
            submitted = sorted((a, b) for o, a, b in requests
                               if o == op)
            ran = sorted(pair for o, sets in executed if o == op
                         for pair in sets)
            assert ran == submitted

    @given(requests=st.lists(st.integers(0, 100), min_size=2,
                             max_size=30))
    def test_failed_batch_poisons_only_its_own_requests(self,
                                                        requests):
        """An executor exception reaches exactly the futures of the
        failing batch; later submissions still succeed."""

        async def execute(op: str, operand_sets):
            if any(a == 13 for a, in operand_sets):
                raise ServiceError("unlucky batch")
            return [a + 1 for a, in operand_sets]

        async def main():
            coalescer = RequestCoalescer(execute, max_batch=4,
                                         max_wait_s=0.0)
            outcomes = await asyncio.gather(
                *(coalescer.submit("inc", (a,)) for a in requests),
                return_exceptions=True)
            await coalescer.drain()
            # a fresh, clean submission after the failures still works
            assert await coalescer.submit("inc", (1,)) == 2
            return outcomes

        outcomes = asyncio.run(main())
        assert len(outcomes) == len(requests)
        for value, outcome in zip(requests, outcomes):
            if isinstance(outcome, Exception):
                assert isinstance(outcome, ServiceError)
            else:
                assert outcome == value + 1
        # every request containing 13 must have failed
        for value, outcome in zip(requests, outcomes):
            if value == 13:
                assert isinstance(outcome, ServiceError)


class TestAdmissionBounds:
    @given(capacity=st.integers(1, 6),
           actions=st.lists(st.booleans(), max_size=60))
    def test_inflight_never_exceeds_capacity(self, capacity, actions):
        """Random admit(True)/release(False) walks: the inflight count
        tracks held tickets exactly and saturating admits reject."""
        controller = AdmissionController()
        controller.configure("t", capacity)
        held = []
        for is_admit in actions:
            if is_admit:
                if len(held) < capacity:
                    held.append(controller.admit("t"))
                else:
                    with pytest.raises(AdmissionError) as excinfo:
                        controller.admit("t")
                    assert excinfo.value.code == "admission"
            elif held:
                held.pop().release()
            assert controller.inflight("t") == len(held)
            assert controller.inflight("t") <= capacity
        for ticket in held:
            ticket.release()
        assert controller.inflight("t") == 0
        # the drained controller admits again
        controller.admit("t").release()

    @given(cap_a=st.integers(1, 4), cap_b=st.integers(1, 4),
           service_bound=st.integers(1, 6))
    def test_service_wide_bound_caps_the_sum(self, cap_a, cap_b,
                                             service_bound):
        controller = AdmissionController(max_inflight=service_bound)
        controller.configure("a", cap_a)
        controller.configure("b", cap_b)
        held = []
        rejected = 0
        for tenant in ["a", "b"] * 6:
            try:
                held.append(controller.admit(tenant))
            except AdmissionError:
                rejected += 1
        assert controller.total_inflight() == len(held)
        assert len(held) <= min(service_bound, cap_a + cap_b)
        assert len(held) + rejected == 12
        for ticket in held:
            ticket.release()
        assert controller.total_inflight() == 0

    def test_ticket_release_is_idempotent(self):
        controller = AdmissionController()
        controller.configure("t", 2)
        ticket = controller.admit("t")
        ticket.release()
        ticket.release()  # no double-decrement
        assert controller.inflight("t") == 0
        with controller.admit("t"):
            assert controller.inflight("t") == 1
        assert controller.inflight("t") == 0

    def test_release_without_admit_is_an_error(self):
        controller = AdmissionController()
        controller.configure("t", 1)
        with pytest.raises(ServiceError):
            controller._release("t")

    def test_unknown_tenant_is_service_error_not_admission(self):
        controller = AdmissionController()
        with pytest.raises(ServiceError) as excinfo:
            controller.admit("ghost")
        assert not isinstance(excinfo.value, AdmissionError)


class TestRejectionCodeStability:
    def test_admission_error_code_is_stable_and_in_hierarchy(self):
        error = AdmissionError("full")
        assert error.code == "admission"
        assert isinstance(error, ServiceError)
        assert isinstance(error, ReproError)

    def test_saturated_service_rejects_with_admission_code(self):
        """End to end: flooding a capacity-1 tenant rejects the
        overflow with the stable code; the admitted request succeeds
        with the right value."""
        toy = csidh_toy()

        async def main():
            config = TenantConfig("t", engine="replay", lanes=1,
                                  max_queue=0)
            async with KeyExchangeService(toy, [config]) as service:
                # tasks admit in creation order before any completes,
                # so exactly one fits the capacity-1 tenant
                outcomes = await asyncio.gather(
                    *(service.field_op("t", "mul", [3, n])
                      for n in range(5)),
                    return_exceptions=True)
            return outcomes

        outcomes = asyncio.run(main())
        successes = [o for o in outcomes
                     if not isinstance(o, Exception)]
        rejections = [o for o in outcomes
                      if isinstance(o, Exception)]
        assert len(successes) == 1
        assert successes[0] == 0  # 3 * 0
        assert len(rejections) == 4
        for rejection in rejections:
            assert isinstance(rejection, AdmissionError)
            assert rejection.code == "admission"
