"""Concurrency test subsystem for the multi-tenant service layer.

The suite attacks the claims of ``docs/SERVICE.md`` from four sides:

* ``test_runner_pool`` — the registry pool under thread/task hammering
  (one object per key, scope partitioning, exact telemetry);
* ``test_concurrent_sessions`` — N concurrent exchanges bit-identical
  to the sequential reference on every engine, counters summing
  exactly;
* ``test_admission`` — Hypothesis properties: no request dropped or
  duplicated by coalescing, queue bounds respected, stable rejection
  codes;
* ``test_fault_under_load`` — armed trace/jit poisoning with sessions
  in flight: zero escapes, bounded recovery, blast radius of one
  tenant.
"""
