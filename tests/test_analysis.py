"""Tests for the analysis tools: CT verification, profiling, scheduling."""

from __future__ import annotations

import pytest

from repro.analysis.ct import (
    boundary_inputs,
    trace_execution,
    verify_constant_time,
)
from repro.analysis.schedule import schedule, schedule_source
from repro.analysis.static import (
    compare_profiles,
    profile_kernel,
    profile_program,
)
from repro.kernels.runner import KernelRunner
from repro.rv64.assembler import assemble
from repro.rv64.isa import BASE_ISA


class TestConstantTime:
    @pytest.mark.parametrize("name", [
        "fp_add.full.isa", "fp_sub.reduced.ise", "fast_reduce.full.isa",
        "fast_reduce.reduced.ise", "int_mul.full.ise",
        "mont_redc.reduced.isa",
    ])
    def test_kernels_are_constant_time(self, kernels512, name):
        kernel = kernels512[name]
        report = verify_constant_time(
            kernel, samples=3, extra_inputs=boundary_inputs(kernel))
        assert report.constant_time, report.detail

    def test_boundary_inputs_shapes(self, kernels512):
        kernel = kernels512["fp_add.full.isa"]
        for values in boundary_inputs(kernel):
            assert len(values) == len(kernel.input_limbs)

    def test_trace_lengths_match_instruction_count(self, kernels512):
        kernel = kernels512["fp_add.full.isa"]
        runner = KernelRunner(kernel)
        trace = trace_execution(runner, kernel.sampler(
            __import__("random").Random(0)))
        assert len(trace) == runner.run(1, 2).instructions
        assert trace.cycles > 0

    def test_detects_data_dependent_branch(self, toy_params):
        """A deliberately variable-time kernel must be flagged."""
        from repro.kernels.registry import cached_kernels
        kernel = cached_kernels(toy_params.p)["fp_add.full.isa"]
        # splice a data-dependent branch into a copy of the kernel
        leaky_source = kernel.source.replace(
            "ret",
            "beq a0, zero, skip\nnop\nskip:\nret"
        )
        leaky = kernel.__class__(**{
            **kernel.__dict__, "source": leaky_source,
            "reference": lambda a, b: (a + b) % toy_params.p,
        })
        # branch on a0 (a pointer) is constant here; instead branch on
        # a loaded operand to make it input-dependent
        leaky_source = kernel.source.replace(
            "ret",
            "ld t0, 0(a1)\nandi t0, t0, 1\nbeq t0, zero, skip\n"
            "nop\nskip:\nret")
        leaky = kernel.__class__(**{
            **kernel.__dict__, "source": leaky_source})
        report = verify_constant_time(leaky, samples=8, seed=3)
        assert not report.constant_time


class TestStaticProfile:
    def test_mac_counts(self, kernels512):
        profile = profile_kernel(kernels512["int_mul.full.isa"])
        assert profile.mac_instructions == 128  # 64 mul + 64 mulhu
        profile = profile_kernel(kernels512["int_mul.full.ise"])
        assert profile.mac_instructions == 128  # 64 maddlu + 64 maddhu

    def test_loads_stores(self, kernels512):
        profile = profile_kernel(kernels512["int_mul.full.isa"])
        assert profile.loads == 16   # two 8-digit operands
        assert profile.stores == 16  # one 16-digit product

    def test_ise_tradeoff_instructions_vs_chain(self, kernels512):
        """The ISE win is throughput, not latency: fused MACs chain the
        accumulator through latency-3 XMUL ops, so the critical path
        *grows* while the instruction count collapses — cycles are
        bounded by max(instructions, chain) and the count dominates."""
        isa = profile_kernel(kernels512["int_mul.reduced.isa"])
        ise = profile_kernel(kernels512["int_mul.reduced.ise"])
        assert ise.instructions < isa.instructions * 0.5
        assert ise.critical_path > isa.critical_path
        # the binding bound still falls: max(count, chain) shrinks
        assert max(ise.instructions, ise.critical_path) \
            < max(isa.instructions, isa.critical_path)

    def test_arithmetic_intensity(self, kernels512):
        profile = profile_kernel(kernels512["int_mul.full.isa"])
        assert profile.arithmetic_intensity == pytest.approx(4.0)

    def test_compare_profiles(self, kernels512):
        a = profile_kernel(kernels512["int_mul.full.isa"])
        b = profile_kernel(kernels512["int_mul.full.ise"])
        delta = compare_profiles(a, b)
        assert delta["instructions"] < 0.65  # the 8->4 MAC shrink

    def test_profile_program_direct(self):
        program = assemble("mul a0, a1, a2\nadd a0, a0, a3\nret",
                           BASE_ISA)
        profile = profile_program("tiny", program.instructions,
                                  BASE_ISA)
        assert profile.instructions == 3
        assert profile.critical_path >= 4  # mul(3) -> add(1)


class TestScheduler:
    def test_preserves_semantics_all_kernels(self, kernels512, rng):
        for name in ("int_mul.full.isa", "int_sqr.reduced.isa",
                     "mont_redc.full.ise", "fp_mul.reduced.ise",
                     "fp_add.reduced.isa", "fast_reduce.full.isa"):
            kernel = kernels512[name]
            runner = KernelRunner(kernel, schedule=True)
            for _ in range(2):
                values = kernel.sampler(rng)
                runner.run(*values)  # check=True verifies vs reference

    def test_improves_naive_isa_mul(self, kernels512, rng, p512):
        kernel = kernels512["int_mul.full.isa"]
        naive = KernelRunner(kernel)
        scheduled = KernelRunner(kernel, schedule=True)
        a, b = rng.randrange(p512), rng.randrange(p512)
        assert scheduled.run(a, b).cycles < naive.run(a, b).cycles

    def test_preserves_instruction_count(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        program = assemble(kernel.source, kernel.isa)
        reordered = schedule(program.instructions, kernel.isa)
        assert sorted(map(str, reordered)) \
            == sorted(map(str, program.instructions))

    def test_ret_stays_last(self, kernels512):
        kernel = kernels512["fp_add.full.isa"]
        program = assemble(kernel.source, kernel.isa)
        reordered = schedule(program.instructions, kernel.isa)
        assert reordered[-1].mnemonic == "jalr"

    def test_memory_order_preserved(self):
        source = """
            ld t0, 0(a0)
            addi t0, t0, 1
            sd t0, 0(a0)
            ld t1, 0(a0)
            sd t1, 8(a0)
            ret
        """
        program = assemble(source, BASE_ISA)
        reordered = schedule(program.instructions, BASE_ISA)
        memory_ops = [i.mnemonic for i in reordered
                      if i.mnemonic in ("ld", "sd")]
        assert memory_ops == ["ld", "sd", "ld", "sd"]

    def test_empty_program(self):
        assert schedule([], BASE_ISA) == []

    def test_schedule_source_roundtrip(self):
        text = schedule_source(
            "mul a0, a1, a2\nadd a3, a4, a5\nadd a6, a0, a0\nret",
            BASE_ISA)
        # the independent add should have been hoisted between the mul
        # and its dependent use
        lines = [line.strip() for line in text.strip().splitlines()]
        assert lines[0].startswith("mul")
        assert lines[1].startswith("add a3")
