"""Golden encoding tests: canonical RISC-V instruction words.

Pins the binary encoder against well-known constants from the RISC-V
specification and standard toolchain output (the encodings every RISC-V
engineer recognises on sight), so a regression in field placement can
never pass as a self-consistent encode/decode pair.
"""

from __future__ import annotations

import pytest

from repro.rv64.assembler import assemble
from repro.rv64.encoding import Decoder, encode_instruction
from repro.rv64.isa import BASE_ISA

#: (assembly, canonical 32-bit encoding)
GOLDEN = [
    ("addi zero, zero, 0", 0x00000013),   # the canonical NOP
    ("ecall", 0x00000073),
    ("ebreak", 0x00100073),
    ("jalr zero, ra, 0", 0x00008067),     # RET
    ("addi sp, sp, -16", 0xFF010113),     # ubiquitous prologue
    ("addi ra, zero, 1", 0x00100093),
    ("add ra, sp, gp", 0x003100B3),
    ("sub a0, a1, a2", 0x40C58533),
    ("sltu a0, a1, a2", 0x00C5B533),
    ("mul a0, a1, a2", 0x02C58533),
    ("mulhu a0, a1, a2", 0x02C5B533),
    ("lui a0, 0x12345", 0x12345537),
    ("jal zero, 0", 0x0000006F),
    ("beq zero, zero, 0", 0x00000063),
    ("ld a0, 8(sp)", 0x00813503),
    ("sd a0, 8(sp)", 0x00A13423),
    ("srai a0, a0, 1", 0x40155513),
    ("slli a0, a0, 63", 0x03F51513),
    ("srli a0, a0, 63", 0x03F55513),
    ("xor a0, a0, a1", 0x00B54533),
]


@pytest.mark.parametrize("text,word", GOLDEN)
def test_encode_matches_spec(text, word):
    ins = assemble(text, BASE_ISA).instructions[0]
    assert encode_instruction(BASE_ISA, ins) == word, (
        f"{text}: got {encode_instruction(BASE_ISA, ins):#010x}, "
        f"expected {word:#010x}"
    )


@pytest.mark.parametrize("text,word", GOLDEN)
def test_decode_matches_spec(text, word):
    expected = assemble(text, BASE_ISA).instructions[0]
    assert Decoder(BASE_ISA).decode(word) == expected


def test_all_encodings_are_32_bit_uncompressed():
    for text, word in GOLDEN:
        assert word & 0b11 == 0b11  # low bits 11 = uncompressed
        assert 0 <= word < (1 << 32)
