"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# Radix/context fixtures parametrised into @given tests are immutable, so
# sharing them across generated examples is safe.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)
settings.load_profile("repro")

from repro.csidh.parameters import csidh_512, csidh_mini, csidh_toy
from repro.kernels.registry import cached_kernels, make_contexts


@pytest.fixture(scope="session", autouse=True)
def _isolated_aot_artifact_cache(tmp_path_factory):
    """Keep every aot-engine test out of the user's real artifact
    cache (``~/.cache/repro/aot``); tests that probe warm-start or
    corruption behaviour still override the variable themselves."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_AOT_CACHE",
              str(tmp_path_factory.mktemp("aot-artifacts")))
    yield
    mp.undo()


@pytest.fixture(scope="session")
def csidh512_params():
    return csidh_512()


@pytest.fixture(scope="session")
def toy_params():
    return csidh_toy()


@pytest.fixture(scope="session")
def mini_params():
    return csidh_mini()


@pytest.fixture(scope="session")
def p512(csidh512_params):
    return csidh512_params.p


@pytest.fixture(scope="session")
def kernels512(p512):
    """All generated kernels for the CSIDH-512 prime (built once)."""
    return cached_kernels(p512)


@pytest.fixture(scope="session")
def contexts512(p512):
    return make_contexts(p512)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return random.Random(0xD4C)


@pytest.fixture(scope="session")
def toy_kernels():
    """All kernels for the toy prime (tiny and fast to execute)."""
    from repro.csidh.parameters import csidh_toy

    return cached_kernels(csidh_toy().p)


_RUNNER_CACHE = {}


def _toy_runner_cache(kernel):
    """Session-wide KernelRunner cache for fuzzing tests."""
    from repro.kernels.runner import KernelRunner

    if kernel.name not in _RUNNER_CACHE:
        _RUNNER_CACHE[kernel.name] = KernelRunner(kernel)
    return _RUNNER_CACHE[kernel.name]
