"""Tests for the execution profiler and hardware timing model."""

from __future__ import annotations

import pytest

from repro.hw.timing import (
    StageDelay,
    TARGET_CLOCK_NS,
    base_multiplier_stage,
    critical_path_report,
    xmul_extends_critical_path,
    xmul_full_radix_stage2,
    xmul_reduced_radix_stage2,
)
from repro.rv64.assembler import assemble
from repro.rv64.isa import BASE_ISA
from repro.rv64.machine import Machine
from repro.rv64.tracing import (
    Profiler,
    instruction_mix,
    profile_machine_run,
)


def _machine(source: str) -> tuple[Machine, int]:
    machine = Machine(BASE_ISA)
    entry = machine.load_program(assemble(source, BASE_ISA))
    return machine, entry


class TestProfiler:
    def test_counts_mnemonics(self):
        machine, entry = _machine(
            "add a0, a1, a2\nadd a0, a0, a2\nmul a3, a0, a0\nret")
        profile = profile_machine_run(machine, entry)
        assert profile.mnemonics["add"] == 2
        assert profile.mnemonics["mul"] == 1
        assert profile.total == 4

    def test_kind_fractions(self):
        machine, entry = _machine(
            "mul a0, a1, a2\nmulhu a3, a1, a2\nadd a4, a0, a3\nret")
        mix = instruction_mix(machine, entry)
        assert mix["mul"] == pytest.approx(0.5)

    def test_hot_pcs_in_loop(self):
        source = """
            li a0, 5
        loop:
            addi a0, a0, -1
            bnez a0, loop
            ret
        """
        machine, entry = _machine(source)
        profile = profile_machine_run(machine, entry)
        (hot_pc, executions), *_ = profile.hottest(1)
        assert executions == 5  # loop body runs 5 times

    def test_mnemonic_fraction(self):
        machine, entry = _machine("nop\nnop\nmul a0, a1, a2\nret")
        profile = profile_machine_run(machine, entry)
        assert profile.mnemonic_fraction("addi") == pytest.approx(0.5)

    def test_report_renders(self):
        machine, entry = _machine("mul a0, a1, a2\nret")
        profile = profile_machine_run(machine, entry)
        text = profile.report()
        assert "dynamic instructions: 2" in text
        assert "mul" in text

    def test_profiler_reset(self):
        profiler = Profiler(BASE_ISA)
        machine, entry = _machine("nop\nret")
        profiler.attach(machine)
        machine.run(entry)
        assert profiler.profile.total == 2
        profiler.reset()
        assert profiler.profile.total == 0

    def test_kernel_mac_fraction(self, kernels512):
        """The MAC fraction of the ISE mul should dominate: Listing 4
        is 2 of ~3 instructions per inner step."""
        from repro.kernels.runner import KernelRunner

        kernel = kernels512["int_mul.reduced.ise"]
        runner = KernelRunner(kernel)
        profiler = Profiler(kernel.isa).attach(runner.machine)
        runner.run(12345, 67890)
        fraction = profiler.profile.mnemonic_fraction(
            "madd57lu", "madd57hu")
        assert fraction > 0.5


class TestTraceHookEngine:
    """Attached trace hooks force the interpreter path — the documented
    contract of `Machine.add_trace_hook` — and `ExecutionResult.engine`
    reports which engine actually ran."""

    SOURCE = "add a0, a1, a2\nadd a0, a0, a2\nret"

    def test_replay_runs_without_hooks(self):
        machine, entry = _machine(self.SOURCE)
        assert machine.run(entry, replay=True).engine == "replay"

    def test_attached_profiler_forces_interpreter(self):
        machine, entry = _machine(self.SOURCE)
        profiler = Profiler(BASE_ISA).attach(machine)
        result = machine.run(entry, replay=True)
        assert result.engine == "interpreter"
        assert profiler.profile.total == 3  # the hook actually fired

    def test_detach_restores_replay(self):
        machine, entry = _machine(self.SOURCE)
        profiler = Profiler(BASE_ISA).attach(machine)
        assert machine.run(entry, replay=True).engine == "interpreter"
        profiler.detach(machine)
        assert machine.run(entry, replay=True).engine == "replay"

    def test_trace_hook_context_manager_detaches_on_error(self):
        machine, entry = _machine(self.SOURCE)
        with pytest.raises(RuntimeError):
            with machine.trace_hook(lambda state, ins: None):
                raise RuntimeError("boom")
        assert machine.run(entry, replay=True).engine == "replay"

    def test_profile_machine_run_leaves_no_hook(self):
        machine, entry = _machine(self.SOURCE)
        profile_machine_run(machine, entry)
        assert machine.run(entry, replay=True).engine == "replay"

    def test_telemetry_records_fallback_and_engine(self):
        from repro import telemetry

        machine, entry = _machine(self.SOURCE)
        machine.add_trace_hook(lambda state, ins: None)
        with telemetry.capture() as cap:
            result = machine.run(entry, replay=True)
        assert result.engine == "interpreter"
        fallbacks = cap.registry.counter("replay_fallback_total")
        assert fallbacks.value(reason="trace_hooks") == 1
        engines = cap.registry.counter("machine_runs_total")
        assert engines.value(engine="interpreter") == 1
        assert engines.value(engine="replay") == 0


class TestTimingModel:
    def test_base_stage_meets_50mhz(self):
        assert base_multiplier_stage().meets(TARGET_CLOCK_NS)

    def test_xmul_does_not_extend_critical_path(self):
        """The paper's Sect. 3.3 claim."""
        assert not xmul_extends_critical_path()
        base = base_multiplier_stage().nanoseconds
        assert xmul_full_radix_stage2().nanoseconds < base
        assert xmul_reduced_radix_stage2().nanoseconds < base

    def test_report_structure(self):
        report = critical_path_report()
        assert len(report) == 3
        assert all(0 < ns < TARGET_CLOCK_NS for ns in report.values())

    def test_stage_delay_math(self):
        stage = StageDelay("x", 10)
        assert stage.nanoseconds == pytest.approx(9.0)
        assert stage.meets(10.0)
        assert not stage.meets(5.0)

    def test_reduced_stage_deeper_than_full(self):
        """The barrel shifter makes the reduced-radix stage the deeper
        of the two extensions (mirrors its higher LUT count)."""
        assert xmul_reduced_radix_stage2().levels \
            >= xmul_full_radix_stage2().levels