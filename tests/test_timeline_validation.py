"""Tests for the pipeline timeline recorder and batch validation."""

from __future__ import annotations

import pytest

from repro.core import EXTENDED_ISA
from repro.core.macros import mac_full_radix_isa, mac_full_radix_ise
from repro.kernels.validation import validate_kernels
from repro.rv64.isa import BASE_ISA
from repro.rv64.timeline import render_timeline, trace_timeline


class TestTimeline:
    def test_entries_ordered_and_complete(self):
        entries = trace_timeline(
            "mul a0, a1, a2\nadd a3, a0, a0\nret", BASE_ISA)
        assert len(entries) == 3
        issues = [e.issue for e in entries]
        assert issues == sorted(issues)
        assert all(e.complete > e.issue for e in entries)

    def test_mul_use_stall_recorded(self):
        entries = trace_timeline(
            "mul a0, a1, a2\nadd a3, a0, a0\nret", BASE_ISA)
        assert entries[1].stall == 2  # waits on the 3-cycle multiply

    def test_independent_ops_do_not_stall(self):
        entries = trace_timeline(
            "mul a0, a1, a2\nadd a3, a4, a5\nret", BASE_ISA)
        assert entries[1].stall == 0

    def test_listing_totals_match_machine(self):
        """The timeline's horizon equals the cycle count the machine's
        own pipeline model reports for the same code."""
        from tests.helpers import result_of, run_asm
        from repro.rv64.pipeline import PipelineConfig

        source = "\n".join(
            mac_full_radix_isa("s2", "s1", "s0", "a0", "a1",
                               "t0", "t1")) + "\nret"
        config = PipelineConfig()
        entries = trace_timeline(source, EXTENDED_ISA,
                                 regs={"a0": 3, "a1": 4})
        machine = run_asm(source, {"a0": 3, "a1": 4},
                          pipeline=config, append_ret=False)
        # the machine additionally counts the trailing ret's flush
        flush = config.jump_penalty
        assert max(e.issue for e in entries) + 1 + flush \
            == result_of(machine).cycles

    def test_ise_mac_shorter_than_isa(self):
        regs = {"a0": 5, "a1": 6}
        isa = trace_timeline("\n".join(
            mac_full_radix_isa("s2", "s1", "s0", "a0", "a1", "t0",
                               "t1")) + "\nret", EXTENDED_ISA,
            regs=dict(regs))
        ise = trace_timeline("\n".join(
            mac_full_radix_ise("s2", "s1", "s0", "a0", "a1", "t0"))
            + "\nret", EXTENDED_ISA, regs=dict(regs))
        assert max(e.complete for e in ise) \
            < max(e.complete for e in isa)

    def test_render_contains_glyphs(self):
        entries = trace_timeline(
            "mul a0, a1, a2\nld a3, 0(a4)\nsd a3, 8(a4)\nret",
            BASE_ISA, regs={"a4": 0x9000})
        text = render_timeline(entries)
        assert "M" in text and "L" in text and "S" in text
        assert "cycle" in text

    def test_render_empty(self):
        assert render_timeline([]) == "(empty)"


class TestBatchValidation:
    def test_toy_sweep_passes(self, toy_params):
        report = validate_kernels(toy_params.p, trials=2)
        assert report.passed
        assert len(report.results) == 38
        assert "38 passed" in report.summary()

    def test_constant_time_option(self, toy_params):
        report = validate_kernels(toy_params.p, trials=1,
                                  check_constant_time=True)
        assert report.passed
        assert all(r.constant_time for r in report.results)

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate", "--params", "toy",
                     "--trials", "1"]) == 0
        assert "passed" in capsys.readouterr().out


class TestDerivedPrivateKeys:
    def test_deterministic(self, mini_params):
        from repro.csidh.protocol import PrivateKey

        a = PrivateKey.derive(b"seed", mini_params)
        b = PrivateKey.derive(b"seed", mini_params)
        assert a == b

    def test_different_seeds_differ(self, mini_params):
        from repro.csidh.protocol import PrivateKey

        assert PrivateKey.derive(b"a", mini_params) \
            != PrivateKey.derive(b"b", mini_params)

    def test_in_bounds(self, csidh512_params):
        from repro.csidh.protocol import PrivateKey

        key = PrivateKey.derive(b"\x01\x02", csidh512_params)
        m = csidh512_params.max_exponent
        assert len(key.exponents) == 74
        assert all(-m <= e <= m for e in key.exponents)

    def test_unbiased_over_many_seeds(self, toy_params):
        """Rejection sampling: every exponent value must occur."""
        from repro.csidh.protocol import PrivateKey

        seen = set()
        for i in range(200):
            key = PrivateKey.derive(i.to_bytes(2, "little"),
                                    toy_params)
            seen.update(key.exponents)
        m = toy_params.max_exponent
        assert seen == set(range(-m, m + 1))
