"""Tests for the telemetry subsystem: metrics, spans, exporters and the
instrumented group-action profile.

The load-bearing property throughout is *cycle conservation*: every
simulated cycle lands in exactly one span's ``self_cycles``, so subtree
totals roll up to the independently measured grand total.  The
integration tests check that invariant against a fully simulated toy
group action, end to end.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.errors import ReproError
from repro.telemetry import (
    MetricsRegistry,
    SpanNode,
    TelemetryError,
    Tracer,
    render_span_tree,
)
from repro.telemetry.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    to_json_document,
    to_prometheus,
    write_bench,
    write_json,
    write_jsonl,
)
from repro.telemetry.spans import _NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    """Every test starts and ends with disabled, empty global state."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_inc_value_total(self):
        reg = MetricsRegistry()
        runs = reg.counter("runs_total", "help text")
        runs.inc(kernel="fp_mul")
        runs.inc(3, kernel="fp_mul")
        runs.inc(kernel="fp_add")
        assert runs.value(kernel="fp_mul") == 4
        assert runs.value(kernel="fp_add") == 1
        assert runs.value(kernel="absent") == 0
        assert runs.total() == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("c").inc(-1)

    def test_counter_get_or_create_is_same_family(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc()
        assert reg.counter("c").total() == 2

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("pool_size")
        gauge.set(4)
        assert gauge.value() == 4
        gauge.labels().inc(2)
        gauge.labels().dec(1)
        assert gauge.value() == 5

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("cycles", buckets=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 3
        assert child.sum == 555
        assert child.min == 5 and child.max == 500
        assert child.buckets == [1, 1, 1]  # <=10, <=100, +Inf

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("x")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(a=1, b=2)
        counter.inc(b=2, a=1)
        assert counter.value(b=2, a=1) == 2

    def test_histogram_samples_flatten(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(10,)).observe(3)
        names = {s.name for s in reg.samples()}
        assert names == {"h_count", "h_sum", "h_bucket"}
        buckets = [s for s in reg.samples() if s.name == "h_bucket"]
        assert [dict(s.labels)["le"] for s in buckets] == ["10", "+Inf"]
        assert [s.value for s in buckets] == [1, 1]  # cumulative

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert list(reg.samples()) == []

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("runs_total").inc(2, kernel="fp_mul")
        reg.gauge("size").set(3)
        text = to_prometheus(reg)
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{kernel="fp_mul"} 2' in text
        assert "# TYPE size gauge" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_one_type_line(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(10,)).observe(3)
        text = to_prometheus(reg)
        assert text.count("# TYPE h histogram") == 1
        assert 'h_bucket{le="+Inf"} 1' in text


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is _NULL_SPAN
        with tracer.span("a"):
            tracer.add_cycles(100)
        assert tracer.root.children == {}
        assert tracer.root.self_cycles == 0

    def test_cycles_go_to_innermost_span(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("outer"):
            tracer.add_cycles(10)
            with tracer.span("inner"):
                tracer.add_cycles(5)
        outer = tracer.root.find("outer")
        inner = outer.find("inner")
        assert outer.self_cycles == 10
        assert inner.self_cycles == 5
        assert outer.total_cycles == 15
        assert tracer.root.total_cycles == 15

    def test_repeated_spans_aggregate(self):
        tracer = Tracer()
        tracer.enabled = True
        for _ in range(3):
            with tracer.span("isogeny", degree=3):
                tracer.add_cycles(7)
        with tracer.span("isogeny", degree=5):
            tracer.add_cycles(1)
        assert len(tracer.root.children) == 2
        node = tracer.root.find("isogeny", degree=3)
        assert node.count == 3
        assert node.self_cycles == 21
        assert node.label == "isogeny[degree=3]"

    def test_wall_clock_accumulates(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("a"):
            pass
        assert tracer.root.find("a").wall_s >= 0.0
        assert tracer.root.find("a").count == 1

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        tracer.enabled = True
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current() is tracer.root
        # recording still works afterwards
        with tracer.span("after"):
            tracer.add_cycles(1)
        assert tracer.root.find("after").self_cycles == 1

    def test_find_with_and_without_labels(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("isogeny", degree=3):
            pass
        assert tracer.root.find("isogeny") is not None
        assert tracer.root.find("isogeny", degree=3) is not None
        assert tracer.root.find("isogeny", degree=5) is None

    def test_reset_keeps_enabled_flag(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.enabled
        assert tracer.root.children == {}

    def test_render_tree(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("group_action"):
            with tracer.span("isogeny", degree=3):
                tracer.add_cycles(75)
            with tracer.span("sample_point"):
                tracer.add_cycles(25)
        text = render_span_tree(tracer.root)
        assert "group_action" in text
        assert "isogeny[degree=3]" in text
        assert "75.0%" in text
        # single top-level span: the synthetic root row is skipped
        assert "root" not in text

    def test_render_min_percent_filters(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("big"):
            tracer.add_cycles(99)
        with tracer.span("tiny"):
            tracer.add_cycles(1)
        text = render_span_tree(tracer.root, min_percent=5.0)
        assert "big" in text
        assert "tiny" not in text


# ---------------------------------------------------------------------------
# Global helpers: capture() and the record_* instrumentation points
# ---------------------------------------------------------------------------


class TestGlobalHelpers:
    def test_capture_enables_and_restores(self):
        assert not telemetry.enabled()
        with telemetry.capture() as cap:
            assert telemetry.enabled()
            with telemetry.span("a"):
                telemetry.add_cycles(3)
        assert not telemetry.enabled()
        assert cap.root.find("a").self_cycles == 3

    def test_capture_fresh_drops_previous_state(self):
        telemetry.enable()
        with telemetry.span("stale"):
            pass
        with telemetry.capture() as cap:
            pass
        assert cap.root.find("stale") is None

    def test_record_helpers_noop_while_disabled(self):
        telemetry.record_kernel_run("fp_mul", "replay", 10, 5)
        telemetry.record_pool_access(True, 4)
        telemetry.record_machine_run("replay")
        telemetry.record_replay_fallback("trace_hooks")
        telemetry.record_trace_compile()
        telemetry.record_trace_reject("control_flow")
        telemetry.record_kernel_check_failure("fp_mul")
        assert list(telemetry.REGISTRY.samples()) == []
        assert telemetry.TRACER.root.children == {}

    def test_record_kernel_run_attributes_cycles(self):
        with telemetry.capture() as cap:
            with telemetry.span("phase"):
                telemetry.record_kernel_run("fp_mul", "replay", 58, 33)
                telemetry.record_kernel_run("fp_mul", "replay", 58, 33)
        assert cap.root.find("phase").self_cycles == 116
        runs = cap.registry.counter("kernel_runs_total")
        assert runs.value(kernel="fp_mul", engine="replay") == 2
        cycles = cap.registry.counter("kernel_cycles_total")
        assert cycles.value(kernel="fp_mul") == 116

    def test_record_pool_access_counters_and_gauge(self):
        with telemetry.capture() as cap:
            telemetry.record_pool_access(False, 1)
            telemetry.record_pool_access(True, 1)
            telemetry.record_pool_access(True, 1)
        reg = cap.registry
        assert reg.counter("runner_pool_misses_total").total() == 1
        assert reg.counter("runner_pool_hits_total").total() == 2
        assert reg.gauge("runner_pool_size").value() == 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_tree() -> Tracer:
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("group_action"):
        with tracer.span("isogeny", degree=3):
            tracer.add_cycles(30)
        with tracer.span("isogeny", degree=5):
            tracer.add_cycles(50)
        tracer.add_cycles(7)
    return tracer


class TestExport:
    def test_span_dict_round_trip_is_equal(self):
        root = _sample_tree().root
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt == root
        assert rebuilt.total_cycles == 87

    def test_json_document_structure(self, tmp_path):
        tracer = _sample_tree()
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        path = tmp_path / "out.json"
        write_json(str(path), tracer.root, reg,
                   extra={"workload": {"kind": "test"}})
        document = json.loads(path.read_text())
        assert document["meta"]["schema"] == 1
        assert document["spans"]["name"] == "root"
        assert document["spans"]["total_cycles"] == 87
        assert document["metrics"]["c"] == [
            {"labels": {}, "value": 5}]
        assert document["workload"] == {"kind": "test"}

    def test_jsonl_round_trip_rebuilds_exact_tree(self, tmp_path):
        tracer = _sample_tree()
        reg = MetricsRegistry()
        reg.counter("c").inc(kernel="fp_mul")
        path = tmp_path / "out.jsonl"
        write_jsonl(str(path), tracer.root, reg)
        rebuilt = read_jsonl(str(path))
        assert rebuilt == tracer.root

    def test_jsonl_lines_are_self_describing(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(str(path), _sample_tree().root)
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert events[0]["type"] == "meta"
        spans = [e for e in events if e["type"] == "span"]
        deepest = max(spans, key=lambda e: len(e["path"]))
        assert deepest["path"][0] == ["root", {}]
        assert deepest["path"][1] == ["group_action", {}]

    def test_read_jsonl_without_spans_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "meta"}\n')
        with pytest.raises(TelemetryError):
            read_jsonl(str(path))

    def test_to_json_document_matches_tree_total(self):
        tracer = _sample_tree()
        document = to_json_document(tracer.root, MetricsRegistry())
        assert (document["spans"]["total_cycles"]
                == tracer.root.total_cycles)

    def test_write_bench_appends_runs(self, tmp_path):
        path = tmp_path / "BENCH_protocol.json"
        write_bench(str(path), "protocol", {"wall_s": 1.0})
        document = write_bench(str(path), "protocol", {"wall_s": 2.0})
        assert document["benchmark"] == "protocol"
        assert [run["wall_s"] for run in document["runs"]] == [1.0, 2.0]
        on_disk = json.loads(path.read_text())
        assert len(on_disk["runs"]) == 2

    def test_write_bench_survives_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_protocol.json"
        path.write_text("not json {")
        document = write_bench(str(path), "protocol", {"wall_s": 3.0})
        assert len(document["runs"]) == 1


# ---------------------------------------------------------------------------
# Instrumented workloads (integration, toy parameters)
# ---------------------------------------------------------------------------


class TestInstrumentedGroupAction:
    @pytest.fixture(scope="class")
    def profile(self):
        from repro.csidh.parameters import csidh_toy
        from repro.telemetry.profile import profile_group_action

        return profile_group_action(csidh_toy(), seed=3)

    def test_cycle_conservation(self, profile):
        """Every simulated cycle is attributed to exactly one phase:
        the span tree's total equals the field context's independent
        count (checked exactly, not within tolerance)."""
        assert profile.action_node.total_cycles \
            == profile.simulated_cycles
        phase_sum = sum(child.total_cycles for child
                        in profile.action_node.children.values())
        assert phase_sum + profile.action_node.self_cycles \
            == profile.simulated_cycles

    def test_expected_phase_spans_present(self, profile):
        names = {child.name for child
                 in profile.action_node.children.values()}
        assert {"sample_point", "cofactor_clear",
                "recover_affine", "isogeny"} <= names

    def test_per_degree_isogeny_attribution(self, profile):
        degrees = {
            dict(child.labels)["degree"]
            for child in profile.action_node.children.values()
            if child.name == "isogeny"
        }
        assert degrees <= {"3", "5", "7"}
        assert degrees  # at least one isogeny ran
        for child in profile.action_node.children.values():
            if child.name == "isogeny":
                assert child.total_cycles > 0

    def test_kernel_metrics_sum_to_total(self, profile):
        cycles = profile.registry.counter("kernel_cycles_total")
        assert cycles.total() == profile.simulated_cycles
        runs = profile.registry.counter("kernel_runs_total")
        assert runs.total() > 0

    def test_replay_engine_used_throughout(self, profile):
        engines = profile.registry.counter("machine_runs_total")
        assert engines.value(engine="replay") > 0
        assert engines.value(engine="interpreter") == 0
        assert profile.registry.counter(
            "replay_fallback_total").total() == 0

    def test_hot_kernels_ranked(self, profile):
        hot = profile.hot_kernels(top=3)
        assert hot[0][0] == "fp_mul.reduced.ise"
        assert hot == sorted(hot, key=lambda item: -item[1])
        for _, cycles, runs in hot:
            assert cycles > 0 and runs > 0

    def test_render_profile_mentions_key_facts(self, profile):
        from repro.telemetry.profile import render_profile

        text = render_profile(profile)
        assert "group_action" in text
        assert "fp_mul.reduced.ise" in text
        assert "engine mix: replay=" in text

    def test_bench_record_shape(self, profile):
        record = profile.bench_record()
        assert record["params"] == "CSIDH-toy"
        assert record["simulated_cycles"] == profile.simulated_cycles
        assert sum(record["cycles_by_phase"].values()) \
            == profile.simulated_cycles
        assert record["hot_kernels"]

    def test_csidh512_refused(self):
        from repro.csidh.parameters import csidh_512
        from repro.telemetry.profile import profile_group_action

        with pytest.raises(ReproError, match="infeasible"):
            profile_group_action(csidh_512())

    def test_cross_check_forces_interpreter(self, toy_params):
        from repro.telemetry.profile import profile_group_action

        profile = profile_group_action(toy_params, seed=3,
                                       cross_check=True)
        engines = profile.registry.counter("machine_runs_total")
        assert engines.value(engine="interpreter") > 0
        assert engines.value(engine="replay") == 0
        # conservation holds on the interpreter path too
        assert profile.action_node.total_cycles \
            == profile.simulated_cycles


class TestRunnerPoolTelemetry:
    def test_hits_and_misses_counted(self, toy_params):
        from repro.kernels.registry import (
            cached_runner,
            clear_runner_pool,
        )

        clear_runner_pool()
        with telemetry.capture() as cap:
            cached_runner(toy_params.p, "fp_mul.reduced.ise")
            cached_runner(toy_params.p, "fp_mul.reduced.ise")
            cached_runner(toy_params.p, "fp_add.reduced.ise")
        reg = cap.registry
        assert reg.counter("runner_pool_misses_total").total() == 2
        assert reg.counter("runner_pool_hits_total").total() == 1
        assert reg.gauge("runner_pool_size").value() == 2


# ---------------------------------------------------------------------------
# Prometheus label escaping + wall-clock span anchors (PR 7 satellites)
# ---------------------------------------------------------------------------


class TestPrometheusEscaping:
    def test_hostile_label_values_escaped(self):
        reg = MetricsRegistry()
        hostile = 'back\\slash "quoted"\nnewline'
        reg.counter("hostile_total").inc(3, kernel=hostile)
        text = to_prometheus(reg)
        line = next(l for l in text.splitlines()
                    if l.startswith("hostile_total"))
        # The exposition stays one physical line: the raw newline must
        # have been escaped, not emitted.
        assert "\n" not in line
        assert ('kernel="back\\\\slash \\"quoted\\"\\nnewline"'
                in line)
        assert line.endswith(" 3")

    def test_benign_labels_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("runs_total").inc(kernel="fp_mul.reduced.ise")
        assert ('runs_total{kernel="fp_mul.reduced.ise"} 1'
                in to_prometheus(reg))


class TestStartEpochAnchor:
    def test_span_entry_stamps_epoch_once(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("outer"):
            pass
        node = tracer.root.find("outer")
        first = node.start_epoch
        assert first is not None and first > 0
        with tracer.span("outer"):
            pass
        # Re-entering the same aggregate keeps the *first* wall-clock
        # anchor: the Chrome exporter wants stable placement.
        assert node.start_epoch == first

    def test_jsonl_round_trip_preserves_epoch(self, tmp_path):
        tracer = _sample_tree()
        tracer.root.find("group_action").start_epoch = 1700000000.25
        path = tmp_path / "epoch.jsonl"
        write_jsonl(str(path), tracer.root)
        rebuilt = read_jsonl(str(path))
        assert rebuilt == tracer.root
        assert (rebuilt.find("group_action").start_epoch
                == 1700000000.25)

    def test_dict_round_trip_preserves_epoch_and_absence(self):
        tracer = _sample_tree()
        tracer.root.find("group_action").start_epoch = 123.5
        rebuilt = span_from_dict(span_to_dict(tracer.root))
        assert rebuilt == tracer.root
        assert rebuilt.find("group_action").start_epoch == 123.5
        # Nodes never entered as wall spans stay unanchored.
        assert rebuilt.start_epoch is None

    def test_epoch_distinguishes_otherwise_equal_trees(self):
        a = _sample_tree().root
        b = _sample_tree().root
        a.find("group_action").start_epoch = 1.0
        b.find("group_action").start_epoch = 2.0
        assert a != b
