"""Tests for radix representations and conversions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.mpi.representation import (
    CSIDH512_FULL,
    CSIDH512_REDUCED,
    Radix,
    full_radix_for,
    reduced_radix_for,
)


class TestConstruction:
    def test_csidh512_shapes(self):
        assert (CSIDH512_FULL.bits, CSIDH512_FULL.limbs) == (64, 8)
        assert (CSIDH512_REDUCED.bits, CSIDH512_REDUCED.limbs) == (57, 9)

    def test_capacity(self):
        assert CSIDH512_FULL.capacity_bits == 512
        assert CSIDH512_REDUCED.capacity_bits == 513

    def test_factories(self):
        assert full_radix_for(511).limbs == 8
        assert full_radix_for(512).limbs == 8
        assert full_radix_for(513).limbs == 9
        assert reduced_radix_for(511).limbs == 9

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Radix(0, 4)
        with pytest.raises(ParameterError):
            Radix(65, 4)
        with pytest.raises(ParameterError):
            Radix(64, 0)

    def test_is_full_flag(self):
        assert CSIDH512_FULL.is_full
        assert not CSIDH512_REDUCED.is_full


class TestConversion:
    @given(st.integers(min_value=0, max_value=(1 << 512) - 1))
    def test_roundtrip_full(self, value):
        limbs = CSIDH512_FULL.to_limbs(value)
        assert CSIDH512_FULL.from_limbs(limbs) == value

    @given(st.integers(min_value=0, max_value=(1 << 513) - 1))
    def test_roundtrip_reduced(self, value):
        limbs = CSIDH512_REDUCED.to_limbs(value)
        assert CSIDH512_REDUCED.from_limbs(limbs) == value
        assert all(0 <= limb < (1 << 57) for limb in limbs)

    def test_overflow_rejected(self):
        with pytest.raises(ParameterError):
            CSIDH512_FULL.to_limbs(1 << 512)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            CSIDH512_FULL.to_limbs(-1)

    def test_custom_limb_count(self):
        limbs = CSIDH512_FULL.to_limbs(7, limbs=16)
        assert len(limbs) == 16
        assert CSIDH512_FULL.from_limbs(limbs) == 7

    def test_from_limbs_accepts_noncanonical(self):
        # delayed-carry vectors evaluate to the value they denote
        radix = CSIDH512_REDUCED
        limbs = [radix.mask + 5] + [0] * 8
        assert radix.from_limbs(limbs) == radix.mask + 5

    def test_from_limbs_accepts_negative_limbs(self):
        radix = CSIDH512_REDUCED
        limbs = [-1, 1] + [0] * 7  # value = 2^57 - 1
        assert radix.from_limbs(limbs) == (1 << 57) - 1


class TestCanonical:
    def test_is_canonical(self):
        radix = CSIDH512_REDUCED
        assert radix.is_canonical([0] * 9)
        assert radix.is_canonical([radix.mask] * 9)
        assert not radix.is_canonical([radix.mask + 1] + [0] * 8)
        assert not radix.is_canonical([-1] + [0] * 8)

    @given(st.integers(min_value=0, max_value=(1 << 500) - 1),
           st.integers(min_value=0, max_value=(1 << 500) - 1))
    def test_canonicalize_preserves_value(self, a, b):
        radix = CSIDH512_REDUCED
        vector = [x + y for x, y in zip(radix.to_limbs(a),
                                        radix.to_limbs(b))]
        fixed = radix.canonicalize(vector)
        assert radix.is_canonical(fixed)
        assert radix.from_limbs(fixed) == a + b
