"""Tests for the kernel runner/registry machinery itself."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernels.registry import (
    build_all_kernels,
    build_kernel,
    cached_kernels,
    make_contexts,
)
from repro.kernels.runner import KernelRunner, run_kernel
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS
from repro.rv64.pipeline import PipelineConfig


class TestRegistry:
    def test_full_matrix_generated(self, kernels512):
        # 9 operations x 4 variants + operand-scanning (full only)
        assert len(kernels512) == 38
        for op in TABLE4_OPERATIONS:
            for variant in ALL_VARIANTS:
                assert f"{op}.{variant}" in kernels512
        assert "int_mul_os.full.isa" in kernels512
        assert "int_mul_os.full.ise" in kernels512

    def test_cached_kernels_memoised(self, p512):
        assert cached_kernels(p512) is cached_kernels(p512)

    def test_unknown_variant_rejected(self, contexts512):
        with pytest.raises(KernelError):
            build_kernel("int_mul", "full.fancy", contexts512[0])

    def test_contexts_shapes(self, p512):
        full, reduced = make_contexts(p512)
        assert full.radix.limbs == 8
        assert reduced.radix.limbs == 9
        assert full.modulus == reduced.modulus == p512

    def test_sources_end_with_ret(self, kernels512):
        for kernel in kernels512.values():
            assert kernel.source.rstrip().endswith("ret")

    def test_variant_isa_assignment(self, kernels512):
        assert kernels512["int_mul.full.isa"].isa.name == "rv64im"
        assert "ise-full" in kernels512["int_mul.full.ise"].isa.name
        assert "ise-reduced" in \
            kernels512["int_mul.reduced.ise"].isa.name


class TestRunner:
    def test_wrong_arity_rejected(self, kernels512):
        runner = KernelRunner(kernels512["int_mul.full.isa"])
        with pytest.raises(KernelError, match="operands"):
            runner.run(1)

    def test_mismatch_detection(self, kernels512, monkeypatch):
        kernel = kernels512["int_mul.full.isa"]
        bad = kernel.__class__(**{**kernel.__dict__,
                                  "reference": lambda a, b: a * b + 1})
        with pytest.raises(KernelError, match="expected"):
            KernelRunner(bad).run(3, 4)

    def test_check_can_be_disabled(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        bad = kernel.__class__(**{**kernel.__dict__,
                                  "reference": lambda a, b: a * b + 1})
        run = KernelRunner(bad).run(3, 4, check=False)
        assert run.value == 12

    def test_reuse_across_runs(self, kernels512, rng, p512):
        runner = KernelRunner(kernels512["fp_add.full.isa"])
        for _ in range(5):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a + b) % p512

    def test_cycles_deterministic(self, kernels512, rng, p512):
        """Straight-line kernels: cycle count independent of data."""
        runner = KernelRunner(kernels512["fp_mul.reduced.ise"])
        cycles = {
            runner.run(rng.randrange(p512), rng.randrange(p512)).cycles
            for _ in range(4)
        }
        assert len(cycles) == 1

    def test_run_kernel_one_shot(self, kernels512):
        run = run_kernel(kernels512["int_sqr.full.isa"], 12345)
        assert run.value == 12345 ** 2

    def test_pipeline_config_changes_cycles(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        fast = KernelRunner(
            kernel, pipeline_config=PipelineConfig(mul_latency=1))
        slow = KernelRunner(
            kernel, pipeline_config=PipelineConfig(mul_latency=6))
        assert slow.run(3, 4).cycles > fast.run(3, 4).cycles

    def test_missing_pipeline_raises_not_zero(self, kernels512):
        """A machine without a timing model must fail loudly: a silent
        cycles=0 would corrupt every downstream evaluation table."""
        runner = KernelRunner(kernels512["fp_add.full.isa"])
        runner.machine.pipeline = None
        with pytest.raises(KernelError, match="no cycle count"):
            runner.run(3, 4)

    def test_static_cycles_matches_measured(self, kernels512):
        runner = KernelRunner(kernels512["fp_mul.reduced.ise"])
        assert runner.static_cycles() == runner.run(3, 4).cycles

    def test_code_bytes_reported(self, kernels512):
        runner = KernelRunner(kernels512["int_mul.full.isa"])
        assert runner.code_bytes > 4 * 500  # ~560 unrolled instructions

    def test_instruction_count_reasonable(self, kernels512):
        run = KernelRunner(kernels512["int_mul.full.isa"]).run(1, 1)
        # 64 MACs x 8 + loads/stores/overhead, well under 700
        assert 500 < run.instructions < 700


class TestToyModulus:
    """Kernels must generalise to small fields (used by the simulated
    end-to-end CSIDH runs)."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_single_limb_kernels(self, toy_params, variant, rng):
        kernels = build_all_kernels(toy_params.p)
        p = toy_params.p
        mul = KernelRunner(kernels[f"fp_mul.{variant}"])
        ctx = mul.kernel.context
        for _ in range(4):
            a, b = rng.randrange(p), rng.randrange(p)
            assert mul.run(a, b).value == ctx.montgomery_multiply(a, b)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_single_limb_add_sub(self, toy_params, variant, rng):
        kernels = build_all_kernels(toy_params.p)
        p = toy_params.p
        add = KernelRunner(kernels[f"fp_add.{variant}"])
        sub = KernelRunner(kernels[f"fp_sub.{variant}"])
        for _ in range(4):
            a, b = rng.randrange(p), rng.randrange(p)
            assert add.run(a, b).value == (a + b) % p
            assert sub.run(a, b).value == (a - b) % p
