"""Tests for the kernel runner/registry machinery itself."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernels.registry import (
    build_all_kernels,
    build_kernel,
    cached_kernels,
    cached_runner,
    clear_runner_pool,
    evict_runner,
    make_contexts,
)
from repro.kernels.runner import KernelRunner, run_kernel
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS
from repro.rv64.pipeline import PipelineConfig


class TestRegistry:
    def test_full_matrix_generated(self, kernels512):
        # 9 operations x 4 variants + operand-scanning (full only)
        assert len(kernels512) == 38
        for op in TABLE4_OPERATIONS:
            for variant in ALL_VARIANTS:
                assert f"{op}.{variant}" in kernels512
        assert "int_mul_os.full.isa" in kernels512
        assert "int_mul_os.full.ise" in kernels512

    def test_cached_kernels_memoised(self, p512):
        assert cached_kernels(p512) is cached_kernels(p512)

    def test_unknown_variant_rejected(self, contexts512):
        with pytest.raises(KernelError):
            build_kernel("int_mul", "full.fancy", contexts512[0])

    def test_contexts_shapes(self, p512):
        full, reduced = make_contexts(p512)
        assert full.radix.limbs == 8
        assert reduced.radix.limbs == 9
        assert full.modulus == reduced.modulus == p512

    def test_sources_end_with_ret(self, kernels512):
        for kernel in kernels512.values():
            assert kernel.source.rstrip().endswith("ret")

    def test_variant_isa_assignment(self, kernels512):
        assert kernels512["int_mul.full.isa"].isa.name == "rv64im"
        assert "ise-full" in kernels512["int_mul.full.ise"].isa.name
        assert "ise-reduced" in \
            kernels512["int_mul.reduced.ise"].isa.name


class TestRunner:
    def test_wrong_arity_rejected(self, kernels512):
        runner = KernelRunner(kernels512["int_mul.full.isa"])
        with pytest.raises(KernelError, match="operands"):
            runner.run(1)

    def test_mismatch_detection(self, kernels512, monkeypatch):
        kernel = kernels512["int_mul.full.isa"]
        bad = kernel.__class__(**{**kernel.__dict__,
                                  "reference": lambda a, b: a * b + 1})
        with pytest.raises(KernelError, match="expected"):
            KernelRunner(bad).run(3, 4)

    def test_check_can_be_disabled(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        bad = kernel.__class__(**{**kernel.__dict__,
                                  "reference": lambda a, b: a * b + 1})
        run = KernelRunner(bad).run(3, 4, check=False)
        assert run.value == 12

    def test_reuse_across_runs(self, kernels512, rng, p512):
        runner = KernelRunner(kernels512["fp_add.full.isa"])
        for _ in range(5):
            a, b = rng.randrange(p512), rng.randrange(p512)
            assert runner.run(a, b).value == (a + b) % p512

    def test_cycles_deterministic(self, kernels512, rng, p512):
        """Straight-line kernels: cycle count independent of data."""
        runner = KernelRunner(kernels512["fp_mul.reduced.ise"])
        cycles = {
            runner.run(rng.randrange(p512), rng.randrange(p512)).cycles
            for _ in range(4)
        }
        assert len(cycles) == 1

    def test_run_kernel_one_shot(self, kernels512):
        run = run_kernel(kernels512["int_sqr.full.isa"], 12345)
        assert run.value == 12345 ** 2

    def test_pipeline_config_changes_cycles(self, kernels512):
        kernel = kernels512["int_mul.full.isa"]
        fast = KernelRunner(
            kernel, pipeline_config=PipelineConfig(mul_latency=1))
        slow = KernelRunner(
            kernel, pipeline_config=PipelineConfig(mul_latency=6))
        assert slow.run(3, 4).cycles > fast.run(3, 4).cycles

    def test_missing_pipeline_raises_not_zero(self, kernels512):
        """A machine without a timing model must fail loudly: a silent
        cycles=0 would corrupt every downstream evaluation table."""
        runner = KernelRunner(kernels512["fp_add.full.isa"])
        runner.machine.pipeline = None
        with pytest.raises(KernelError, match="no cycle count"):
            runner.run(3, 4)

    def test_static_cycles_matches_measured(self, kernels512):
        runner = KernelRunner(kernels512["fp_mul.reduced.ise"])
        assert runner.static_cycles() == runner.run(3, 4).cycles

    def test_code_bytes_reported(self, kernels512):
        runner = KernelRunner(kernels512["int_mul.full.isa"])
        assert runner.code_bytes > 4 * 500  # ~560 unrolled instructions

    def test_instruction_count_reasonable(self, kernels512):
        run = KernelRunner(kernels512["int_mul.full.isa"]).run(1, 1)
        # 64 MACs x 8 + loads/stores/overhead, well under 700
        assert 500 < run.instructions < 700


class TestToyModulus:
    """Kernels must generalise to small fields (used by the simulated
    end-to-end CSIDH runs)."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_single_limb_kernels(self, toy_params, variant, rng):
        kernels = build_all_kernels(toy_params.p)
        p = toy_params.p
        mul = KernelRunner(kernels[f"fp_mul.{variant}"])
        ctx = mul.kernel.context
        for _ in range(4):
            a, b = rng.randrange(p), rng.randrange(p)
            assert mul.run(a, b).value == ctx.montgomery_multiply(a, b)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_single_limb_add_sub(self, toy_params, variant, rng):
        kernels = build_all_kernels(toy_params.p)
        p = toy_params.p
        add = KernelRunner(kernels[f"fp_add.{variant}"])
        sub = KernelRunner(kernels[f"fp_sub.{variant}"])
        for _ in range(4):
            a, b = rng.randrange(p), rng.randrange(p)
            assert add.run(a, b).value == (a + b) % p
            assert sub.run(a, b).value == (a - b) % p


class TestEngineSelection:
    """Engine plumbing: runner tiers, pool keys, batch accounting."""

    def test_unknown_engine_rejected(self, toy_params):
        kernels = build_all_kernels(toy_params.p)
        with pytest.raises(KernelError, match="unknown engine"):
            KernelRunner(kernels["fp_add.reduced.ise"],
                         engine="turbo")
        runner = KernelRunner(kernels["fp_add.reduced.ise"])
        with pytest.raises(KernelError, match="unknown engine"):
            runner.run(1, 2, engine="turbo")
        with pytest.raises(KernelError, match="unknown engine"):
            runner.run_batch([(1, 2)], engine="turbo")

    def test_engine_param_overrides_replay_flag(self, toy_params, rng):
        kernels = build_all_kernels(toy_params.p)
        runner = KernelRunner(kernels["fp_add.reduced.ise"],
                              replay=True, engine="jit")
        assert runner.engine == "jit"
        p = toy_params.p
        a, b = rng.randrange(p), rng.randrange(p)
        assert runner.run(a, b).value == (a + b) % p

    def test_pool_is_keyed_by_engine(self, toy_params):
        clear_runner_pool()
        p = toy_params.p
        replay = cached_runner(p, "fp_add.reduced.ise",
                               engine="replay")
        jit = cached_runner(p, "fp_add.reduced.ise", engine="jit")
        assert replay is not jit
        assert cached_runner(p, "fp_add.reduced.ise",
                             engine="jit") is jit
        assert evict_runner(p, "fp_add.reduced.ise", engine="jit")
        assert cached_runner(p, "fp_add.reduced.ise",
                             engine="jit") is not jit
        clear_runner_pool()

    def test_run_batch_rejects_wrong_arity(self, toy_params):
        kernels = build_all_kernels(toy_params.p)
        runner = KernelRunner(kernels["fp_add.reduced.ise"])
        with pytest.raises(KernelError, match="expects 2 operands"):
            runner.run_batch([(1, 2), (3,)])

    @pytest.mark.parametrize("engine", ["replay", "jit"])
    def test_batch_counters_match_looped_singles(self, toy_params,
                                                 rng, engine):
        """Identical kernel/machine run accounting, batch vs loop —
        plus one batch sample recording the batching itself."""
        from repro import telemetry

        kernels = build_all_kernels(toy_params.p)
        runner = KernelRunner(kernels["fp_add.reduced.ise"],
                              engine=engine)
        p = toy_params.p
        sets = [(rng.randrange(p), rng.randrange(p))
                for _ in range(6)]
        runner.run_batch(sets[:1])  # compile outside the captures

        def shared_counters(registry):
            return {
                name: samples
                for name, samples in registry.to_dict().items()
                if name in ("kernel_runs_total", "machine_runs_total",
                            "jit_cache_hits_total")
            }

        with telemetry.capture(fresh=True) as loop_cap:
            looped = [runner.run(*values) for values in sets]
        with telemetry.capture(fresh=True) as batch_cap:
            batched = runner.run_batch(sets)

        assert [r.value for r in batched] == [r.value for r in looped]
        assert shared_counters(loop_cap.registry) \
            == shared_counters(batch_cap.registry)
        batches = batch_cap.registry.counter("kernel_batches_total")
        assert batches.value(kernel="fp_add.reduced.ise",
                             engine=engine) == 1
        items = batch_cap.registry.counter("kernel_batch_items_total")
        assert items.value(kernel="fp_add.reduced.ise",
                           engine=engine) == len(sets)

    def test_checked_batch_takes_the_scalar_path(self, toy_params,
                                                 rng):
        """Hardened runners demote batches to per-item scalar runs so
        every safety check still fires."""
        clear_runner_pool()
        p = toy_params.p
        runner = cached_runner(p, "fp_add.reduced.ise", checked=True,
                               check_interval=1)
        sets = [(rng.randrange(p), rng.randrange(p))
                for _ in range(3)]
        runs = runner.run_batch(sets)
        assert [r.value for r in runs] \
            == [(a + b) % p for a, b in sets]
        clear_runner_pool()
