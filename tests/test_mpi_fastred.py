"""Tests for Algorithms 1 and 2 (fast modulo-p reduction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.mpi.fastred import (
    fast_reduce_addition_based,
    fast_reduce_subtraction,
    fast_reduce_swap_based,
)
from repro.mpi.representation import CSIDH512_FULL, CSIDH512_REDUCED


@pytest.fixture(params=["full", "reduced"])
def radix(request):
    return CSIDH512_FULL if request.param == "full" else CSIDH512_REDUCED


class TestBothAlgorithms:
    @settings(max_examples=30)
    @given(data=st.data())
    def test_agree_and_reduce(self, radix, p512, data):
        a = data.draw(st.integers(0, 2 * p512 - 1))
        la = radix.to_limbs(a)
        lp = radix.to_limbs(p512)
        r1 = fast_reduce_addition_based(radix, la, lp)
        r2 = fast_reduce_swap_based(radix, la, lp)
        assert r1.value == r2.value == a % p512

    def test_boundaries(self, radix, p512):
        lp = radix.to_limbs(p512)
        for a in (0, 1, p512 - 1, p512, p512 + 1, 2 * p512 - 1):
            la = radix.to_limbs(a)
            assert fast_reduce_addition_based(radix, la, lp).value \
                == a % p512
            assert fast_reduce_swap_based(radix, la, lp).value == a % p512

    def test_out_of_range_rejected(self, radix, p512):
        lp = radix.to_limbs(p512)
        with pytest.raises(ParameterError):
            fast_reduce_swap_based(radix, radix.to_limbs(2 * p512), lp)

    def test_noncanonical_input_rejected(self, p512):
        radix = CSIDH512_REDUCED
        lp = radix.to_limbs(p512)
        bad = [radix.mask + 1] + [0] * 8
        with pytest.raises(ParameterError):
            fast_reduce_swap_based(radix, bad, lp)

    def test_length_mismatch(self, radix, p512):
        with pytest.raises(ParameterError):
            fast_reduce_swap_based(radix, [0] * 3,
                                   radix.to_limbs(p512))


class TestWorkCounts:
    def test_swap_cheaper_in_carried_adds(self, p512):
        """Algorithm 2 avoids the carried addition of Algorithm 1 —
        the reason it wins on carry-flag-less RISC-V (Sect. 3.1)."""
        radix = CSIDH512_FULL
        la = radix.to_limbs(p512 + 12345)
        lp = radix.to_limbs(p512)
        add_work = fast_reduce_addition_based(radix, la, lp).work
        swap_work = fast_reduce_swap_based(radix, la, lp).work
        assert swap_work.word_adds < add_work.word_adds


class TestSubtractionVariant:
    @settings(max_examples=30)
    @given(data=st.data())
    def test_fp_subtraction(self, radix, p512, data):
        a = data.draw(st.integers(0, p512 - 1))
        b = data.draw(st.integers(0, p512 - 1))
        result = fast_reduce_subtraction(
            radix, radix.to_limbs(a), radix.to_limbs(b),
            radix.to_limbs(p512))
        assert result.value == (a - b) % p512

    def test_identical_operands(self, radix, p512):
        la = radix.to_limbs(12345)
        result = fast_reduce_subtraction(radix, la, la,
                                         radix.to_limbs(p512))
        assert result.value == 0
