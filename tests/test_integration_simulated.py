"""Integration: the complete stack executing on the simulated cores.

These tests run toy-CSIDH protocol computations where every field
operation is carried out by generated assembly on the RV64 simulator —
protocol -> isogeny -> curve -> field -> kernel -> custom instruction ->
pipeline, with zero stubs in between.
"""

from __future__ import annotations

import random

import pytest

from repro.csidh.group_action import group_action
from repro.csidh.montgomery import Curve, XPoint, ladder
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext
from repro.kernels.spec import ALL_VARIANTS


@pytest.fixture(scope="module")
def reference_action(toy_params):
    field = FieldContext(toy_params.p)
    return group_action(toy_params, field, 0, (1, -1, 1),
                        random.Random(0))


class TestSimulatedField:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_arithmetic_matches_python(self, toy_params, variant, rng):
        p = toy_params.p
        sim = SimulatedFieldContext(p, variant=variant)
        ref = FieldContext(p)
        for _ in range(6):
            a, b = rng.randrange(p), rng.randrange(p)
            assert sim.mul(a, b) == ref.mul(a, b)
            assert sim.sqr(a) == ref.sqr(a)
            assert sim.add(a, b) == ref.add(a, b)
            assert sim.sub(a, b) == ref.sub(a, b)

    def test_derived_ops_ride_on_kernels(self, toy_params):
        sim = SimulatedFieldContext(toy_params.p, variant="full.isa")
        value = sim.inv(7)
        assert (value * 7) % toy_params.p == 1
        assert sim.simulated_instructions > 1000  # Fermat ladder ran

    def test_instruction_accounting(self, toy_params):
        sim = SimulatedFieldContext(toy_params.p,
                                    variant="reduced.ise")
        before = sim.simulated_instructions
        sim.mul(3, 4)
        assert sim.simulated_instructions > before
        assert sim.simulated_cycles >= sim.simulated_instructions \
            * 0.5

    def test_counter_still_counts(self, toy_params):
        sim = SimulatedFieldContext(toy_params.p)
        sim.mul(2, 3)
        sim.add(2, 3)
        assert sim.counter.mul == 1
        assert sim.counter.add == 1


class TestSimulatedProtocol:
    @pytest.mark.parametrize("variant",
                             ["full.isa", "full.ise", "reduced.isa",
                              "reduced.ise"])
    def test_group_action_on_core(self, toy_params, variant,
                                  reference_action):
        sim = SimulatedFieldContext(toy_params.p, variant=variant)
        result = group_action(toy_params, sim, 0, (1, -1, 1),
                              random.Random(5))
        assert result == reference_action

    def test_ise_core_saves_cycles(self, toy_params):
        runs = {}
        for variant in ("full.isa", "reduced.ise"):
            sim = SimulatedFieldContext(toy_params.p, variant=variant)
            group_action(toy_params, sim, 0, (1, 0, 1),
                         random.Random(4))
            runs[variant] = sim.simulated_cycles
        assert runs["reduced.ise"] < runs["full.isa"]

    def test_ladder_on_core(self, toy_params):
        """x-only scalar multiplication entirely on the simulator."""
        p = toy_params.p
        sim = SimulatedFieldContext(p, variant="reduced.ise")
        ref = FieldContext(p)
        curve_sim = Curve.from_affine(sim, 0)
        curve_ref = Curve.from_affine(ref, 0)
        point = XPoint(9, 1)
        for k in (2, 3, 5, 17, 420):
            got = ladder(sim, k, point, curve_sim)
            want = ladder(ref, k, point, curve_ref)
            if want.is_infinity:
                assert got.is_infinity
            else:
                assert (got.X * want.Z - want.X * got.Z) % p == 0


class TestEngineTiers:
    """The jit tier and the batched entry points at field level."""

    def test_unknown_engine_rejected(self, toy_params):
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="unknown engine"):
            SimulatedFieldContext(toy_params.p, engine="turbo")

    def test_cross_check_conflicts_with_fast_engines(self, toy_params):
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="cross_check"):
            SimulatedFieldContext(toy_params.p, cross_check=True,
                                  engine="jit")

    @pytest.mark.parametrize("engine",
                             ["interpreter", "replay", "jit"])
    def test_group_action_identical_across_engines(self, toy_params,
                                                   reference_action,
                                                   engine):
        field = SimulatedFieldContext(toy_params.p, engine=engine)
        assert group_action(toy_params, field, 0, (1, -1, 1),
                            random.Random(0)) == reference_action

    @pytest.mark.parametrize("engine",
                             ["interpreter", "replay", "jit"])
    def test_batch_entry_points_match_reference(self, toy_params,
                                                engine):
        p = toy_params.p
        context = SimulatedFieldContext(p, engine=engine)
        reference = FieldContext(p)
        rng = random.Random(13)
        pairs = [(rng.randrange(p), rng.randrange(p))
                 for _ in range(9)]
        values = [rng.randrange(p) for _ in range(9)]
        assert context.mul_batch(pairs) \
            == [reference.mul(a, b) for a, b in pairs]
        assert context.sqr_batch(values) \
            == [reference.sqr(a) for a in values]
        assert context.add_batch(pairs) \
            == [reference.add(a, b) for a, b in pairs]
        assert context.sub_batch(pairs) \
            == [reference.sub(a, b) for a, b in pairs]

    def test_batch_counts_operations_like_the_scalar_api(self,
                                                         toy_params):
        p = toy_params.p
        context = SimulatedFieldContext(p, engine="jit")
        pairs = [(3, 5), (7, 11), (13, 17)]
        before = context.counter.mul
        context.mul_batch(pairs)
        assert context.counter.mul - before == len(pairs)

    def test_checked_context_batches_stay_verified(self, toy_params):
        p = toy_params.p
        context = SimulatedFieldContext(p, checked=True,
                                        check_interval=1)
        reference = FieldContext(p)
        pairs = [(3, 5), (p - 1, p - 2)]
        assert context.mul_batch(pairs) \
            == [reference.mul(a, b) for a, b in pairs]
