"""Test helpers: run assembly snippets on a fresh machine."""

from __future__ import annotations

from repro.core.ise import EXTENDED_ISA
from repro.rv64.assembler import assemble
from repro.rv64.isa import InstructionSet
from repro.rv64.machine import ExecutionResult, Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel


def run_asm(
    source: str,
    regs: dict[str, int] | None = None,
    mem: dict[int, int] | None = None,
    *,
    isa: InstructionSet = EXTENDED_ISA,
    pipeline: PipelineConfig | None = None,
    append_ret: bool = True,
) -> Machine:
    """Assemble *source*, preload registers/memory words, run, return
    the machine (inspect ``.regs`` / ``.mem`` afterwards)."""
    if append_ret and "ret" not in source:
        source = source.rstrip("\n") + "\nret\n"
    machine = Machine(
        isa,
        pipeline=PipelineModel(pipeline) if pipeline else None,
    )
    entry = machine.load_program(assemble(source, isa))
    for name, value in (regs or {}).items():
        machine.regs[name] = value
    for address, value in (mem or {}).items():
        machine.mem.store_u64(address, value)
    machine.last_result = machine.run(entry)  # type: ignore[attr-defined]
    return machine


def result_of(machine: Machine) -> ExecutionResult:
    return machine.last_result  # type: ignore[attr-defined]
