"""Test helpers: run assembly snippets; operand strategies for kernels."""

from __future__ import annotations

from repro.core.ise import EXTENDED_ISA
from repro.kernels.spec import (
    Kernel,
    OP_FAST_REDUCE,
    OP_FAST_REDUCE_ADD,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
    OP_INT_MUL,
    OP_INT_MUL_OS,
    OP_INT_SQR,
    OP_MONT_REDC,
)
from repro.rv64.assembler import assemble
from repro.rv64.isa import InstructionSet
from repro.rv64.machine import ExecutionResult, Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel


def run_asm(
    source: str,
    regs: dict[str, int] | None = None,
    mem: dict[int, int] | None = None,
    *,
    isa: InstructionSet = EXTENDED_ISA,
    pipeline: PipelineConfig | None = None,
    append_ret: bool = True,
) -> Machine:
    """Assemble *source*, preload registers/memory words, run, return
    the machine (inspect ``.regs`` / ``.mem`` afterwards)."""
    if append_ret and "ret" not in source:
        source = source.rstrip("\n") + "\nret\n"
    machine = Machine(
        isa,
        pipeline=PipelineModel(pipeline) if pipeline else None,
    )
    entry = machine.load_program(assemble(source, isa))
    for name, value in (regs or {}).items():
        machine.regs[name] = value
    for address, value in (mem or {}).items():
        machine.mem.store_u64(address, value)
    machine.last_result = machine.run(entry)  # type: ignore[attr-defined]
    return machine


def result_of(machine: Machine) -> ExecutionResult:
    return machine.last_result  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Operand strategies for kernel-level property testing
# ---------------------------------------------------------------------------

def operand_bounds(kernel: Kernel) -> tuple[int, ...]:
    """Exclusive upper bound of each operand in *kernel*'s reference
    domain (mirrors the registry's seeded samplers)."""
    ctx = kernel.context
    p = ctx.modulus
    operation = kernel.operation
    if operation in (OP_INT_MUL, OP_INT_MUL_OS, OP_FP_ADD, OP_FP_SUB,
                     OP_FP_MUL):
        return (p, p)
    if operation in (OP_INT_SQR, OP_FP_SQR):
        return (p,)
    if operation == OP_MONT_REDC:
        # the real workload: double-width products of field elements
        return ((p - 1) * (p - 1) + 1,)
    if operation in (OP_FAST_REDUCE, OP_FAST_REDUCE_ADD):
        return (min(2 * p, 1 << ctx.radix.capacity_bits),)
    raise ValueError(f"unknown operation {operation!r}")


def boundary_operand_values(kernel: Kernel, *,
                            clip_to_domain: bool = True):
    """Per-operand boundary values: 0, 1, p-1, all-ones limb vectors.

    With ``clip_to_domain`` the all-ones vector is capped at the
    operand's reference domain so golden-reference checks stay valid;
    without it the raw vector is kept (useful for differential tests,
    which only compare two execution paths against each other).
    """
    radix = kernel.context.radix
    p = kernel.context.modulus
    per_operand = []
    for hi, limbs in zip(operand_bounds(kernel), kernel.input_limbs):
        all_ones = radix.from_limbs([radix.mask] * limbs)
        candidates = {0, 1, p - 1, all_ones}
        if clip_to_domain:
            candidates = {min(c, hi - 1) for c in candidates}
        per_operand.append(tuple(sorted(candidates)))
    return tuple(per_operand)


def kernel_operands(kernel: Kernel, *, boundary_bias: bool = True):
    """Hypothesis strategy over valid operand tuples for *kernel*.

    Draws uniformly from the operand's reference domain, with (by
    default) extra weight on the boundary values where carry chains and
    conditional subtractions earn their keep.
    """
    from hypothesis import strategies as st

    per_operand = []
    for hi, boundary in zip(operand_bounds(kernel),
                            boundary_operand_values(kernel)):
        uniform = st.integers(min_value=0, max_value=hi - 1)
        if boundary_bias:
            per_operand.append(
                st.one_of(uniform, st.sampled_from(boundary)))
        else:
            per_operand.append(uniform)
    return st.tuples(*per_operand)
