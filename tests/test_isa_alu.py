"""Semantics tests for the RV64I integer instructions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.rv64.bits import MASK64, s64, u64
from tests.helpers import run_asm

U64 = st.integers(min_value=0, max_value=MASK64)


class TestArithmetic:
    @given(U64, U64)
    def test_add_wraps(self, a, b):
        m = run_asm("add a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == u64(a + b)

    @given(U64, U64)
    def test_sub_wraps(self, a, b):
        m = run_asm("sub a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == u64(a - b)

    def test_addi_negative(self):
        m = run_asm("addi a0, a1, -5", {"a1": 3})
        assert m.regs["a0"] == u64(-2)

    def test_addiw_sign_extends(self):
        m = run_asm("addiw a0, a1, 1", {"a1": 0x7FFFFFFF})
        assert m.regs["a0"] == u64(-(1 << 31))

    def test_addw_subw(self):
        m = run_asm("addw a0, a1, a2\nsubw a3, a1, a2",
                    {"a1": 0xFFFFFFFF, "a2": 1})
        assert m.regs["a0"] == 0       # 0x100000000 wraps to 32-bit 0
        assert m.regs["a3"] == u64(-2)  # s32(0xFFFFFFFE) sign-extended


class TestComparisons:
    @given(U64, U64)
    def test_sltu(self, a, b):
        m = run_asm("sltu a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == int(a < b)

    @given(U64, U64)
    def test_slt_signed(self, a, b):
        m = run_asm("slt a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == int(s64(a) < s64(b))

    def test_sltiu_one_is_seqz(self):
        assert run_asm("sltiu a0, a1, 1", {"a1": 0}).regs["a0"] == 1
        assert run_asm("sltiu a0, a1, 1", {"a1": 5}).regs["a0"] == 0

    def test_slti_negative_bound(self):
        m = run_asm("slti a0, a1, -1", {"a1": u64(-2)})
        assert m.regs["a0"] == 1


class TestLogic:
    @given(U64, U64)
    def test_xor_or_and(self, a, b):
        m = run_asm(
            "xor a0, a1, a2\nor a3, a1, a2\nand a4, a1, a2",
            {"a1": a, "a2": b},
        )
        assert m.regs["a0"] == a ^ b
        assert m.regs["a3"] == a | b
        assert m.regs["a4"] == a & b

    def test_immediates_sign_extend(self):
        m = run_asm("andi a0, a1, -1\nori a2, zero, -1",
                    {"a1": 0x1234})
        assert m.regs["a0"] == 0x1234
        assert m.regs["a2"] == MASK64


class TestShifts:
    @given(U64, st.integers(0, 63))
    def test_slli_srli(self, a, sh):
        m = run_asm(f"slli a0, a1, {sh}\nsrli a2, a1, {sh}", {"a1": a})
        assert m.regs["a0"] == u64(a << sh)
        assert m.regs["a2"] == a >> sh

    @given(U64, st.integers(0, 63))
    def test_srai(self, a, sh):
        m = run_asm(f"srai a0, a1, {sh}", {"a1": a})
        assert m.regs["a0"] == u64(s64(a) >> sh)

    @given(U64, U64)
    def test_register_shifts_use_low_6_bits(self, a, b):
        m = run_asm("sll a0, a1, a2\nsrl a3, a1, a2",
                    {"a1": a, "a2": b})
        assert m.regs["a0"] == u64(a << (b & 63))
        assert m.regs["a3"] == a >> (b & 63)

    def test_word_shifts(self):
        m = run_asm("slliw a0, a1, 4\nsrliw a2, a1, 4\nsraiw a3, a1, 4",
                    {"a1": 0x80000000})
        assert m.regs["a0"] == 0  # 0x800000000 truncated to 32 -> 0
        assert m.regs["a2"] == 0x08000000
        assert m.regs["a3"] == u64(-0x8000000)


class TestUpperImmediates:
    def test_lui_sign_extends(self):
        m = run_asm("lui a0, 0x80000")
        assert m.regs["a0"] == u64(-(1 << 31))

    def test_lui_positive(self):
        m = run_asm("lui a0, 0x12345")
        assert m.regs["a0"] == 0x12345000

    def test_auipc(self):
        m = run_asm("auipc a0, 1")  # pc = 0x1000 at first instruction
        assert m.regs["a0"] == 0x1000 + 0x1000


class TestLoadsStores:
    def test_ld_sd(self):
        m = run_asm("ld a0, 0(a1)\nsd a0, 8(a1)",
                    {"a1": 0x9000}, {0x9000: 0xDEADBEEF12345678})
        assert m.mem.load_u64(0x9008) == 0xDEADBEEF12345678

    def test_lw_sign_extends(self):
        m = run_asm("lw a0, 0(a1)", {"a1": 0x9000},
                    {0x9000: 0x00000000_FFFFFFFF})
        assert m.regs["a0"] == MASK64

    def test_lwu_zero_extends(self):
        m = run_asm("lwu a0, 0(a1)", {"a1": 0x9000},
                    {0x9000: 0x00000000_FFFFFFFF})
        assert m.regs["a0"] == 0xFFFFFFFF

    def test_lb_lbu(self):
        m = run_asm("lb a0, 0(a1)\nlbu a2, 0(a1)", {"a1": 0x9000},
                    {0x9000: 0x80})
        assert m.regs["a0"] == u64(-128)
        assert m.regs["a2"] == 0x80

    def test_lh_lhu_sh(self):
        m = run_asm("sh a2, 0(a1)\nlh a0, 0(a1)\nlhu a3, 0(a1)",
                    {"a1": 0x9000, "a2": 0xFFFF})
        assert m.regs["a0"] == MASK64
        assert m.regs["a3"] == 0xFFFF

    def test_negative_offset(self):
        m = run_asm("sd a2, -8(a1)", {"a1": 0x9010, "a2": 77})
        assert m.mem.load_u64(0x9008) == 77


class TestPseudoInstructions:
    def test_mv_not_neg(self):
        m = run_asm("mv a0, a1\nnot a2, a1\nneg a3, a1", {"a1": 5})
        assert m.regs["a0"] == 5
        assert m.regs["a2"] == u64(~5)
        assert m.regs["a3"] == u64(-5)

    def test_seqz_snez(self):
        m = run_asm("seqz a0, a1\nsnez a2, a1", {"a1": 0})
        assert (m.regs["a0"], m.regs["a2"]) == (1, 0)

    @pytest.mark.parametrize("value", [
        0, 1, -1, 2047, -2048, 2048, 0x7FFFFFFF, -0x80000000,
        0x123456789ABCDEF0, (1 << 57) - 1, (1 << 64) - 1,
        0x8000000000000000,
    ])
    def test_li_exact(self, value):
        m = run_asm(f"li a0, {value}")
        assert m.regs["a0"] == u64(value)
