"""Tests for per-request trace contexts and the trace exporters.

The request/batch machinery (``repro.telemetry.tracing``) extends the
span tree with per-request subtrees; these tests pin its concurrency
contract (request nodes never nest under each other on the event-loop
thread, executor threads join via ``activate``), the exporter
exactness (collapsed stacks sum to the forest total; the Chrome
document carries both a wall-clock and a cycles process) and the
snapshot round trip behind the ``trace_export`` wire op.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import telemetry
from repro.errors import ReproError
from repro.telemetry import Tracer, tracing
from repro.telemetry.spans import ACTIVE_TRACE


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


class TestRequestTrace:
    def test_creates_indexed_node_under_root(self):
        with telemetry.capture() as cap:
            with tracing.request_trace("keygen", "tenant-0") as ctx:
                with tracing.activate(ctx):
                    telemetry.record_kernel_run("fp_mul", "jit", 120, 0)
        assert ctx.status == "ok"
        assert ctx.node is not None
        assert ctx.node.labels == (
            ("op", "keygen"), ("tenant", "tenant-0"),
            ("trace", ctx.trace_id))
        assert cap.tracer.traces[ctx.trace_id] is ctx
        assert ctx.node.count == 1
        assert ctx.node.wall_s > 0
        assert ctx.node.start_epoch == ctx.start_epoch
        assert ctx.node.total_cycles == 120

    def test_caller_supplied_trace_id_wins(self):
        with telemetry.capture():
            with tracing.request_trace(
                    "exchange", trace_id="cafe0123") as ctx:
                pass
        assert ctx.trace_id == "cafe0123"

    def test_disabled_yields_nodeless_context(self):
        with tracing.request_trace("keygen", "tenant-0") as ctx:
            # ids still flow for the wire protocol...
            assert len(ctx.trace_id) == 16
            assert ctx.node is None
            # ...but nothing downstream sees an active trace.
            assert tracing.current_trace() is None
        assert telemetry.TRACER.traces == {}

    def test_error_sets_status_and_stable_code(self):
        class Boom(ReproError):
            code = "kernel"

        with telemetry.capture():
            with pytest.raises(Boom):
                with tracing.request_trace("verify") as ctx:
                    raise Boom("bad")
        assert ctx.status == "error"
        assert ctx.error_code == "kernel"

    def test_concurrent_requests_stay_siblings(self):
        """Request nodes must not nest even when opened while another
        request's contextvar is active (interleaved asyncio tasks)."""
        with telemetry.capture() as cap:
            with tracing.request_trace("keygen") as outer:
                with tracing.request_trace("exchange") as inner:
                    pass
            roots = [node for node in
                     cap.tracer.root.children.values()]
        assert outer.node in roots and inner.node in roots
        assert not outer.node.children

    def test_active_trace_var_scoped_to_block(self):
        with telemetry.capture():
            assert tracing.current_trace() is None
            with tracing.request_trace("keygen") as ctx:
                assert tracing.current_trace() is ctx
            assert tracing.current_trace() is None


class TestActivate:
    def test_executor_thread_attributes_under_request(self):
        """The service's worker-thread path: the contextvar does not
        cross run_in_executor, so the thread re-activates explicitly
        and kernel cycles must land under the request node."""
        with telemetry.capture() as cap:
            with tracing.request_trace("exchange", "t0") as ctx:
                def work() -> None:
                    with tracing.activate(ctx):
                        with telemetry.span("execute", engine="jit"):
                            telemetry.record_kernel_run("fp_mul", "jit", 700, 0)
                worker = threading.Thread(target=work)
                worker.start()
                worker.join()
        assert ctx.node.total_cycles == 700
        execute = ctx.node.find("execute", engine="jit")
        kernel = execute.find("kernel", engine="jit", kernel="fp_mul")
        assert kernel.self_cycles == 700
        # The worker adopted the node without double-booking it.
        assert ctx.node.count == 1
        root = cap.tracer.root
        assert root.total_cycles == 700

    def test_activate_none_is_noop(self):
        with tracing.activate(None) as ctx:
            assert ctx is None

    def test_cycles_without_trace_keep_old_attribution(self):
        """add_kernel_cycles degrades to add_cycles: profile trees
        (no request context) are byte-identical to pre-tracing runs."""
        with telemetry.capture() as cap:
            with telemetry.span("group_action"):
                telemetry.record_kernel_run("fp_mul", "jit", 55, 0)
            node = cap.root.find("group_action")
        assert node.self_cycles == 55
        assert not any(child.name == "kernel"
                       for child in node.children.values())

    def test_cycles_with_trace_land_in_kernel_child(self):
        with telemetry.capture():
            with tracing.request_trace("field_op") as ctx:
                with tracing.activate(ctx):
                    telemetry.record_kernel_run("fp_add", "replay", 9, 0)
                    telemetry.record_kernel_run("fp_add", "replay", 9, 0)
        kernel = ctx.node.find("kernel", engine="replay",
                               kernel="fp_add")
        assert kernel.self_cycles == 18
        assert kernel.count == 2


class TestBatch:
    def test_batch_reachable_from_every_member(self):
        with telemetry.capture() as cap:
            with tracing.request_trace("field_op", "t0") as a:
                pass
            with tracing.request_trace("field_op", "t1") as b:
                pass
            batch = tracing.begin_batch(
                "mul", [(a, 0.001), (b, 0.002), (None, 0.003)])
            with tracing.using(batch):
                # The coalescer's flush coroutine sets the contextvar
                # (`using`); the executor thread then adopts the node
                # (`activate`) exactly like a request.
                assert tracing.current_trace() is batch
                with tracing.activate(batch):
                    telemetry.record_kernel_run("fp_mul", "jit", 40, 0)
            tracing.finish_batch(batch, 0.5)
        assert batch.member_ids == (a.trace_id, b.trace_id)
        assert a.batch_ids == [batch.trace_id]
        assert b.batch_ids == [batch.trace_id]
        assert batch.status == "ok"
        assert batch.node.wall_s == 0.5
        # Cycles land once, on the batch — never per member.
        assert batch.node.total_cycles == 40
        assert a.node.total_cycles == 0
        link = a.node.find("coalesced", batch=batch.trace_id)
        assert link.count == 1 and link.total_cycles == 0
        wait = a.node.find("coalesce.wait")
        assert wait.wall_s == pytest.approx(0.001)
        assert cap.tracer.batches[batch.trace_id] is batch

    def test_disabled_begin_batch_returns_none(self):
        assert tracing.begin_batch("mul", [(None, 0.0)]) is None
        tracing.finish_batch(None, 1.0)  # must not raise


class TestIndexAndClear:
    def test_index_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_INDEXED_TRACES", 3)
        with telemetry.capture() as cap:
            ids = []
            for _ in range(5):
                with tracing.request_trace("keygen") as ctx:
                    pass
                ids.append(ctx.trace_id)
            assert list(cap.tracer.traces) == ids[-3:]
            # Evicted contexts keep their span nodes until clear.
            requests = [n for n in cap.tracer.root.children.values()
                        if n.name == "request"]
            assert len(requests) == 5

    def test_clear_traces_drops_subtrees_keeps_others(self):
        with telemetry.capture() as cap:
            with telemetry.span("group_action"):
                telemetry.record_kernel_run("fp_mul", "jit", 5, 0)
            with tracing.request_trace("keygen") as ctx:
                telemetry.record_kernel_run("fp_mul", "jit", 7, 0)
            batch = tracing.begin_batch("mul", [(ctx, 0.0)])
            tracing.finish_batch(batch, 0.1)
            dropped = tracing.clear_traces(cap.tracer)
            assert dropped == 2
            assert cap.tracer.traces == {}
            assert cap.tracer.batches == {}
            assert cap.root.find("group_action").self_cycles == 5
            assert not any(n.name in ("request", "batch")
                           for n in cap.root.children.values())


class TestSnapshotDocument:
    def _populate(self):
        with tracing.request_trace("keygen", "t0") as a:
            with tracing.activate(a):
                telemetry.record_kernel_run("fp_mul", "jit", 100, 0)
        with tracing.request_trace("exchange", "t1") as b:
            with tracing.activate(b):
                telemetry.record_kernel_run("fp_add", "jit", 30, 0)
        batch = tracing.begin_batch("mul", [(a, 0.0)])
        tracing.finish_batch(batch, 0.2)
        return a, b, batch

    def test_round_trip_preserves_cycles(self):
        with telemetry.capture() as cap:
            self._populate()
            document = tracing.snapshot_document(cap.tracer)
            total = cap.root.total_cycles
        assert document["enabled"]
        assert len(document["traces"]) == 2
        assert len(document["batches"]) == 1
        json.dumps(document)  # must be wire-serializable
        root = tracing.document_to_root(document)
        assert root.total_cycles == total

    def test_filters_restrict_traces_and_batches(self):
        with telemetry.capture() as cap:
            a, b, batch = self._populate()
            by_tenant = tracing.snapshot_document(
                cap.tracer, tenant="t1")
            by_trace = tracing.snapshot_document(
                cap.tracer, trace_id=a.trace_id)
        assert [t["trace_id"] for t in by_tenant["traces"]] \
            == [b.trace_id]
        assert by_tenant["batches"] == []  # b joined no batch
        assert [t["trace_id"] for t in by_trace["traces"]] \
            == [a.trace_id]
        # a's batch rides along with a's trace.
        assert [t["trace_id"] for t in by_trace["batches"]] \
            == [batch.trace_id]

    def test_render_trace_summary_lists_rows(self):
        with telemetry.capture() as cap:
            a, b, _ = self._populate()
            document = tracing.snapshot_document(cap.tracer)
        text = tracing.render_trace_summary(document)
        assert a.trace_id in text and b.trace_id in text
        assert "keygen" in text and "batch" in text
        limited = tracing.render_trace_summary(document, limit=1)
        assert "(2 more)" in limited


class TestExporters:
    def _forest(self) -> Tracer:
        with tracing.request_trace("keygen", "t0") as ctx:
            def work() -> None:
                with tracing.activate(ctx):
                    with telemetry.span("execute", engine="jit"):
                        telemetry.record_kernel_run("fp_mul", "jit", 64, 0)
                        telemetry.record_kernel_run("fp_add", "jit", 16, 0)
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        return ctx

    def test_collapsed_sums_to_forest_total(self):
        with telemetry.capture() as cap:
            self._forest()
            root = cap.root
            collapsed = tracing.to_collapsed(root)
            expected_total = root.total_cycles
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in collapsed.strip().splitlines())
        assert total == expected_total == 80
        # Frames are flamegraph.pl-safe: no spaces, no semicolons
        # except as separators.
        frames = collapsed.strip().splitlines()[0].rsplit(" ", 1)[0]
        assert " " not in frames

    def test_chrome_trace_dual_process_layout(self):
        with telemetry.capture() as cap:
            ctx = self._forest()
            document = tracing.to_chrome_trace(cap.root)
        events = document["traceEvents"]
        json.dumps(document)
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in meta} == {1, 2}
        # The request appears in both the wall and the cycles process.
        request = [e for e in slices
                   if e["name"] == ctx.node.label]
        assert {e["pid"] for e in request} == {1, 2}
        cycles_req = next(e for e in request if e["pid"] == 2)
        assert cycles_req["dur"] == 80
        # Children pack left-to-right without exceeding the parent.
        kernels = [e for e in slices if e["pid"] == 2
                   and e["cat"] == "kernel"]
        assert sum(e["dur"] for e in kernels) == 80
        assert document["otherData"]["total_cycles"] == 80

    def test_wall_events_anchor_at_earliest_epoch(self):
        with telemetry.capture() as cap:
            self._forest()
            document = tracing.to_chrome_trace(cap.root)
        wall = [e for e in document["traceEvents"]
                if e["ph"] == "X" and e["pid"] == 1]
        assert min(e["ts"] for e in wall) == 0.0

    def test_summarize_root_counts_and_ranks(self):
        with telemetry.capture() as cap:
            self._forest()
            summary = tracing.summarize_root(cap.root)
        assert summary["requests"] == 1
        assert summary["batches"] == 0
        assert summary["total_cycles"] == 80
        assert [k["kernel"] for k in summary["top_kernels"]] \
            == ["fp_mul", "fp_add"]
