"""Tests for the evaluation harness: Tables 3/4 regeneration and the
shape claims of the paper."""

from __future__ import annotations

import pytest

from repro.eval.groupaction import compose_group_action
from repro.eval.paperdata import PAPER_TABLE4
from repro.eval.table3 import (
    measure_table3,
    model_matches_paper,
    overhead_summary,
    render_table3,
)
from repro.eval.table4 import measure_table4, render_table4
from repro.csidh.opcount import average_group_action_profile
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS


@pytest.fixture(scope="module")
def table4(p512):
    return measure_table4(p512)


@pytest.fixture(scope="module")
def ga_result(table4, mini_params):
    # mini params keep this test fast; the variant *ordering* is what
    # matters and it is driven by the per-op costs, not the key size
    profile = average_group_action_profile(mini_params, keys=2, seed=3)
    return compose_group_action(table4, profile)


class TestTable3:
    def test_rows(self):
        rows = measure_table3()
        assert [r.key for r in rows] == ["base", "full", "reduced"]

    def test_matches_paper_within_tolerance(self):
        assert model_matches_paper(tolerance=0.15)

    def test_overhead_summary_structure(self):
        summary = overhead_summary()
        assert set(summary) == {"full", "reduced"}
        assert summary["full"]["dsps"] == 0.0

    def test_render_contains_paper_rows(self):
        text = render_table3()
        assert "base core" in text
        assert "4807" in text  # paper baseline visible for comparison


class TestTable4Shape:
    """The paper's qualitative claims, checked against *our* numbers."""

    def test_all_cells_measured(self, table4):
        for op in TABLE4_OPERATIONS:
            for variant in ALL_VARIANTS:
                assert table4.cycles[op][variant] > 0

    def test_full_beats_reduced_isa_only_mul(self, table4):
        """ISA-only: full radix wins multiplication, reduction and the
        composed Fp ops (Table 4 — note the paper's *integer squaring*
        row goes the other way thanks to the doubled-limb trick, which
        we reproduce below)."""
        for op in ("int_mul", "mont_redc", "fp_mul", "fp_sqr"):
            row = table4.cycles[op]
            assert row["full.isa"] < row["reduced.isa"], op

    def test_reduced_wins_isa_only_integer_squaring(self, table4):
        """Paper Table 4: 398 < 440 — reduced-radix ISA-only squaring
        beats full radix (58-bit doubled limbs halve the cross MACs)."""
        row = table4.cycles["int_sqr"]
        assert row["reduced.isa"] < row["full.isa"]

    def test_reduced_beats_full_isa_only_add(self, table4):
        """ISA-only: reduced radix wins Fp-addition (delayed carries)."""
        row = table4.cycles["fp_add"]
        assert row["reduced.isa"] < row["full.isa"]

    def test_ise_reverses_the_radix_choice(self, table4):
        """With ISEs the reduced radix becomes the faster option for
        multiplication/squaring — the paper's central finding."""
        for op in ("int_mul", "int_sqr", "fp_mul", "fp_sqr",
                   "mont_redc"):
            row = table4.cycles[op]
            assert row["reduced.ise"] < row["full.ise"], op

    def test_ise_always_helps(self, table4):
        for op in TABLE4_OPERATIONS:
            row = table4.cycles[op]
            assert row["full.ise"] <= row["full.isa"], op
            assert row["reduced.ise"] <= row["reduced.isa"], op

    def test_full_radix_addsub_unchanged_by_ise(self, table4):
        for op in ("fast_reduce", "fp_add", "fp_sub"):
            row = table4.cycles[op]
            assert row["full.ise"] == row["full.isa"], op

    def test_fp_mul_is_sum_of_parts(self, table4):
        """Fp-mul ~ int-mul + Montgomery reduction + fast reduction
        (the additive structure visible in the paper's Table 4)."""
        for variant in ALL_VARIANTS:
            parts = (table4.cycles["int_mul"][variant]
                     + table4.cycles["mont_redc"][variant]
                     + table4.cycles["fast_reduce"][variant])
            whole = table4.cycles["fp_mul"][variant]
            assert abs(whole - parts) / whole < 0.10, variant

    def test_within_2x_of_paper_absolute(self, table4):
        """Loose absolute sanity: every cell within 2x of the paper."""
        for op in TABLE4_OPERATIONS:
            for variant in ALL_VARIANTS:
                ours = table4.cycles[op][variant]
                paper = PAPER_TABLE4[op][variant]
                assert 0.5 < ours / paper < 2.0, (op, variant)

    def test_render(self, table4):
        text = render_table4(table4)
        assert "Fp-multiplication" in text
        assert "(paper)" in text


class TestGroupActionComposition:
    def test_speedup_ordering_matches_paper(self, ga_result):
        """reduced-ISE > full-ISE > full-ISA > reduced-ISA."""
        s = ga_result.speedup
        assert s["reduced.ise"] > s["full.ise"] > s["full.isa"] \
            > s["reduced.isa"]

    def test_baseline_is_unity(self, ga_result):
        assert ga_result.speedup["full.isa"] == pytest.approx(1.0)

    def test_headline_speedup_band(self, ga_result):
        """The 1.71x headline: we accept a generous band around it."""
        assert 1.4 < ga_result.speedup["reduced.ise"] < 2.1

    def test_reduced_isa_slower_than_baseline(self, ga_result):
        assert 0.8 < ga_result.speedup["reduced.isa"] < 1.0

    def test_summary_lines_render(self, ga_result):
        lines = ga_result.summary_lines()
        assert len(lines) == 5
        assert "reduced.ise" in lines[-1]


class TestCurveOpLayer:
    """E16-style intermediate layer: curve-primitive cycle costs."""

    def test_recipes_match_implementation(self, toy_params):
        from repro.eval.curveops import (
            verify_recipes_against_implementation,
        )

        assert verify_recipes_against_implementation(toy_params.p)

    def test_costs_ordering(self, table4):
        from repro.eval.curveops import curve_op_costs

        costs = curve_op_costs(table4)
        for op in ("xDBL", "xADD", "ladder_step"):
            row = costs.cycles[op]
            assert row["reduced.ise"] < row["full.ise"] \
                < row["full.isa"] < row["reduced.isa"], op

    def test_ladder_cost_scales_with_bits(self, table4):
        from repro.eval.curveops import curve_op_costs

        costs = curve_op_costs(table4)
        assert costs.ladder_cost("full.isa", 512) \
            == 2 * costs.ladder_cost("full.isa", 256)

    def test_ladder_dominates_group_action_estimate(self, table4,
                                                    csidh512_params):
        """A 511-bit ladder is ~10M cycles; a dozen rounds of ladders
        plus isogenies lands in the CSIDH-512 group action's ballpark —
        a consistency check between the analytic layers."""
        from repro.csidh.opcount import count_group_action
        from repro.eval.curveops import curve_op_costs
        from repro.eval.groupaction import compose_group_action
        import random

        profile = count_group_action(
            csidh512_params,
            csidh512_params.sample_private_key(random.Random(1)),
            seed=2)
        result = compose_group_action(table4, profile)
        costs = curve_op_costs(table4)
        one_ladder = costs.ladder_cost("full.isa", 511)
        assert one_ladder * 5 < result.cycles["full.isa"] \
            < one_ladder * 200

    def test_render(self, table4):
        from repro.eval.curveops import curve_op_costs

        text = curve_op_costs(table4).render()
        assert "xDBL" in text and "ladder_step" in text
