"""The package-wide exception contract.

Walks every module under ``repro`` and asserts that every exception
class defined anywhere in the package derives from
:class:`repro.errors.ReproError` and carries a stable, unique,
machine-readable ``code`` string.  New subsystems must extend the
hierarchy in ``errors.py`` (or subclass within it, like
:class:`~repro.rv64.replay.ReplayError`) — they cannot fork their own
exception bases, and they cannot reuse another failure mode's code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


def _package_exception_classes() -> list[type]:
    seen: dict[str, type] = {}
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        module = importlib.import_module(info.name)
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (issubclass(obj, BaseException)
                    and obj.__module__.startswith("repro")):
                seen[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return [seen[key] for key in sorted(seen)]


EXCEPTIONS = _package_exception_classes()


def test_walk_found_the_hierarchy():
    # sanity: the walk actually discovered the package's exceptions
    assert errors.ReproError in EXCEPTIONS
    assert errors.FaultDetectedError in EXCEPTIONS
    names = {cls.__name__ for cls in EXCEPTIONS}
    assert {"ReplayError", "TelemetryError",
            "RecoveryExhaustedError"} <= names
    assert len(EXCEPTIONS) >= 12


@pytest.mark.parametrize(
    "cls", EXCEPTIONS,
    ids=[f"{cls.__module__}.{cls.__name__}" for cls in EXCEPTIONS])
def test_derives_from_repro_error(cls):
    assert issubclass(cls, errors.ReproError), (
        f"{cls.__module__}.{cls.__name__} forks its own exception "
        f"base; derive it from repro.errors.ReproError instead")


@pytest.mark.parametrize(
    "cls", EXCEPTIONS,
    ids=[f"{cls.__module__}.{cls.__name__}" for cls in EXCEPTIONS])
def test_has_stable_code(cls):
    code = cls.__dict__.get("code")  # own, not inherited
    assert isinstance(code, str) and code, (
        f"{cls.__name__} must define its own stable `code` string")
    assert code == code.lower()
    assert " " not in code


def test_codes_are_unique():
    codes: dict[str, str] = {}
    for cls in EXCEPTIONS:
        code = cls.code
        assert code not in codes, (
            f"{cls.__name__} reuses code {code!r} already taken by "
            f"{codes[code]}")
        codes[code] = cls.__name__


def test_fault_hierarchy_shape():
    """The recovery layer's contract: both detection and exhaustion
    are FaultErrors, catchable as one family at the API boundary."""
    assert issubclass(errors.FaultDetectedError, errors.FaultError)
    assert issubclass(errors.RecoveryExhaustedError, errors.FaultError)
    assert errors.FaultDetectedError.code == "fault_detected"
    assert errors.RecoveryExhaustedError.code == "recovery_exhausted"
