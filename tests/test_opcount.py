"""Tests for the instrumented op-count profiles (the cycle bridge)."""

from __future__ import annotations

import pytest

from repro.csidh.opcount import (
    average_group_action_profile,
    count_group_action,
)
from repro.field.counters import OpCosts


class TestCounting:
    def test_mini_action_counts(self, mini_params):
        key = (1, -1, 0, 2, 0, -1, 1)
        profile = count_group_action(mini_params, key, seed=3)
        ops = profile.ops
        # an action is dominated by Legendre/ladder work: muls and sqrs
        assert ops.mul > 100
        assert ops.sqr > 100
        assert ops.add > 0 and ops.sub > 0
        assert profile.stats.isogenies == sum(abs(e) for e in key)

    def test_reproducible(self, mini_params):
        key = (1, 0, 0, 0, 1, 0, -1)
        a = count_group_action(mini_params, key, seed=5)
        b = count_group_action(mini_params, key, seed=5)
        assert a.ops == b.ops

    def test_zero_key_costs_nothing(self, mini_params):
        profile = count_group_action(
            mini_params, (0,) * mini_params.num_primes, seed=1)
        assert profile.ops.total == 0

    def test_heavier_keys_cost_more(self, mini_params):
        m = mini_params.max_exponent
        light = count_group_action(
            mini_params, (1,) + (0,) * 6, seed=2)
        heavy = count_group_action(
            mini_params, (m,) * 7, seed=2)
        assert heavy.ops.mul > light.ops.mul


class TestAverageProfile:
    def test_average_over_keys(self, mini_params):
        profile = average_group_action_profile(mini_params, keys=3,
                                               seed=1)
        assert profile.actions == 3
        per_action = profile.per_action()
        assert per_action.mul * 3 <= profile.ops.mul + 3

    def test_cycles_composition_order(self, mini_params):
        """ISE costs below ISA costs must give fewer composed cycles."""
        profile = average_group_action_profile(mini_params, keys=2,
                                               seed=1)
        isa = OpCosts(fp_mul=1595, fp_sqr=1447, fp_add=143, fp_sub=128)
        ise = OpCosts(fp_mul=877, fp_sqr=769, fp_add=124, fp_sub=115)
        ops = profile.per_action()
        assert ops.cycles(ise) < ops.cycles(isa)

    def test_csidh512_scale(self, csidh512_params):
        """One real CSIDH-512 action: a few hundred thousand muls (the
        order of magnitude behind the paper's ~700M cycles)."""
        key = csidh512_params.sample_private_key(
            __import__("random").Random(0))
        profile = count_group_action(csidh512_params, key, seed=1)
        assert 100_000 < profile.ops.mul < 1_500_000
        assert 50_000 < profile.ops.sqr < 800_000
