"""Tests for the kernel builder and register pool."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernels.builder import (
    KERNEL_REGISTER_POOL,
    KernelBuilder,
    RegisterPool,
)


class TestRegisterPool:
    def test_excludes_reserved(self):
        pool = RegisterPool(reserved=("t0", "a1"))
        taken = [pool.take(f"r{i}") for i in range(pool.available)]
        assert "t0" not in taken
        assert "a1" not in taken

    def test_exhaustion_raises_with_context(self):
        pool = RegisterPool()
        for i in range(len(KERNEL_REGISTER_POOL)):
            pool.take(f"reg{i}")
        with pytest.raises(KernelError, match="exhausted"):
            pool.take("one-too-many")

    def test_release_and_reuse(self):
        pool = RegisterPool()
        reg = pool.take("x")
        pool.release(reg)
        assert pool.take("y") == reg  # LIFO reuse

    def test_release_unowned_raises(self):
        pool = RegisterPool()
        with pytest.raises(KernelError):
            pool.release("t0")

    def test_take_many_release_many(self):
        pool = RegisterPool()
        before = pool.available
        regs = pool.take_many(5, "batch")
        assert len(set(regs)) == 5
        pool.release_many(regs)
        assert pool.available == before

    def test_pool_excludes_abi_critical(self):
        assert "zero" not in KERNEL_REGISTER_POOL
        assert "ra" not in KERNEL_REGISTER_POOL
        assert "sp" not in KERNEL_REGISTER_POOL
        assert "a0" not in KERNEL_REGISTER_POOL

    def test_operand_pointers_allocated_last(self):
        pool = RegisterPool()
        order = [pool.take(str(i))
                 for i in range(len(KERNEL_REGISTER_POOL))]
        assert order[-2:] == ["a2", "a1"]


class TestKernelBuilder:
    def test_emit_counts_mnemonics(self):
        builder = KernelBuilder("t")
        builder.emit("add a0, a1, a2")
        builder.emit("add a0, a0, a0; sltu t0, a0, a1")
        assert builder.static_counts["add"] == 2
        assert builder.static_counts["sltu"] == 1
        assert builder.static_instructions == 3

    def test_comments_not_counted(self):
        builder = KernelBuilder("t")
        builder.comment("hello")
        builder.emit("nop")
        assert builder.static_instructions == 1
        assert "# hello" in builder.build()

    def test_build_has_header(self):
        builder = KernelBuilder("mykernel")
        builder.ret()
        text = builder.build()
        assert text.startswith("# kernel: mykernel")
        assert "ret" in text

    def test_emit_all(self):
        builder = KernelBuilder("t")
        builder.emit_all(["nop", "nop"])
        assert builder.static_counts["nop"] == 2

    def test_label(self):
        builder = KernelBuilder("t")
        builder.label("loop")
        builder.emit("j loop")
        assert "loop:" in builder.build()

    def test_load_immediate(self):
        builder = KernelBuilder("t")
        builder.load_immediate("t0", 42)
        assert builder.static_counts["li"] == 1

    def test_build_assembles(self):
        from repro.rv64.assembler import assemble
        from repro.rv64.isa import BASE_ISA

        builder = KernelBuilder("t")
        builder.emit("li t0, 123")
        builder.emit("add a0, t0, zero")
        builder.ret()
        program = assemble(builder.build(), BASE_ISA)
        assert len(program) >= 3
