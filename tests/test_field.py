"""Tests for the instrumented field context and counters."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.field.counters import CountingScope, OpCosts, OpCounter
from repro.field.fp import FieldContext

P = 19399379  # CSIDH-mini prime


@pytest.fixture()
def field():
    return FieldContext(P)


class TestArithmetic:
    @given(st.integers(0, P - 1), st.integers(0, P - 1))
    def test_add_sub_mul(self, a, b):
        field = FieldContext(P)
        assert field.add(a, b) == (a + b) % P
        assert field.sub(a, b) == (a - b) % P
        assert field.mul(a, b) == (a * b) % P

    @given(st.integers(0, P - 1))
    def test_sqr(self, a):
        assert FieldContext(P).sqr(a) == (a * a) % P

    @given(st.integers(1, P - 1))
    def test_inv(self, a):
        field = FieldContext(P)
        assert field.mul(field.inv(a), a) == 1

    def test_inv_zero_rejected(self, field):
        with pytest.raises(ParameterError):
            field.inv(0)

    @given(st.integers(0, P - 1), st.integers(0, 1000))
    def test_pow(self, base, exp):
        assert FieldContext(P).pow(base, exp) == pow(base, exp, P)

    def test_pow_negative_rejected(self, field):
        with pytest.raises(ParameterError):
            field.pow(2, -1)

    @given(st.integers(1, P - 1))
    def test_legendre_consistent_with_squares(self, a):
        field = FieldContext(P)
        assert field.legendre(field.sqr(a)) == 1

    def test_legendre_zero(self, field):
        assert field.legendre(0) == 0

    def test_legendre_nonsquare_exists(self, field):
        symbols = {field.legendre(a) for a in range(1, 50)}
        assert symbols == {1, -1}

    def test_even_characteristic_rejected(self):
        with pytest.raises(ParameterError):
            FieldContext(8)


class TestCounting:
    def test_primitives_counted(self, field):
        field.mul(2, 3)
        field.sqr(2)
        field.add(1, 1)
        field.sub(1, 1)
        c = field.counter
        assert (c.mul, c.sqr, c.add, c.sub) == (1, 1, 1, 1)

    def test_inv_decomposes_into_sqr_mul(self, field):
        field.counter.reset()
        field.inv(1234)
        assert field.counter.sqr > 20      # square-and-multiply ladder
        assert field.counter.mul > 0
        assert field.counter.add == 0

    def test_legendre_cost_scales_with_p(self):
        small = FieldContext(419)
        small.legendre(5)
        big = FieldContext(P)
        big.legendre(5)
        assert big.counter.sqr > small.counter.sqr

    def test_counting_scope(self, field):
        with CountingScope(field.counter) as scope:
            field.mul(3, 4)
            field.mul(3, 4)
        assert scope.delta.mul == 2
        field.mul(3, 4)
        assert scope.delta.mul == 2  # frozen after exit


class TestOpCounter:
    def test_arithmetic(self):
        a = OpCounter(1, 2, 3, 4)
        b = OpCounter(10, 20, 30, 40)
        assert (a + b).mul == 11
        assert (b - a).sub == 36
        assert a.total == 10

    def test_cycles_composition(self):
        counter = OpCounter(mul=100, sqr=50, add=10, sub=5)
        costs = OpCosts(fp_mul=1000, fp_sqr=800, fp_add=100, fp_sub=90)
        assert counter.cycles(costs) == \
            100 * 1000 + 50 * 800 + 10 * 100 + 5 * 90

    def test_from_mapping(self):
        costs = OpCosts.from_mapping(
            {"fp_mul": 1, "fp_sqr": 2, "fp_add": 3, "fp_sub": 4},
            label="x")
        assert (costs.fp_mul, costs.fp_sub) == (1, 4)

    def test_mul_equivalents(self):
        counter = OpCounter(mul=10, sqr=10, add=10, sub=10)
        assert counter.mul_equivalents == pytest.approx(10 + 8 + 2)

    def test_copy_independent(self):
        a = OpCounter(mul=1)
        b = a.copy()
        b.mul += 1
        assert a.mul == 1
