"""Semantics tests for the RV64M multiply/divide instructions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.rv64.bits import MASK64, s32, s64, u32, u64
from tests.helpers import run_asm

U64 = st.integers(min_value=0, max_value=MASK64)


class TestMultiply:
    @given(U64, U64)
    def test_mul_low(self, a, b):
        m = run_asm("mul a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == u64(a * b)

    @given(U64, U64)
    def test_mulhu(self, a, b):
        m = run_asm("mulhu a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == (a * b) >> 64

    @given(U64, U64)
    def test_mulh(self, a, b):
        m = run_asm("mulh a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == u64((s64(a) * s64(b)) >> 64)

    @given(U64, U64)
    def test_mulhsu(self, a, b):
        m = run_asm("mulhsu a0, a1, a2", {"a1": a, "a2": b})
        assert m.regs["a0"] == u64((s64(a) * b) >> 64)

    @given(U64, U64)
    def test_mul_mulhu_recompose(self, a, b):
        m = run_asm("mulhu a0, a1, a2\nmul a3, a1, a2",
                    {"a1": a, "a2": b})
        assert (m.regs["a0"] << 64) | m.regs["a3"] == a * b

    def test_mulw(self):
        m = run_asm("mulw a0, a1, a2",
                    {"a1": 0x80000000, "a2": 2})
        assert m.regs["a0"] == 0  # 2^32 wraps to 0 in 32 bits


class TestDivide:
    @given(U64, U64)
    def test_divu_remu(self, a, b):
        m = run_asm("divu a0, a1, a2\nremu a3, a1, a2",
                    {"a1": a, "a2": b})
        if b == 0:
            assert m.regs["a0"] == MASK64
            assert m.regs["a3"] == a
        else:
            assert m.regs["a0"] == a // b
            assert m.regs["a3"] == a % b

    @given(U64, U64)
    def test_div_rem_identity(self, a, b):
        m = run_asm("div a0, a1, a2\nrem a3, a1, a2",
                    {"a1": a, "a2": b})
        if b != 0:
            q, r = s64(m.regs["a0"]), s64(m.regs["a3"])
            assert u64(q * s64(b) + r) == a
            assert abs(r) < abs(s64(b)) or s64(b) == 0

    def test_div_rounds_toward_zero(self):
        m = run_asm("div a0, a1, a2", {"a1": u64(-7), "a2": 2})
        assert s64(m.regs["a0"]) == -3

    def test_div_overflow_case(self):
        m = run_asm("div a0, a1, a2\nrem a3, a1, a2",
                    {"a1": 1 << 63, "a2": MASK64})  # INT_MIN / -1
        assert m.regs["a0"] == 1 << 63
        assert m.regs["a3"] == 0

    def test_div_by_zero(self):
        m = run_asm("div a0, a1, zero\nrem a3, a1, zero", {"a1": 5})
        assert m.regs["a0"] == MASK64
        assert m.regs["a3"] == 5

    @pytest.mark.parametrize("a,b,quot,rem", [
        (7, 2, 3, 1),
        (0x80000000, 1, -0x80000000, 0),        # divw sign extension
    ])
    def test_divw_remw(self, a, b, quot, rem):
        m = run_asm("divw a0, a1, a2\nremw a3, a1, a2",
                    {"a1": a, "a2": b})
        assert s64(m.regs["a0"]) == quot
        assert s64(m.regs["a3"]) == rem

    def test_divuw_zero(self):
        m = run_asm("divuw a0, a1, zero", {"a1": 4})
        assert m.regs["a0"] == MASK64

    @given(U64, U64)
    def test_divuw_matches(self, a, b):
        m = run_asm("divuw a0, a1, a2\nremuw a3, a1, a2",
                    {"a1": a, "a2": b})
        ua, ub = u32(a), u32(b)
        if ub:
            assert m.regs["a0"] == u64(s32(ua // ub))
            assert m.regs["a3"] == u64(s32(ua % ub))
