"""Tests for the CSIDH key-exchange protocol layer."""

from __future__ import annotations

import pytest

from repro.csidh.protocol import (
    BASE_COEFFICIENT,
    Csidh,
    PrivateKey,
    PublicKey,
    key_exchange_demo,
)
from repro.errors import ProtocolError


class TestKeyGeneration:
    def test_private_key_in_bounds(self, mini_params):
        party = Csidh(mini_params, seed=1)
        private = party.generate_private_key()
        m = mini_params.max_exponent
        assert len(private.exponents) == mini_params.num_primes
        assert all(-m <= e <= m for e in private.exponents)

    def test_seeded_keygen_reproducible(self, mini_params):
        k1 = Csidh(mini_params, seed=5).generate_private_key()
        k2 = Csidh(mini_params, seed=5).generate_private_key()
        assert k1 == k2

    def test_public_key_is_supersingular_coefficient(self, mini_params):
        from repro.csidh.validate import is_supersingular
        import random
        party = Csidh(mini_params, seed=2)
        _, public = party.keygen()
        assert is_supersingular(mini_params, party.field,
                                public.coefficient, random.Random(0))

    def test_public_key_deterministic_in_private(self, mini_params):
        private = PrivateKey((1, 0, -1, 2, 0, 1, -2))
        pub1 = Csidh(mini_params, seed=1).public_key(private)
        pub2 = Csidh(mini_params, seed=77).public_key(private)
        assert pub1 == pub2


class TestKeyExchange:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_shared_secrets_agree_toy(self, toy_params, seed):
        a, b = key_exchange_demo(toy_params, seed=seed)
        assert a == b

    def test_shared_secrets_agree_mini(self, mini_params):
        a, b = key_exchange_demo(mini_params, seed=4)
        assert a == b

    def test_different_keys_different_secrets(self, mini_params):
        alice = Csidh(mini_params, seed=1)
        bob = Csidh(mini_params, seed=2)
        eve = Csidh(mini_params, seed=3)
        a_priv, a_pub = alice.keygen()
        b_priv, b_pub = bob.keygen()
        e_priv, _ = eve.keygen()
        honest = alice.shared_secret(a_priv, b_pub)
        eavesdropped = eve.shared_secret(e_priv, b_pub)
        assert honest != eavesdropped

    def test_invalid_public_key_rejected(self, mini_params):
        party = Csidh(mini_params, seed=1)
        private = party.generate_private_key()
        # A = 2 is a singular curve; definitely not a valid key
        with pytest.raises(ProtocolError):
            party.shared_secret(private, PublicKey(2))

    def test_validation_can_be_skipped(self, toy_params):
        party = Csidh(toy_params, seed=1)
        private, public = party.keygen()
        # self-exchange, skipping validation
        secret = party.shared_secret(private, public, validate=False)
        assert isinstance(secret, int)


class TestSerialisation:
    def test_public_key_roundtrip(self, mini_params):
        public = PublicKey(123456789)
        data = public.to_bytes(mini_params)
        assert PublicKey.from_bytes(data) == public

    def test_csidh512_keys_are_64_bytes(self, csidh512_params):
        public = PublicKey(csidh512_params.p - 1)
        assert len(public.to_bytes(csidh512_params)) == 64

    def test_base_coefficient_is_zero(self):
        assert BASE_COEFFICIENT == 0


class TestPrivateKeySerialisation:
    def test_roundtrip(self, mini_params):
        from repro.csidh.protocol import PrivateKey

        key = PrivateKey((3, -3, 0, 1, -1, 2, -2))
        data = key.to_bytes(mini_params)
        assert len(data) == mini_params.num_primes
        assert PrivateKey.from_bytes(data, mini_params) == key

    def test_wrong_length_rejected(self, mini_params):
        from repro.csidh.protocol import PrivateKey

        with pytest.raises(ProtocolError):
            PrivateKey.from_bytes(b"\x00\x01", mini_params)

    def test_out_of_range_rejected(self, mini_params):
        from repro.csidh.protocol import PrivateKey

        data = bytes([100] * mini_params.num_primes)
        with pytest.raises(ProtocolError):
            PrivateKey.from_bytes(data, mini_params)


class TestKeyDerivation:
    def test_equal_secrets_equal_keys(self, toy_params):
        from repro.csidh.protocol import derive_symmetric_key

        a, b = key_exchange_demo(toy_params, seed=2)
        assert a == b
        key_a = derive_symmetric_key(a, toy_params)
        key_b = derive_symmetric_key(b, toy_params)
        assert key_a == key_b
        assert len(key_a) == 32

    def test_different_secrets_different_keys(self, toy_params):
        from repro.csidh.protocol import derive_symmetric_key

        assert derive_symmetric_key(5, toy_params) \
            != derive_symmetric_key(6, toy_params)

    def test_context_separation(self, toy_params):
        from repro.csidh.protocol import derive_symmetric_key

        assert derive_symmetric_key(5, toy_params, context=b"a") \
            != derive_symmetric_key(5, toy_params, context=b"b")

    def test_custom_length(self, toy_params):
        from repro.csidh.protocol import derive_symmetric_key

        assert len(derive_symmetric_key(5, toy_params, length=64)) == 64
