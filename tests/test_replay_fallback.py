"""Replay→interpreter fallback, exercised per rejection reason.

One test per :class:`~repro.rv64.replay.ReplayError` ``reason`` value:
each builds a program the trace compiler must refuse, asserts the
refusal (``trace_rejects_total{reason=...}``), asserts that a
``run(replay=True)`` on such a program increments the fallback counter
(``replay_fallback_total{reason="not_replayable"}``), and — where the
program is runnable at all — that the fallback execution is
bit-for-bit identical to a plain interpreter run (registers, memory,
retired-instruction count, cycles).  Programs that are broken for the
interpreter too (unmapped walk-off, step-limit blowout) must fail
identically on both paths.

A final guard asserts this file covers every declared reason, so a new
rejection reason cannot land without its fallback test.

The second half applies the same discipline one tier up: every
:class:`~repro.rv64.jit.JitError` reason and every demotion reason on
the jit → replay → interpreter ladder
(:data:`repro.rv64.jit.DEMOTION_REASONS`) gets a test asserting the
refusal counter (``jit_rejects_total{reason=...}``), the demotion
counter (``jit_demotions_total{reason=...}``), the engine that
actually ran, and bit-for-bit agreement with the plain interpreter.

The third section covers the top rung: every
:class:`~repro.rv64.aot.AotError` reason and every demotion reason on
the aot → jit → replay → interpreter ladder
(:data:`repro.rv64.aot.DEMOTION_REASONS`) gets the same treatment —
``aot_rejects_total{reason=...}``, ``aot_demotions_total{reason=...}``,
the engine that served the run, and exactness against the interpreter.
"""

from __future__ import annotations

import re

import pytest

from repro import telemetry
from repro.core.ise import EXTENDED_ISA
from repro.errors import SimulationError
from repro.rv64.assembler import assemble
from repro.rv64.machine import Machine
from repro.rv64.pipeline import (
    PipelineModel,
    ROCKET_CONFIG,
    ROCKET_CONFIG_WITH_CACHES,
)
from repro.mpi.representation import Radix
from repro.rv64 import aot as aot_module
from repro.rv64.aot import AotError, compile_aot, compile_aot_entry
from repro.rv64 import jit as jit_module
from repro.rv64.jit import DEMOTION_REASONS, JitError, compile_jit
from repro.rv64.machine import HALT_ADDRESS
from repro.rv64.replay import ReplayError, compile_trace

#: reason -> the assembly that provokes it (straight-line unless noted)
_STRAIGHT = """
    addi t0, zero, 41
    addi t1, zero, 1
    add  a0, t0, t1
    ret
"""


def _machine(source: str, *, config=ROCKET_CONFIG,
             max_steps: int | None = None) -> tuple[Machine, int]:
    machine = Machine(EXTENDED_ISA, pipeline=PipelineModel(config))
    if max_steps is not None:
        machine.max_steps = max_steps
    entry = machine.load_program(assemble(source, EXTENDED_ISA))
    return machine, entry


def _assert_rejected(source: str, reason: str, **kwargs) -> None:
    machine, entry = _machine(source, **kwargs)
    with pytest.raises(ReplayError) as excinfo:
        compile_trace(machine, entry)
    assert excinfo.value.reason == reason


def _fallback_matches_interpreter(source: str, reason: str,
                                  **kwargs) -> None:
    """run(replay=True) falls back and matches run(replay=False)."""
    with telemetry.capture(fresh=True) as cap:
        replay_machine, entry = _machine(source, **kwargs)
        replay_result = replay_machine.run(entry, replay=True)
    plain_machine, entry2 = _machine(source, **kwargs)
    plain_result = plain_machine.run(entry2, replay=False)

    assert replay_result.engine == "interpreter"
    assert replay_result.instructions_retired \
        == plain_result.instructions_retired
    assert replay_result.cycles == plain_result.cycles
    assert replay_result.histogram == plain_result.histogram
    assert replay_machine.regs.snapshot() == plain_machine.regs.snapshot()

    rejects = cap.registry.counter("trace_rejects_total")
    assert rejects.value(reason=reason) == 1
    fallbacks = cap.registry.counter("replay_fallback_total")
    assert fallbacks.value(reason="not_replayable") == 1


class TestControlFlow:
    SOURCE = """
        addi t0, zero, 5
        beq  zero, zero, 8
        addi t0, zero, 99
        addi a0, t0, 1
        ret
    """

    def test_rejected(self):
        _assert_rejected(self.SOURCE, "control_flow")

    def test_fallback_bit_for_bit(self):
        _fallback_matches_interpreter(self.SOURCE, "control_flow")
        machine, entry = _machine(self.SOURCE)
        machine.run(entry)
        assert machine.regs["a0"] == 6  # the branch was honoured


class TestRaWrite:
    # writes ra with its own (unchanged) value: harmless to execute,
    # but the compiler cannot prove the final ret still halts
    SOURCE = """
        addi t0, zero, 7
        addi ra, ra, 0
        addi a0, t0, 3
        ret
    """

    def test_rejected(self):
        _assert_rejected(self.SOURCE, "ra_write")

    def test_fallback_bit_for_bit(self):
        _fallback_matches_interpreter(self.SOURCE, "ra_write")
        machine, entry = _machine(self.SOURCE)
        machine.run(entry)
        assert machine.regs["a0"] == 10


class TestCacheTiming:
    def test_rejected(self):
        _assert_rejected(_STRAIGHT, "cache_timing",
                         config=ROCKET_CONFIG_WITH_CACHES)

    def test_fallback_bit_for_bit(self):
        _fallback_matches_interpreter(_STRAIGHT, "cache_timing",
                                      config=ROCKET_CONFIG_WITH_CACHES)


class TestUnmapped:
    # no terminal ret: the straight-line walk falls off the image, and
    # so does the interpreter — both paths must fail identically
    SOURCE = """
        addi t0, zero, 1
        add  a0, t0, t0
    """

    def test_rejected(self):
        _assert_rejected(self.SOURCE, "unmapped")

    def test_fallback_fails_like_interpreter(self):
        with telemetry.capture(fresh=True) as cap:
            machine, entry = _machine(self.SOURCE)
            with pytest.raises(SimulationError) as via_replay:
                machine.run(entry, replay=True)
        other, entry2 = _machine(self.SOURCE)
        with pytest.raises(SimulationError) as via_interp:
            other.run(entry2, replay=False)
        assert str(via_replay.value) == str(via_interp.value)
        rejects = cap.registry.counter("trace_rejects_total")
        assert rejects.value(reason="unmapped") == 1
        fallbacks = cap.registry.counter("replay_fallback_total")
        assert fallbacks.value(reason="not_replayable") == 1


class TestStepLimit:
    SOURCE = "\n".join(["addi t0, t0, 1"] * 8) + "\nret\n"

    def test_rejected(self):
        _assert_rejected(self.SOURCE, "step_limit", max_steps=4)

    def test_fallback_fails_like_interpreter(self):
        with telemetry.capture(fresh=True) as cap:
            machine, entry = _machine(self.SOURCE, max_steps=4)
            with pytest.raises(SimulationError, match="step limit"):
                machine.run(entry, replay=True)
        other, entry2 = _machine(self.SOURCE, max_steps=4)
        with pytest.raises(SimulationError, match="step limit"):
            other.run(entry2, replay=False)
        rejects = cap.registry.counter("trace_rejects_total")
        assert rejects.value(reason="step_limit") == 1
        fallbacks = cap.registry.counter("replay_fallback_total")
        assert fallbacks.value(reason="not_replayable") == 1


def test_every_declared_reason_is_covered():
    """A new ReplayError.reason cannot land without a fallback test."""
    source = open(__file__, encoding="utf-8").read()
    tested = set(re.findall(r'"(control_flow|ra_write|cache_timing|'
                            r'unmapped|step_limit)"', source))
    assert tested == set(ReplayError.REASONS)


# ---------------------------------------------------------------------------
# jit demotion ladder: jit → replay → interpreter
# ---------------------------------------------------------------------------


class TestJitNotReplayable:
    """Unreplayable programs refuse jit for the same root cause, and a
    jit request demotes all the way to the interpreter."""

    SOURCE = TestControlFlow.SOURCE

    def test_rejected(self):
        machine, entry = _machine(self.SOURCE)
        with pytest.raises(JitError) as excinfo:
            compile_jit(machine, entry)
        assert excinfo.value.reason == "not_replayable"
        assert excinfo.value.code == "jit"

    def test_demotes_to_interpreter_bit_for_bit(self):
        with telemetry.capture(fresh=True) as cap:
            machine, entry = _machine(self.SOURCE)
            result = machine.run(entry, engine="jit")
        plain, entry2 = _machine(self.SOURCE)
        expected = plain.run(entry2)

        assert result.engine == "interpreter"
        assert result.instructions_retired \
            == expected.instructions_retired
        assert result.cycles == expected.cycles
        assert machine.regs.snapshot() == plain.regs.snapshot()

        rejects = cap.registry.counter("jit_rejects_total")
        assert rejects.value(reason="not_replayable") == 1
        demotions = cap.registry.counter("jit_demotions_total")
        assert demotions.value(reason="not_compilable") == 1
        # ...and the replay rung below then falls back too
        fallbacks = cap.registry.counter("replay_fallback_total")
        assert fallbacks.value(reason="not_replayable") == 1


class TestJitCodegenError:
    """A broken emitter makes the generated source fail to compile:
    jit refuses with ``codegen_error`` and demotes ONE rung — the
    trace itself is healthy, so the replay engine serves the run."""

    def test_rejected_and_replay_serves(self):
        original = jit_module._TEMPLATES.get("addi")
        jit_module._TEMPLATES["addi"] = (
            lambda ins, pc: "r1 = = broken(")
        try:
            machine, entry = _machine(_STRAIGHT)
            with pytest.raises(JitError) as excinfo:
                compile_jit(machine, entry)
            assert excinfo.value.reason == "codegen_error"

            with telemetry.capture(fresh=True) as cap:
                machine2, entry2 = _machine(_STRAIGHT)
                result = machine2.run(entry2, engine="jit")
            assert result.engine == "replay"
            assert machine2.regs["a0"] == 42
            rejects = cap.registry.counter("jit_rejects_total")
            assert rejects.value(reason="codegen_error") == 1
            demotions = cap.registry.counter("jit_demotions_total")
            assert demotions.value(reason="not_compilable") == 1
        finally:
            if original is None:
                jit_module._TEMPLATES.pop("addi", None)
            else:
                jit_module._TEMPLATES["addi"] = original


class TestJitTraceHooks:
    """An attached trace hook demotes jit (and replay) so the hook
    observes every retired instruction."""

    def test_demotes_and_hook_fires(self):
        machine, entry = _machine(_STRAIGHT)
        seen = []
        machine.add_trace_hook(lambda state, ins: seen.append(
            ins.mnemonic))
        with telemetry.capture(fresh=True) as cap:
            result = machine.run(entry, engine="jit")
        assert result.engine == "interpreter"
        assert len(seen) == result.instructions_retired
        demotions = cap.registry.counter("jit_demotions_total")
        assert demotions.value(reason="trace_hooks") == 1
        assert machine.regs["a0"] == 42


class TestJitNoSetupReturn:
    """``setup_return=False`` means the caller owns ra/sp; jit cannot
    reproduce that from-reset contract and demotes."""

    def test_demotes_and_matches_interpreter(self):
        machine, entry = _machine(_STRAIGHT)
        machine.state.regs.write("ra", HALT_ADDRESS)
        with telemetry.capture(fresh=True) as cap:
            result = machine.run(entry, setup_return=False,
                                 engine="jit")
        plain, entry2 = _machine(_STRAIGHT)
        plain.state.regs.write("ra", HALT_ADDRESS)
        expected = plain.run(entry2, setup_return=False)

        assert result.engine == "interpreter"
        assert result.cycles == expected.cycles
        assert machine.regs.snapshot() == plain.regs.snapshot()
        demotions = cap.registry.counter("jit_demotions_total")
        assert demotions.value(reason="no_setup_return") == 1


def test_jit_rejection_is_cached_not_retried():
    """A refused entry is remembered; later jit requests demote
    without re-running the code generator."""
    with telemetry.capture(fresh=True) as cap:
        machine, entry = _machine(TestControlFlow.SOURCE)
        machine.run(entry, engine="jit")
        machine.run(entry, engine="jit")
        rejects = cap.registry.counter("jit_rejects_total")
        assert rejects.value(reason="not_replayable") == 1
        demotions = cap.registry.counter("jit_demotions_total")
        assert demotions.value(reason="not_compilable") == 2


def test_every_declared_jit_reason_is_covered():
    """A new JitError.reason or demotion reason cannot land without
    its ladder test in this file."""
    source = open(__file__, encoding="utf-8").read()
    tested = set(re.findall(r'"(not_replayable|codegen_error|'
                            r'not_compilable|trace_hooks|'
                            r'no_setup_return)"', source))
    assert tested == set(JitError.REASONS) | set(DEMOTION_REASONS)


# ---------------------------------------------------------------------------
# aot demotion ladder: aot → jit → replay → interpreter
# ---------------------------------------------------------------------------


def _entry_thunk_kwargs():
    """Minimal one-operand entry-thunk shape for refusal tests."""
    return dict(
        arg_plan=((0x10000, 1, 10),),  # one limb at 0x10000 in a0
        result_reg=11,                 # result pointer in a1
        result_addr=0x10200,
        out_limbs=1,
        radix=Radix(64, 1),
        const_window=(0, 0),
    )


class TestAotNotReplayable:
    """Unreplayable programs refuse fusion for the same root cause,
    and an aot request demotes all the way to the interpreter."""

    SOURCE = TestControlFlow.SOURCE

    def test_rejected(self):
        machine, entry = _machine(self.SOURCE)
        with pytest.raises(AotError) as excinfo:
            compile_aot(machine, entry)
        assert excinfo.value.reason == "not_replayable"
        assert excinfo.value.code == "aot"

    def test_demotes_to_interpreter_bit_for_bit(self):
        with telemetry.capture(fresh=True) as cap:
            machine, entry = _machine(self.SOURCE)
            result = machine.run(entry, engine="aot")
        plain, entry2 = _machine(self.SOURCE)
        expected = plain.run(entry2)

        assert result.engine == "interpreter"
        assert result.instructions_retired \
            == expected.instructions_retired
        assert result.cycles == expected.cycles
        assert machine.regs.snapshot() == plain.regs.snapshot()

        rejects = cap.registry.counter("aot_rejects_total")
        assert rejects.value(reason="not_replayable") == 1
        demotions = cap.registry.counter("aot_demotions_total")
        assert demotions.value(reason="not_compilable") == 1
        # ...and every rung below then refuses/falls back in turn
        jit_rejects = cap.registry.counter("jit_rejects_total")
        assert jit_rejects.value(reason="not_replayable") == 1
        fallbacks = cap.registry.counter("replay_fallback_total")
        assert fallbacks.value(reason="not_replayable") == 1


class TestAotUnsupportedOp:
    """A mnemonic with no registered expression and no extractable
    R/I-format lambda refuses fusion; the jit rung serves the run."""

    SOURCE = """
        addi t0, zero, 3
        addi t1, zero, 4
        addi t2, zero, 5
        maddlu a0, t0, t1, t2
        ret
    """

    def test_rejected_and_jit_serves(self):
        original = aot_module._EXPRS.pop("maddlu")
        try:
            machine, entry = _machine(self.SOURCE)
            with pytest.raises(AotError) as excinfo:
                compile_aot(machine, entry)
            assert excinfo.value.reason == "unsupported_op"

            with telemetry.capture(fresh=True) as cap:
                machine2, entry2 = _machine(self.SOURCE)
                result = machine2.run(entry2, engine="aot")
            assert result.engine == "jit"
            assert machine2.regs["a0"] == 3 * 4 + 5
            rejects = cap.registry.counter("aot_rejects_total")
            assert rejects.value(reason="unsupported_op") == 1
            demotions = cap.registry.counter("aot_demotions_total")
            assert demotions.value(reason="not_compilable") == 1
        finally:
            aot_module._EXPRS["maddlu"] = original


class TestAotDynamicAddress:
    """A load whose address depends on loaded data cannot be fused
    into a static entry thunk."""

    SOURCE = """
        ld t0, 0(a0)
        ld t1, 0(t0)
        sd t1, 0(a1)
        ret
    """

    def test_entry_thunk_rejected(self):
        machine, entry = _machine(self.SOURCE)
        with pytest.raises(AotError) as excinfo:
            compile_aot_entry(machine, entry, **_entry_thunk_kwargs())
        assert excinfo.value.reason == "dynamic_address"


class TestAotUnsupportedAccess:
    """Sub-word accesses (and reads outside the operand spans / const
    pool) refuse entry-thunk fusion."""

    SOURCE = """
        lb t0, 0(a0)
        sd t0, 0(a1)
        ret
    """

    def test_entry_thunk_rejected(self):
        machine, entry = _machine(self.SOURCE)
        with pytest.raises(AotError) as excinfo:
            compile_aot_entry(machine, entry, **_entry_thunk_kwargs())
        assert excinfo.value.reason == "unsupported_access"


class TestAotCodegenError:
    """A broken expression template fails to fold/compile: aot refuses
    with ``codegen_error`` and demotes ONE rung — the trace is healthy,
    so the jit tier serves the run."""

    def test_rejected_and_jit_serves(self):
        original = aot_module._EXPRS.get("addi")
        aot_module._EXPRS["addi"] = ("i", "r1 = = broken(")
        try:
            machine, entry = _machine(_STRAIGHT)
            with pytest.raises(AotError) as excinfo:
                compile_aot(machine, entry)
            assert excinfo.value.reason == "codegen_error"

            with telemetry.capture(fresh=True) as cap:
                machine2, entry2 = _machine(_STRAIGHT)
                result = machine2.run(entry2, engine="aot")
            assert result.engine == "jit"
            assert machine2.regs["a0"] == 42
            rejects = cap.registry.counter("aot_rejects_total")
            assert rejects.value(reason="codegen_error") == 1
            demotions = cap.registry.counter("aot_demotions_total")
            assert demotions.value(reason="not_compilable") == 1
        finally:
            if original is None:
                aot_module._EXPRS.pop("addi", None)
            else:
                aot_module._EXPRS["addi"] = original


class TestAotTraceHooks:
    """An attached trace hook demotes the whole fused tier so the hook
    observes every retired instruction."""

    def test_demotes_and_hook_fires(self):
        machine, entry = _machine(_STRAIGHT)
        seen = []
        machine.add_trace_hook(lambda state, ins: seen.append(
            ins.mnemonic))
        with telemetry.capture(fresh=True) as cap:
            result = machine.run(entry, engine="aot")
        assert result.engine == "interpreter"
        assert len(seen) == result.instructions_retired
        demotions = cap.registry.counter("aot_demotions_total")
        assert demotions.value(reason="trace_hooks") == 1
        assert machine.regs["a0"] == 42


class TestAotNoSetupReturn:
    """``setup_return=False`` means the caller owns ra/sp; the fused
    thunk bakes the from-reset contract in and must demote."""

    def test_demotes_and_matches_interpreter(self):
        machine, entry = _machine(_STRAIGHT)
        machine.state.regs.write("ra", HALT_ADDRESS)
        with telemetry.capture(fresh=True) as cap:
            result = machine.run(entry, setup_return=False,
                                 engine="aot")
        plain, entry2 = _machine(_STRAIGHT)
        plain.state.regs.write("ra", HALT_ADDRESS)
        expected = plain.run(entry2, setup_return=False)

        assert result.engine == "interpreter"
        assert result.cycles == expected.cycles
        assert machine.regs.snapshot() == plain.regs.snapshot()
        demotions = cap.registry.counter("aot_demotions_total")
        assert demotions.value(reason="no_setup_return") == 1


def test_aot_rejection_is_cached_not_retried():
    """A refused entry is remembered; later aot requests demote
    without re-running the fuser."""
    with telemetry.capture(fresh=True) as cap:
        machine, entry = _machine(TestControlFlow.SOURCE)
        machine.run(entry, engine="aot")
        machine.run(entry, engine="aot")
        rejects = cap.registry.counter("aot_rejects_total")
        assert rejects.value(reason="not_replayable") == 1
        demotions = cap.registry.counter("aot_demotions_total")
        assert demotions.value(reason="not_compilable") == 2


def test_every_declared_aot_reason_is_covered():
    """A new AotError.reason or aot demotion reason cannot land
    without its ladder test in this file."""
    source = open(__file__, encoding="utf-8").read()
    tested = set(re.findall(r'"(not_replayable|unsupported_op|'
                            r'dynamic_address|unsupported_access|'
                            r'codegen_error|not_compilable|'
                            r'trace_hooks|no_setup_return)"', source))
    assert tested == (set(AotError.REASONS)
                      | set(aot_module.DEMOTION_REASONS))
