"""Tests for the perf-regression watchdog and its CLI.

The watchdog gates on ``BENCH_*.json`` trajectories: baseline = median
of every prior run in a workload group, latest run checked against
per-class tolerances.  The contract under test: passing trajectories
exit 0, a synthetic 2x latency regression produces findings with the
stable code ``"regression"`` and CLI exit 1, and environment problems
(missing/garbage files) stay distinguishable as exit 2.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import RegressionError, ReproError
from repro.telemetry import TelemetryError, watchdog


def _service_run(**overrides) -> dict:
    run = {
        "mode": "service_load",
        "params": "CSIDH-toy",
        "engine": "jit",
        "exchanges": 50,
        "concurrency": 8,
        "tenants": 2,
        "hardened": False,
        "duration_s": 2.0,
        "throughput_per_s": 25.0,
        "latency_p50_ms": 40.0,
        "latency_p95_ms": 90.0,
        "latency_p99_ms": 120.0,
        "divergences": 0,
    }
    run.update(overrides)
    return run


def _profile_run(**overrides) -> dict:
    run = {
        "params": "CSIDH-toy",
        "variant": "reduced.ise",
        "wall_s": 1.5,
        "simulated_cycles": 500_000,
    }
    run.update(overrides)
    return run


def _sharded_run(**overrides) -> dict:
    run = {
        "mode": "sharded_action",
        "params": "CSIDH-toy",
        "variant": "reduced.ise",
        "shards": 8,
        "workers": 2,
        "engine": "jit",
        "wall_s": 0.5,
        "plan_wall_s": 0.05,
        "simulated_cycles": 115_493,
        "simulated_instructions": 95_251,
        "steals": 1,
        "requeues": 0,
        "worker_failures": 0,
        "divergences": 0,
        "shards_completed": 8,
    }
    run.update(overrides)
    return run


def _write(tmp_path, runs, name="BENCH_service.json"):
    path = tmp_path / name
    path.write_text(json.dumps(
        {"benchmark": "protocol", "schema": 1, "runs": runs}))
    return str(path)


class TestGrouping:
    def test_different_workloads_never_compared(self):
        report = watchdog.check_records([
            _service_run(exchanges=50),
            _service_run(exchanges=100, latency_p95_ms=500.0),
        ])
        # Two groups of one run each: nothing to compare, no findings.
        assert report.ok
        assert report.groups_skipped == 2
        assert report.groups_checked == 0

    def test_profile_and_service_records_coexist(self):
        report = watchdog.check_records(
            [_profile_run(), _service_run(),
             _profile_run(), _service_run()])
        assert report.groups_checked == 2
        assert report.ok


class TestBaseline:
    def test_first_run_is_skipped_not_failed(self):
        report = watchdog.check_records([_service_run()])
        assert report.ok
        assert report.groups_skipped == 1

    def test_median_absorbs_one_noisy_prior(self):
        # One slow outlier among the priors must not drag the
        # baseline up (mean would): median of (40, 40, 400) = 40.
        report = watchdog.check_records([
            _service_run(),
            _service_run(latency_p50_ms=400.0),
            _service_run(),
            _service_run(latency_p50_ms=50.0),
        ])
        assert report.ok

    def test_latest_run_is_the_checked_one(self):
        # Regression in the middle of history, recovered since: fine.
        report = watchdog.check_records([
            _service_run(),
            _service_run(latency_p95_ms=900.0),
            _service_run(),
        ])
        assert report.ok


class TestDetection:
    def test_2x_latency_regression_found(self):
        report = watchdog.check_records([
            _service_run(), _service_run(),
            _service_run(latency_p95_ms=180.0),
        ])
        assert not report.ok
        finding = report.findings[0]
        assert finding.metric == "latency_p95_ms"
        assert finding.code == "regression"
        assert finding.direction == "increase"
        assert finding.ratio == pytest.approx(2.0)

    def test_throughput_drop_found(self):
        report = watchdog.check_records([
            _service_run(), _service_run(),
            _service_run(throughput_per_s=10.0),
        ])
        assert [f.metric for f in report.findings] \
            == ["throughput_per_s"]
        assert report.findings[0].direction == "decrease"

    def test_cycles_have_zero_tolerance(self):
        report = watchdog.check_records([
            _profile_run(), _profile_run(),
            _profile_run(simulated_cycles=500_001),
        ])
        assert [f.metric for f in report.findings] \
            == ["simulated_cycles"]

    def test_cycle_decrease_is_an_improvement(self):
        report = watchdog.check_records([
            _profile_run(), _profile_run(),
            _profile_run(simulated_cycles=400_000),
        ])
        assert report.ok

    def test_divergences_fail_without_baseline(self):
        report = watchdog.check_records([_service_run(divergences=1)])
        assert [f.metric for f in report.findings] == ["divergences"]
        assert report.findings[0].direction == "invariant"

    def test_engine_comparison_wall_checked(self):
        def run(wall):
            return {"mode": "engine_comparison", "params": "CSIDH-toy",
                    "variant": "reduced.ise",
                    "engines": {"jit": {"wall_s": wall},
                                "replay": {"wall_s": 1.0}}}
        report = watchdog.check_records([run(0.2), run(0.2), run(0.9)])
        assert [f.metric for f in report.findings] \
            == ["engines.jit.wall_s"]

    def test_sharded_cycles_regression_found(self):
        # merged cycle totals are deterministic, so the sharded_action
        # group inherits the zero-tolerance cycles gate
        report = watchdog.check_records([
            _sharded_run(), _sharded_run(),
            _sharded_run(simulated_cycles=115_494),
        ])
        assert [f.metric for f in report.findings] \
            == ["simulated_cycles"]
        assert report.findings[0].code == "regression"

    def test_sharded_wall_regression_found(self):
        report = watchdog.check_records([
            _sharded_run(), _sharded_run(),
            _sharded_run(wall_s=2.0),
        ])
        assert "wall_s" in [f.metric for f in report.findings]

    def test_sharded_divergences_fail_without_baseline(self):
        report = watchdog.check_records([_sharded_run(divergences=1)])
        assert [f.metric for f in report.findings] == ["divergences"]
        assert report.findings[0].direction == "invariant"

    def test_sharded_worker_counts_group_separately(self):
        # a 2-worker run is not the baseline of an 8-worker run:
        # different workers (or shard counts) form different groups
        report = watchdog.check_records([
            _sharded_run(workers=2),
            _sharded_run(workers=8, wall_s=5.0),
        ])
        assert report.ok
        assert report.groups_skipped == 2
        report = watchdog.check_records([
            _sharded_run(shards=8),
            _sharded_run(shards=64, wall_s=5.0),
        ])
        assert report.ok
        assert report.groups_skipped == 2

    def test_sharded_and_profile_records_coexist(self):
        report = watchdog.check_records(
            [_sharded_run(), _profile_run(),
             _sharded_run(), _profile_run()])
        assert report.groups_checked == 2
        assert report.ok

    def test_custom_tolerance_widens_the_gate(self):
        runs = [_service_run(), _service_run(),
                _service_run(latency_p95_ms=180.0)]
        loose = watchdog.Tolerances(latency=1.5)
        assert watchdog.check_records(runs, tolerances=loose).ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TelemetryError):
            watchdog.Tolerances(latency=-0.1)


class TestEnforceAndReport:
    def test_enforce_raises_stable_code(self):
        report = watchdog.check_records([
            _service_run(), _service_run(),
            _service_run(latency_p99_ms=1000.0),
        ])
        with pytest.raises(RegressionError) as excinfo:
            watchdog.enforce(report)
        assert excinfo.value.code == "regression"
        assert "latency_p99_ms" in str(excinfo.value)

    def test_enforce_passes_clean_report_through(self):
        report = watchdog.check_records([_service_run()])
        assert watchdog.enforce(report) is report

    def test_report_dict_is_json_able(self):
        report = watchdog.check_records([
            _service_run(), _service_run(),
            _service_run(latency_p50_ms=500.0),
        ])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is False
        assert data["findings"][0]["code"] == "regression"
        assert data["findings"][0]["metric"] == "latency_p50_ms"

    def test_missing_file_raises_repro_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            watchdog.check_bench(str(tmp_path / "nope.json"))

    def test_garbage_file_raises_repro_error(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("not json {")
        with pytest.raises(TelemetryError):
            watchdog.check_bench(str(path))
        path.write_text('{"no": "runs"}')
        with pytest.raises(ReproError):
            watchdog.check_bench(str(path))

    def test_check_paths_merges_trajectories(self, tmp_path):
        a = _write(tmp_path, [_service_run()], "a.json")
        b = _write(tmp_path, [_profile_run()], "b.json")
        report = watchdog.check_paths([a, b])
        assert report.paths == [a, b]
        assert report.runs_seen == 2


class TestWatchdogCli:
    def test_clean_trajectory_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, [_service_run(), _service_run()])
        assert main(["watchdog", path]) == 0
        out = capsys.readouterr().out
        assert "no regressions detected" in out

    def test_regression_exits_one_with_stable_code(
            self, tmp_path, capsys):
        path = _write(tmp_path, [
            _service_run(), _service_run(),
            _service_run(latency_p95_ms=400.0),
        ])
        assert main(["watchdog", path]) == 1
        captured = capsys.readouterr()
        assert "latency_p95_ms" in captured.out
        assert "error [regression]:" in captured.err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["watchdog", str(tmp_path / "nope.json")]) == 2
        assert "error [telemetry]:" in capsys.readouterr().err

    def test_json_report_written(self, tmp_path, capsys):
        path = _write(tmp_path, [
            _service_run(), _service_run(),
            _service_run(throughput_per_s=1.0),
        ])
        out_path = tmp_path / "report.json"
        assert main(["watchdog", path, "--json", str(out_path)]) == 1
        data = json.loads(out_path.read_text())
        assert data["findings"][0]["code"] == "regression"

    def test_tolerance_flags_forwarded(self, tmp_path):
        path = _write(tmp_path, [
            _service_run(), _service_run(),
            _service_run(latency_p95_ms=400.0,
                         throughput_per_s=1.0),
        ])
        assert main(["watchdog", path,
                     "--latency-tolerance", "10",
                     "--throughput-tolerance", "0.99"]) == 0


def _chaos_run(**overrides) -> dict:
    run = {
        "mode": "chaos_load",
        "params": "CSIDH-toy",
        "n": 16,
        "seed": 1,
        "engine": "replay",
        "timeout_s": 0.75,
        "retries": 3,
        "duration_s": 4.0,
        "recovered_by_retry": 9,
        "masked": 7,
        "rejected_clean": 0,
        "hung": 0,
        "escaped": 0,
        "recovery_rate": 1.0,
        "retries_total": 12,
        "reconnects_total": 6,
    }
    run.update(overrides)
    return run


class TestChaosGating:
    """``chaos_load`` records: escaped/hung are invariants, the
    recovery rate is deterministic and gated at zero tolerance."""

    def test_clean_chaos_trajectory_passes(self):
        report = watchdog.check_records([_chaos_run(), _chaos_run()])
        assert report.ok
        assert report.groups_checked == 1

    def test_escaped_fails_without_baseline(self):
        report = watchdog.check_records([_chaos_run(escaped=1)])
        assert not report.ok
        assert report.findings[0].metric == "escaped"
        assert report.findings[0].direction == "invariant"

    def test_hung_fails_without_baseline(self):
        report = watchdog.check_records([_chaos_run(hung=2)])
        assert not report.ok
        assert report.findings[0].metric == "hung"

    def test_recovery_rate_drop_found_at_zero_tolerance(self):
        report = watchdog.check_records([
            _chaos_run(),
            _chaos_run(recovery_rate=0.9375, rejected_clean=1,
                       masked=6),
        ])
        findings = {f.metric for f in report.findings}
        assert "recovery_rate" in findings

    def test_recovery_rate_improvement_passes(self):
        report = watchdog.check_records([
            _chaos_run(recovery_rate=0.9375),
            _chaos_run(recovery_rate=1.0),
        ])
        assert all(f.metric != "recovery_rate"
                   for f in report.findings)

    def test_different_seeds_never_compared(self):
        report = watchdog.check_records([
            _chaos_run(seed=1),
            _chaos_run(seed=2, recovery_rate=0.5),
        ])
        # Two groups of one run each: the rate drop has no baseline.
        assert report.groups_skipped == 2
        assert all(f.metric != "recovery_rate"
                   for f in report.findings)

    def test_chaos_and_service_records_coexist(self):
        report = watchdog.check_records(
            [_service_run(), _chaos_run(),
             _service_run(), _chaos_run()])
        assert report.groups_checked == 2
        assert report.ok

    def test_recovery_tolerance_validated(self):
        with pytest.raises(TelemetryError):
            watchdog.Tolerances(recovery=-0.1)

    def test_recovery_tolerance_flag_forwarded(self, tmp_path):
        path = _write(tmp_path, [
            _chaos_run(),
            _chaos_run(recovery_rate=0.875, masked=5,
                       rejected_clean=2),
        ])
        assert main(["watchdog", path]) == 1
        assert main(["watchdog", path,
                     "--recovery-tolerance", "0.5"]) == 0
