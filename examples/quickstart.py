#!/usr/bin/env python3
"""Quickstart: assemble and run ISE-accelerated code on the simulator.

Demonstrates the core loop of the library in under a minute:

1. write RV64 assembly that uses the paper's custom instructions;
2. assemble it for the extended ISA;
3. run it on the simulated Rocket core and read cycle counts;
4. compare against the ISA-only equivalent.
"""

from repro.core import EXTENDED_ISA
from repro.core.macros import mac_full_radix_isa, mac_full_radix_ise
from repro.rv64 import Machine, PipelineModel, assemble

A = 0xFFFFFFFFFFFFFFFF
B = 0xFEDCBA9876543210


def run(source: str) -> tuple[int, int, int]:
    """Assemble + execute; returns (accumulator, instructions, cycles)."""
    machine = Machine(EXTENDED_ISA, pipeline=PipelineModel())
    entry = machine.load_program(assemble(source + "\nret\n",
                                          EXTENDED_ISA))
    machine.regs["a0"], machine.regs["a1"] = A, B
    result = machine.run(entry)
    acc = ((machine.regs["s2"] << 128) | (machine.regs["s1"] << 64)
           | machine.regs["s0"])
    return acc, result.instructions_retired, result.cycles


def main() -> None:
    # one multiply-accumulate (e || h || l) += a * b, both ways
    isa_source = "\n".join(
        mac_full_radix_isa("s2", "s1", "s0", "a0", "a1", "t0", "t1"))
    ise_source = "\n".join(
        mac_full_radix_ise("s2", "s1", "s0", "a0", "a1", "t0"))

    isa_acc, isa_instrs, isa_cycles = run(isa_source)
    ise_acc, ise_instrs, ise_cycles = run(ise_source)

    assert isa_acc == ise_acc == A * B
    print("192-bit MAC:  (e || h || l) += a * b")
    print(f"  ISA-only (Listing 1): {isa_instrs - 1} instructions, "
          f"{isa_cycles} cycles")
    print(f"  ISE      (Listing 3): {ise_instrs - 1} instructions, "
          f"{ise_cycles} cycles")
    print(f"  accumulator value: {isa_acc:#x}")
    print()
    print("The paper's claim — the custom maddlu/maddhu/cadd halve the")
    print("full-radix MAC from 8 to 4 instructions — reproduced live.")


if __name__ == "__main__":
    main()
