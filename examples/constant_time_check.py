#!/usr/bin/env python3
"""Constant-time verification demo.

The paper's F_p routines are "constant-time Assembler functions".  This
example verifies that property for every generated kernel by trace
equivalence (identical pc stream, memory-address stream and cycle count
across random and boundary inputs) — and then demonstrates the checker
catching a deliberately leaky kernel with a secret-dependent branch.
"""

from repro.analysis.ct import boundary_inputs, verify_constant_time
from repro.csidh import csidh_512
from repro.kernels import cached_kernels
from repro.kernels.spec import TABLE4_OPERATIONS


def main() -> None:
    kernels = cached_kernels(csidh_512().p)

    print("verifying all Table-4 kernels (4 variants x 8 operations):")
    for operation in TABLE4_OPERATIONS:
        verdicts = []
        for variant in ("full.isa", "full.ise", "reduced.isa",
                        "reduced.ise"):
            kernel = kernels[f"{operation}.{variant}"]
            report = verify_constant_time(
                kernel, samples=3, extra_inputs=boundary_inputs(kernel))
            verdicts.append("ok" if report.constant_time else "LEAK")
        print(f"  {operation:14s} {' '.join(verdicts)}")

    print("\nnow a deliberately leaky kernel (branch on a secret bit):")
    kernel = kernels["fp_add.full.isa"]
    leaky_source = kernel.source.replace(
        "ret",
        "ld t0, 0(a1)\n"
        "andi t0, t0, 1\n"
        "beq t0, zero, skip\n"
        "nop\n"
        "skip:\n"
        "ret",
    )
    leaky = kernel.__class__(**{**kernel.__dict__,
                                "source": leaky_source})
    report = verify_constant_time(leaky, samples=8)
    assert not report.constant_time
    print(f"  detected: {report.detail}")


if __name__ == "__main__":
    main()
