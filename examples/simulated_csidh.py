#!/usr/bin/env python3
"""Run a complete toy-CSIDH group action ON the simulated RISC-V core.

Every field multiplication, squaring, addition and subtraction of the
class group action executes as real encoded instructions on the RV64
simulator — through the reduced-radix ISE kernels on the extended core,
and through the plain RV64IM kernels on the base core — demonstrating
the full co-design stack with zero stubs.

(The toy prime p = 419 keeps this tractable; the 511-bit group action
would need ~5*10^8 simulated instructions.)
"""

import random
import time

from repro.csidh import csidh_toy, group_action
from repro.field import FieldContext, SimulatedFieldContext

EXPONENTS = (2, -1, 1)


def main() -> None:
    params = csidh_toy()
    print(f"{params.name}: p = {params.p}, degrees {params.ells}, "
          f"exponents {EXPONENTS}\n")

    reference = group_action(params, FieldContext(params.p), 0,
                             EXPONENTS, random.Random(0))
    print(f"pure-Python reference action: A = {reference}\n")

    for variant in ("full.isa", "reduced.ise"):
        field = SimulatedFieldContext(params.p, variant=variant)
        t0 = time.perf_counter()
        result = group_action(params, field, 0, EXPONENTS,
                              random.Random(0))
        dt = time.perf_counter() - t0
        assert result == reference
        ops = field.counter
        print(f"[{variant}] A = {result}  "
              f"({ops.mul} mul, {ops.sqr} sqr, {ops.add} add, "
              f"{ops.sub} sub)")
        print(f"  simulated: {field.simulated_instructions} "
              f"instructions, {field.simulated_cycles} cycles "
              f"(host time {dt:.1f}s)")
        print()

    print("both cores compute the same class-group action; the")
    print("extended core does it in fewer simulated cycles.")


if __name__ == "__main__":
    main()
