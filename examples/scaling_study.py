#!/usr/bin/env python3
"""Scaling study: how the ISE benefit grows with the operand width.

The paper's pitch is ISEs for *scalable* MPI arithmetic (Sect. 1), with
CSIDH-512/1024/1792 as the motivating ladder.  This example generates
the kernel matrix for a range of CSIDH-shaped primes (the >512-bit ones
are synthesized — see DESIGN.md) and reports how the reduced-radix ISE
speedup for the field multiplication evolves.

Beyond ~10 digits the generators automatically switch to
operand-streaming code (the register file no longer holds everything);
the study shows the ISE advantage survives — in fact grows — across the
regime change.
"""

import random
import time

from repro.csidh.parameters import csidh_512, synthesize_parameters
from repro.kernels.registry import build_kernel, make_contexts
from repro.kernels.runner import KernelRunner

#: (label, parameter-set factory)
SIZES = [
    ("~220-bit", lambda: synthesize_parameters(38, max_exponent=2)),
    ("CSIDH-512", csidh_512),
    ("~1020-bit", lambda: synthesize_parameters(130, max_exponent=2)),
]

VARIANTS = ("full.isa", "full.ise", "reduced.isa", "reduced.ise")


def main() -> None:
    rng = random.Random(11)
    print(f"{'prime':>12s}{'digits':>8s}" +
          "".join(f"{v:>14s}" for v in VARIANTS) + f"{'speedup':>9s}")
    for label, factory in SIZES:
        t0 = time.perf_counter()
        params = factory()
        contexts = make_contexts(params.p)
        cycles = {}
        for variant in VARIANTS:
            ctx = contexts[0] if variant.startswith("full.") \
                else contexts[1]
            kernel = build_kernel("fp_mul", variant, ctx)
            cycles[variant] = KernelRunner(kernel).run(
                *kernel.sampler(rng)).cycles
        speedup = cycles["full.isa"] / cycles["reduced.ise"]
        digits = contexts[0].radix.limbs
        print(f"{label:>12s}{digits:>8d}"
              + "".join(f"{cycles[v]:>14d}" for v in VARIANTS)
              + f"{speedup:>8.2f}x"
              + f"   ({time.perf_counter() - t0:.1f}s)")

    print("\nreading: Fp-multiplication cycles per variant; 'speedup'")
    print("is reduced-radix-ISE over the full-radix ISA baseline.")
    print("The quadratic MAC count amplifies the ISE win as operands")
    print("grow, while the linear carry bookkeeping fades.")


if __name__ == "__main__":
    main()
