#!/usr/bin/env python3
"""Hardware cost report: Table 3 from the structural area model.

Prints the base Rocket core budget, the itemised XMUL structures of
both ISE variants, and the composed totals next to the paper's Vivado
synthesis results.
"""

from repro.eval.paperdata import PAPER_TABLE3
from repro.eval.table3 import overhead_summary, render_table3
from repro.hw import ROCKET_BLOCKS
from repro.hw.xmul import full_radix_parts, reduced_radix_parts


def main() -> None:
    print("base core block budget (calibrated to the paper's "
          "baseline):\n")
    print(f"  {'block':12s}{'LUTs':>7s}{'Regs':>7s}{'DSPs':>6s}"
          f"{'CMOS':>9s}")
    for block in ROCKET_BLOCKS:
        a = block.area
        print(f"  {block.name:12s}{a.luts:>7.0f}{a.regs:>7.0f}"
              f"{a.dsps:>6.0f}{a.gates:>9.0f}  # {block.description}")

    for label, parts in (("full-radix", full_radix_parts()),
                         ("reduced-radix", reduced_radix_parts())):
        print(f"\nXMUL extension structures ({label}):\n")
        for part in parts:
            a = part.area
            print(f"  {part.name:44s}{a.luts:>6.0f} LUT "
                  f"{a.regs:>5.0f} FF {a.gates:>8.0f} GE")

    print("\n" + render_table3())

    print("\nrelative overheads (the paper's ~10% headline):")
    for key, pct in overhead_summary().items():
        print(f"  {key:8s} LUTs {pct['luts']:+5.1f}%  "
              f"Regs {pct['regs']:+5.1f}%  CMOS {pct['gates']:+5.1f}%")

    print("\npaper reference points:", PAPER_TABLE3)


if __name__ == "__main__":
    main()
