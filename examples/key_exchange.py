#!/usr/bin/env python3
"""A complete CSIDH-512 key exchange (the paper's case-study protocol).

Alice and Bob each sample a private exponent vector in [-5, 5]^74,
publish a 64-byte supersingular curve coefficient, and derive the same
shared curve — the commutative-group-action Diffie-Hellman.

Runs the real 511-bit parameters in pure Python (a few seconds per
group action) and reports the field-operation counts that drive the
paper's cycle model.
"""

import time

from repro.csidh import Csidh, csidh_512
from repro.csidh.group_action import ActionStats
from repro.field import FieldContext, OpCounter


def main() -> None:
    params = csidh_512()
    print(f"{params.name}: p has {params.p.bit_length()} bits, "
          f"{params.num_primes} isogeny degrees, "
          f"~2^{params.key_space_bits:.0f} private keys")

    alice_counter = OpCounter()
    alice = Csidh(params, seed=2024,
                  field=FieldContext(params.p, alice_counter))
    bob = Csidh(params, seed=4202)

    t0 = time.perf_counter()
    alice_priv, alice_pub = alice.keygen()
    bob_priv, bob_pub = bob.keygen()
    print(f"\nkey generation: {time.perf_counter() - t0:.1f}s")
    print(f"Alice private (first 10 exps): "
          f"{alice_priv.exponents[:10]} ...")
    print(f"Alice public key ({len(alice_pub.to_bytes(params))} bytes): "
          f"{alice_pub.coefficient:#x}")

    stats = ActionStats()
    t0 = time.perf_counter()
    secret_a = alice.shared_secret(alice_priv, bob_pub, stats=stats)
    secret_b = bob.shared_secret(bob_priv, alice_pub)
    dt = time.perf_counter() - t0
    assert secret_a == secret_b, "shared secrets disagree!"

    print(f"\nshared secret derived in {dt:.1f}s "
          f"({stats.isogenies} isogenies, {stats.rounds} rounds)")
    print(f"shared curve coefficient: {secret_a:#x}")

    ops = alice_counter
    print(f"\nAlice's total field work: {ops.mul} mul, {ops.sqr} sqr, "
          f"{ops.add} add, {ops.sub} sub")
    print("(multiply these by the Table-4 per-op cycle costs to get")
    print(" the paper's group-action cycle counts — see")
    print(" benchmarks/test_table4_group_action.py)")


if __name__ == "__main__":
    main()
