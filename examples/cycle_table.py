#!/usr/bin/env python3
"""Regenerate the paper's Table 4 (cycles) and the group-action row.

Runs every generated kernel on the simulated Rocket core, prints the
cycle table next to the paper's numbers, then composes the CSIDH-512
group-action estimate with instrumented op counts.
"""

import time

from repro.csidh import csidh_512
from repro.eval import (
    evaluate_group_action,
    measure_table4,
    render_table4,
)


def main() -> None:
    params = csidh_512()
    print("measuring Table 4 on the simulator "
          "(36 kernels x Rocket timing model) ...")
    t0 = time.perf_counter()
    table = measure_table4(params.p)
    print(f"done in {time.perf_counter() - t0:.1f}s\n")
    print(render_table4(table))

    print("\ncomposing the CSIDH-512 group action "
          "(instrumented protocol runs) ...")
    t0 = time.perf_counter()
    result = evaluate_group_action(table, keys=3, seed=7)
    print(f"done in {time.perf_counter() - t0:.1f}s\n")
    print("\n".join(result.summary_lines()))

    ops = result.ops
    print(f"\nper-action op counts: {ops.mul} mul, {ops.sqr} sqr, "
          f"{ops.add} add, {ops.sub} sub")
    print(f"\nheadline: reduced-radix ISE speedup "
          f"{result.speedup['reduced.ise']:.2f}x "
          "(paper: 1.71x)")


if __name__ == "__main__":
    main()
