#!/usr/bin/env python3
"""ISE playground: encodings, semantics and pipelining of the custom
instructions, shown instruction by instruction.

Walks through each of the paper's six custom instructions: prints its
binary encoding (Figures 1-3), disassembles it back, executes it on the
simulator, and shows the dependent-instruction latency the Rocket
timing model charges.
"""

from repro.core import (
    FULL_RADIX_ISA,
    REDUCED_RADIX_ISA,
    cadd_value,
    madd57hu_value,
    madd57lu_value,
    maddhu_value,
    maddlu_value,
    sraiadd_value,
)
from repro.rv64 import Machine, PipelineModel, assemble
from repro.rv64.disassembler import disassemble_word
from repro.rv64.encoding import encode_instruction

X = 0x0123456789ABCDEF
Y = 0x0FEDCBA987654321
Z = 0x1111111111111111

CASES = [
    ("maddlu a0, a1, a2, a3", FULL_RADIX_ISA,
     lambda: maddlu_value(X, Y, Z), "low 64 bits of x*y + z"),
    ("maddhu a0, a1, a2, a3", FULL_RADIX_ISA,
     lambda: maddhu_value(X, Y, Z), "high 64 bits of x*y + z"),
    ("cadd a0, a1, a2, a3", FULL_RADIX_ISA,
     lambda: cadd_value(X, Y, Z), "carry(x + y) + z"),
    ("madd57lu a0, a1, a2, a3", REDUCED_RADIX_ISA,
     lambda: madd57lu_value(X, Y, Z), "((x*y) & (2^57-1)) + z"),
    ("madd57hu a0, a1, a2, a3", REDUCED_RADIX_ISA,
     lambda: madd57hu_value(X, Y, Z), "((x*y) >> 57) + z"),
    ("sraiadd a0, a1, a2, 57", REDUCED_RADIX_ISA,
     lambda: sraiadd_value(X, Y, 57), "x + (y >>arith 57)"),
]


def main() -> None:
    print(f"operands: x={X:#x} y={Y:#x} z={Z:#x}\n")
    for source, isa, expected, description in CASES:
        program = assemble(source, isa)
        ins = program.instructions[0]
        word = encode_instruction(isa, ins)

        machine = Machine(isa, pipeline=PipelineModel())
        entry = machine.load_program(assemble(source + "\nadd a4, a0, a0"
                                              "\nret", isa))
        machine.regs["a1"], machine.regs["a2"], machine.regs["a3"] = \
            X, Y, Z
        result = machine.run(entry)

        assert machine.regs["a0"] == expected(), source
        print(f"{source:30s} # {description}")
        print(f"  encoding : {word:#010x}  "
              f"(opcode {word & 0x7F:#09b}, funct2 {(word >> 25) & 3})")
        print(f"  disasm   : {disassemble_word(isa, word)}")
        print(f"  result   : a0 = {machine.regs['a0']:#018x}")
        print(f"  timing   : {result.cycles} cycles for "
              f"{result.instructions_retired} instructions "
              "(includes the dependent add's stall)")
        print()

    print("note: cadd and madd57lu intentionally share an encoding")
    print("point — the two ISE sets are alternatives; a core implements")
    print("one or the other (two extended cores in the paper's Table 3).")


if __name__ == "__main__":
    main()
