#!/usr/bin/env python3
"""Visualise the pipeline behaviour of the four MAC listings.

Renders cycle-accurate issue timelines for Listings 1-4 on the Rocket
timing model, making the paper's instruction-count arithmetic tangible:
where the carry chains stall, how ``maddhu`` folds the carry check
away, and why the reduced-radix ISE MAC is only two instructions.
"""

from repro.core import EXTENDED_ISA
from repro.core.macros import (
    mac_full_radix_isa,
    mac_full_radix_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)
from repro.rv64.timeline import render_timeline, trace_timeline

REGS = {"a0": (1 << 57) - 1, "a1": (1 << 56) + 12345,
        "s0": 7, "s1": 9, "s2": 1}

LISTINGS = [
    ("Listing 1 - full radix, ISA-only (8 instructions)",
     mac_full_radix_isa("s2", "s1", "s0", "a0", "a1", "t0", "t1")),
    ("Listing 3 - full radix, ISE (4 instructions)",
     mac_full_radix_ise("s2", "s1", "s0", "a0", "a1", "t0")),
    ("Listing 2 - reduced radix, ISA-only (6 instructions)",
     mac_reduced_radix_isa("s1", "s0", "a0", "a1", "t0", "t1")),
    ("Listing 4 - reduced radix, ISE (2 instructions)",
     mac_reduced_radix_ise("s1", "s0", "a0", "a1")),
]


def main() -> None:
    for title, body in LISTINGS:
        source = "\n".join(body) + "\nret"
        entries = trace_timeline(source, EXTENDED_ISA, regs=dict(REGS))
        total = max(e.complete for e in entries)
        print(f"{title}  -> {total} cycles")
        print(render_timeline(entries))
        print()
    print("M = multiplier (XMUL) op, A = ALU op, J = jump;")
    print("'=' marks result latency; stalls are operand waits.")


if __name__ == "__main__":
    main()
