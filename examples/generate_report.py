#!/usr/bin/env python3
"""Generate the full reproduction report (REPORT.md).

Runs every evaluation component — Table 3 from the area model, Table 4
on the simulator, the group-action composition, the listing counts and
the critical-path check — and writes one self-contained markdown
document, plus the phase breakdown of where the group action's field
work goes.
"""

import time

from repro.csidh.breakdown import group_action_breakdown
from repro.csidh.parameters import csidh_mini
from repro.eval.report import generate_report


def main() -> None:
    t0 = time.perf_counter()
    print("running the full evaluation (simulator + protocol) ...")
    report = generate_report(keys=2, seed=7)

    breakdown = group_action_breakdown(
        csidh_mini(), (3, -2, 1, 0, 2, -1, 3), seed=1)
    extra = (
        "\n\n## Where the group action's field work goes "
        "(CSIDH-mini illustration)\n\n```\n"
        + breakdown.report() + "\n```\n"
    )

    with open("REPORT.md", "w", encoding="utf-8") as handle:
        handle.write(report.to_markdown() + extra)

    speedup = report.group_action.speedup["reduced.ise"]
    print(f"done in {time.perf_counter() - t0:.1f}s")
    print(f"headline speedup: {speedup:.2f}x (paper: 1.71x)")
    print("report written to REPORT.md")


if __name__ == "__main__":
    main()
