"""Throughput guard: concurrency must actually buy something.

The service's concurrency story rests on request coalescing — many
sessions' field ops folded into one ``run_batch`` call — because the
simulated kernels are pure-Python work serialised by the GIL (thread
fan-out alone cannot win).  This guard pins the coalescing dividend:
submitting a burst of field ops concurrently (so they coalesce) must
beat awaiting the same ops one at a time through the same service by
at least ``CONCURRENT_SPEEDUP_FLOOR``.

Measured on the development container: ~3x with the batching window
forced to zero wait (the honest configuration — the default 2 ms
window would pad the sequential side with pure timer sleep).  The
floor is set at half the measured margin, same policy as the jit
overhead guards.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.csidh.parameters import csidh_toy
from repro.service import KeyExchangeService, TenantConfig

#: Concurrent+coalesced must beat sequential by at least this factor.
CONCURRENT_SPEEDUP_FLOOR = 1.5

OPS = 192
TRIALS = 3


def _operands(p: int) -> list[tuple[int, int]]:
    rng = random.Random(0x5EC)
    return [(rng.randrange(p), rng.randrange(p)) for _ in range(OPS)]


def test_concurrent_coalesced_beats_sequential_by_floor():
    params = csidh_toy()
    pairs = _operands(params.p)

    async def measure() -> float:
        config = TenantConfig("t", engine="replay", lanes=2,
                              max_queue=OPS + 8)
        service = KeyExchangeService(
            params, [config],
            coalesce_batch=64,
            # no artificial batching window: the sequential side must
            # not lose to a timer, only to real per-call overhead
            coalesce_wait_s=0.0,
        )
        async with service:
            await service.field_op("t", "mul", [3, 5])  # warm caches
            best = 0.0
            for _ in range(TRIALS):
                # interleave both sides so a host load spike hits each
                start = time.perf_counter()
                for a, b in pairs:
                    await service.field_op("t", "mul", [a, b])
                sequential = time.perf_counter() - start

                start = time.perf_counter()
                results = await asyncio.gather(*(
                    service.field_op("t", "mul", [a, b])
                    for a, b in pairs))
                concurrent = time.perf_counter() - start

                assert results == [(a * b) % params.p
                                   for a, b in pairs]
                best = max(best, sequential / concurrent)
            stats = service.stats()
            # the speedup must come from coalescing, not luck: the
            # concurrent bursts really did fold into shared batches
            coalesced = stats["coalesced"]["t"]
            assert coalesced["batches"] < coalesced["items"]
            return best

    speedup = asyncio.run(measure())
    assert speedup >= CONCURRENT_SPEEDUP_FLOOR, (
        f"concurrent+coalesced field ops only {speedup:.2f}x faster "
        f"than sequential through the service (floor "
        f"{CONCURRENT_SPEEDUP_FLOOR}x) — the coalescing path has "
        f"regressed")


def test_concurrent_handshakes_no_slower_than_sequential():
    """Full handshakes are single group actions (no cross-session
    batching), so concurrency can't multiply throughput under the GIL
    — but it must not *cost* anything either: the scheduler, lanes and
    admission layer overhead stays in the noise (<25%)."""
    from repro.service import expected_handshakes, run_load

    params = csidh_toy()
    exchanges = 6
    oracle = expected_handshakes(params, exchanges, seed=0)

    async def measure(concurrency: int) -> float:
        report = await run_load(
            params, exchanges=exchanges, concurrency=concurrency,
            tenants=2, lanes=2, engine="replay", seed=0,
            oracle=oracle)
        assert report.divergences == 0
        return report.duration_s

    best_ratio = 0.0
    for _ in range(2):
        sequential = asyncio.run(measure(1))
        concurrent = asyncio.run(measure(exchanges))
        best_ratio = max(best_ratio, sequential / concurrent)
    assert best_ratio >= 0.75, (
        f"concurrent handshakes ran {1 / best_ratio:.2f}x slower than "
        f"sequential — the service layer is adding real overhead")
