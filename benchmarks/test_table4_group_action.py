"""E3 — Table 4 bottom row: CSIDH-512 group-action cycles + speedups.

Composes instrumented CSIDH-512 op counts with the simulator-measured
per-operation costs, reproducing the paper's 701.0M -> 411.1M cycles
(1.71x) headline as a shape claim.
"""

from __future__ import annotations

import pytest

from repro.csidh.opcount import average_group_action_profile
from repro.eval.groupaction import compose_group_action
from repro.eval.paperdata import PAPER_GROUP_ACTION_SPEEDUP


@pytest.fixture(scope="module")
def profile512(params512):
    return average_group_action_profile(params512, keys=3, seed=7)


def test_group_action_op_counts(benchmark, params512):
    key = params512.sample_private_key(__import__("random").Random(1))

    def run_one():
        from repro.csidh.opcount import count_group_action
        return count_group_action(params512, key, seed=5)

    profile = benchmark.pedantic(run_one, rounds=1, iterations=1)
    ops = profile.ops
    print(f"\n=== E3: one CSIDH-512 action: {ops.mul} mul, "
          f"{ops.sqr} sqr, {ops.add} add, {ops.sub} sub, "
          f"{profile.stats.isogenies} isogenies ===")
    assert ops.mul > 100_000


def test_group_action_cycles_and_speedups(table4, profile512):
    result = compose_group_action(table4, profile512)
    print("\n=== E3 / Table 4 bottom row: CSIDH-512 group action ===")
    print("\n".join(result.summary_lines()))

    speedup = result.speedup
    paper = PAPER_GROUP_ACTION_SPEEDUP
    # ordering identical to the paper
    assert speedup["reduced.ise"] > speedup["full.ise"] \
        > speedup["full.isa"] > speedup["reduced.isa"]
    # headline factor in a generous band around 1.71x
    assert abs(speedup["reduced.ise"] - paper["reduced.ise"]) < 0.4
    # the ISA-only reduced-radix slowdown (paper: 0.95x)
    assert abs(speedup["reduced.isa"] - paper["reduced.isa"]) < 0.1
    # absolute cycles within 2x of the paper's (different testbed)
    assert 0.5e9 < result.cycles["full.isa"] < 1.4e9


def test_group_action_composition_host_cost(benchmark, table4,
                                            profile512):
    result = benchmark(compose_group_action, table4, profile512)
    assert result.speedup["full.isa"] == pytest.approx(1.0)
