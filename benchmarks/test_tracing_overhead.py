"""Tracing overhead guard: request traces must ride the PR 2 budget.

PR 7 hung a per-request span tree off every service request (trace
contexts, batch links, kernel-cycle attribution).  All of it funnels
through the same ``record_kernel_run`` call sites PR 2 installed, so
the cost contract is unchanged and re-pinned here:

* **disabled** tracing is one boolean test per hook — a large batch of
  trace-context calls completes in milliseconds;
* a fully **traced** load (capture + request/batch contexts + per
  kernel attribution + summary) costs < 2x the untraced load;
* the PR 1 replay-vs-interpreter floor survives with the tracing
  module installed (losing the disabled fast path would crush it).

Machine-independent ratios only; absolute trajectories live in
``BENCH_*.json`` and are gated by ``repro watchdog``.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro import telemetry
from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext
from repro.service import run_load
from repro.telemetry import tracing

EXPONENTS = (1, -1, 1)


def _run_action(*, cross_check: bool = False) -> float:
    """One toy group action on the simulator; returns wall seconds."""
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, cross_check=cross_check)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def test_disabled_trace_hooks_are_noops():
    """With telemetry off, every tracing hook bails on one boolean:
    200k hook groups (current_trace + request context + batch begin +
    kernel record) cost milliseconds, far below one toy action."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(200_000):
        assert tracing.current_trace() is None
        telemetry.record_kernel_run("fp_mul.reduced.ise", "replay",
                                    58, 33)
        assert tracing.begin_batch("field.mul", []) is None
    with tracing.request_trace("exchange", tenant="t") as ctx:
        assert ctx.node is None  # nodeless: nothing was recorded
    elapsed = time.perf_counter() - start
    print(f"\n=== 200k disabled tracing hook groups: "
          f"{elapsed*1e3:.1f} ms ===")
    assert elapsed < 2.0  # generous CI bound; well under 1 s locally


def test_traced_load_under_2x():
    """A traced ``repro load`` (capture, request/batch contexts,
    per-kernel cycle attribution, conservation check, summary) costs
    less than 2x the untraced load."""
    params = csidh_toy()

    def measure(*, trace: bool) -> float:
        async def run() -> float:
            start = time.perf_counter()
            report = await run_load(
                params, exchanges=4, concurrency=4, tenants=1,
                engine="replay", seed=0, trace=trace)
            assert report.divergences == 0
            assert (report.trace_summary is not None) == trace
            return time.perf_counter() - start

        return asyncio.run(run())

    measure(trace=False)  # warm kernel/runner pools
    untraced = _best_of(3, lambda: measure(trace=False))
    traced = _best_of(3, lambda: measure(trace=True))
    ratio = traced / untraced
    print(f"\n=== toy load x4: untraced {untraced*1e3:.1f} ms, "
          f"traced {traced*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0


def test_replay_speedup_floor_with_tracing_installed():
    """PR 1 floor, re-pinned after PR 7: replay beats the interpreter
    by at least 3x on the toy group action with tracing installed but
    disabled (was ~6x before any instrumentation)."""
    assert not telemetry.enabled()
    _run_action()  # warm the kernel/runner pools
    _run_action(cross_check=True)
    replay = _best_of(3, _run_action)
    interpreter = _best_of(3, lambda: _run_action(cross_check=True))
    speedup = interpreter / replay
    print(f"\n=== tracing-off toy action: replay {replay*1e3:.1f} ms,"
          f" interpreter {interpreter*1e3:.1f} ms,"
          f" speedup {speedup:.1f}x ===")
    assert speedup > 3.0
