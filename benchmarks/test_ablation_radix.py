"""E13 — ablation: why 57 bits per limb?

The paper picks radix 2^57 for the reduced representation without a
sweep.  This experiment reproduces the tradeoff at the word-operation
level (the reference MPI layer is fully radix-generic):

* fewer bits per limb => more limbs => quadratically more MACs;
* 57..62 bits all give 9 limbs for a 511-bit prime, so the MAC count is
  flat there — but headroom shrinks from 7 bits to 2, limiting how many
  delayed-carry additions fit before a canonicalisation pass;
* at 64 bits (full radix) delayed carries vanish entirely.

57 = 64 - 7 is the largest width that keeps 9 limbs *and* at least
seven headroom bits (supporting ~2^7 deferred accumulations — enough
for the 9-limb product-scanning columns and the Fp-add chains).
"""

from __future__ import annotations

import pytest

from repro.mpi.arithmetic import product_scanning_mul
from repro.mpi.representation import reduced_radix_for

_ISA_MAC_COST = 6          # Listing 2
_ALIGN_COST_PER_COLUMN = 5  # mask/store/realign


def _mul_cost_model(bits: int, prime_bits: int = 511) -> tuple[int, int]:
    """(limbs, estimated instruction cost) of one 511-bit multiply."""
    radix = reduced_radix_for(prime_bits, bits)
    one = radix.to_limbs(1)
    work = product_scanning_mul(radix, one, one).work
    columns = 2 * radix.limbs - 1
    cost = work.macs * _ISA_MAC_COST + columns * _ALIGN_COST_PER_COLUMN
    return radix.limbs, cost


def test_radix_sweep(benchmark):
    sweep = benchmark(
        lambda: {bits: _mul_cost_model(bits) for bits in range(50, 64)})
    print("\n=== E13: limb-width sweep (511-bit multiply) ===")
    print(f"{'bits':>5s}{'limbs':>7s}{'est. instr':>12s}{'headroom':>10s}")
    for bits, (limbs, cost) in sweep.items():
        print(f"{bits:>5d}{limbs:>7d}{cost:>12d}{64 - bits:>10d}")

    # 57 bits is on the 9-limb plateau ...
    assert sweep[57][0] == 9
    # ... which beats every 10-limb width
    assert all(sweep[57][1] < sweep[bits][1] for bits in range(50, 57))
    # ... and within the plateau the cost is flat, so headroom decides:
    assert sweep[57][1] == sweep[62][1]


def test_headroom_requirement():
    """9-limb product-scanning columns accumulate up to 9 products, so
    the high accumulator word grows by up to log2(9) < 4 bits beyond a
    single product — 57-bit limbs (7 headroom bits) cover this with
    margin, while 62-bit limbs (2 bits) would overflow the paper's
    delayed-carry Fp-addition chains after 3 deferred additions."""
    deferred_adds_57 = 2 ** (64 - 57 - 1)  # sums of 57+1-bit limbs
    deferred_adds_62 = 2 ** (64 - 62 - 1)
    assert deferred_adds_57 >= 9 > deferred_adds_62


def test_full_radix_is_the_mac_minimum():
    """64-bit digits minimise MACs outright (8x8) — the reason the
    ISA-only comparison favours full radix (Table 4, left columns)."""
    limbs_57, _ = _mul_cost_model(57)
    assert limbs_57 == 9
    from repro.mpi.representation import full_radix_for
    assert full_radix_for(511).limbs == 8
