"""E2 — Table 4 rows 1-8: cycle counts of the field-arithmetic kernels.

Each benchmark runs one kernel variant on the ISA simulator under the
Rocket timing model; the simulated cycle counts (the paper's metric)
are printed as the regenerated table.
"""

from __future__ import annotations

import pytest

from repro.eval.paperdata import PAPER_TABLE4
from repro.eval.table4 import render_table4
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS


@pytest.mark.parametrize("operation", TABLE4_OPERATIONS)
@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_kernel_cycles(benchmark, kernels, rng, operation, variant):
    kernel = kernels[f"{operation}.{variant}"]
    runner = KernelRunner(kernel)
    values = kernel.sampler(rng)

    run = benchmark(runner.run, *values)

    paper = PAPER_TABLE4[operation][variant]
    benchmark.extra_info["simulated_cycles"] = run.cycles
    benchmark.extra_info["paper_cycles"] = paper
    benchmark.extra_info["instructions"] = run.instructions
    # shape guard: within 2x of the paper's absolute cell
    assert 0.5 < run.cycles / paper < 2.0


def test_render_full_table4(table4):
    print("\n=== E2 / Table 4 rows 1-8: cycles per operation "
          "(ours vs. paper) ===")
    print(render_table4(table4))
    # the central reversal: ISEs make reduced radix the faster choice
    assert table4.cycles["fp_mul"]["reduced.ise"] \
        < table4.cycles["fp_mul"]["full.ise"]
    assert table4.cycles["fp_mul"]["full.isa"] \
        < table4.cycles["fp_mul"]["reduced.isa"]
