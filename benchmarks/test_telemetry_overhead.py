"""Telemetry overhead guard: instrumentation must not cost the replay
path its speed.

PR 1 made the replay engine ~6x faster than the interpreter on the
toy group action; PR 2 put telemetry call sites on that hot path
(one ``record_kernel_run`` per kernel execution plus span bookkeeping
in the protocol layers).  The contract is that **disabled** telemetry
stays within 5% of the uninstrumented PR 1 numbers.  Absolute
wall-clock baselines do not transfer between machines, so the guard is
expressed through three machine-independent proxies:

* the replay-vs-interpreter speedup on the toy group action keeps a
  comfortable floor (it was ~6x before instrumentation; losing the
  disabled fast path would crush it);
* the disabled instrumentation helpers are O(one boolean test) — a
  large batch of calls completes in far less time than even 5% of one
  toy group action;
* enabling telemetry costs only a bounded factor, so the *disabled*
  delta (strictly smaller than the enabled one) is bounded too.

The absolute trajectory PR over PR lives in ``BENCH_protocol.json``
(written by ``repro profile --bench-out``, uploaded by CI), where
same-machine numbers are comparable.
"""

from __future__ import annotations

import random
import time

from repro import telemetry
from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext

EXPONENTS = (1, -1, 1)


def _run_action(*, cross_check: bool = False) -> float:
    """One toy group action on the simulator; returns wall seconds."""
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, cross_check=cross_check)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def test_replay_speedup_floor():
    """The PR 1 fast path survives instrumentation: replay beats the
    interpreter by at least 3x on the toy group action (was ~6x)."""
    assert not telemetry.enabled()
    _run_action()  # warm the kernel/runner pools
    _run_action(cross_check=True)
    replay = _best_of(3, _run_action)
    interpreter = _best_of(3, lambda: _run_action(cross_check=True))
    speedup = interpreter / replay
    print(f"\n=== telemetry-off toy action: replay {replay*1e3:.1f} ms,"
          f" interpreter {interpreter*1e3:.1f} ms,"
          f" speedup {speedup:.1f}x ===")
    assert speedup > 3.0


def test_disabled_record_calls_are_noops():
    """The disabled fast path is a single boolean test per call: a
    batch of 200k instrumentation calls costs milliseconds — orders of
    magnitude below 5% of one toy group action (~100 ms)."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(200_000):
        telemetry.record_kernel_run("fp_mul.reduced.ise", "replay",
                                    58, 33)
        telemetry.add_cycles(58)
        with telemetry.span("isogeny", degree=3):
            pass
    elapsed = time.perf_counter() - start
    print(f"\n=== 200k disabled telemetry call groups: "
          f"{elapsed*1e3:.1f} ms ===")
    assert elapsed < 2.0  # generous CI bound; ~0.1 s locally


def test_enabled_overhead_bounded():
    """Even fully enabled, telemetry costs a bounded factor on the
    replayed group action (the disabled delta is strictly smaller)."""
    _run_action()  # warm pools
    disabled = _best_of(3, _run_action)

    def enabled_run() -> float:
        params = csidh_toy()
        field = SimulatedFieldContext(params.p)
        with telemetry.capture():
            start = time.perf_counter()
            group_action(params, field, 0, EXPONENTS,
                         random.Random(3))
            return time.perf_counter() - start

    enabled = _best_of(3, enabled_run)
    ratio = enabled / disabled
    print(f"\n=== toy action: telemetry off {disabled*1e3:.1f} ms, "
          f"on {enabled*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0
