"""E4 — ablation: product scanning vs. Karatsuba for 512-bit operands.

The paper (Sect. 4): "Our experiments showed that product-scanning is
more efficient than Karatsuba's algorithm for MPI multiplication."  We
reproduce the word-level work comparison behind that choice: Karatsuba
saves MACs but pays in carried additions, which cost ~3 instructions
each on carry-flag-less RV64GC.
"""

from __future__ import annotations

import pytest

from repro.mpi.arithmetic import karatsuba_mul, product_scanning_mul
from repro.mpi.representation import CSIDH512_FULL, CSIDH512_REDUCED

#: RV64GC instruction cost of one MAC (Listing 1) and one carried add.
_ISA_MAC_COST = 8
_ISA_CARRIED_ADD_COST = 3


def _instruction_estimate(work) -> int:
    return (work.macs * _ISA_MAC_COST
            + work.word_adds * _ISA_CARRIED_ADD_COST
            + work.word_shifts)


@pytest.mark.parametrize("radix", [CSIDH512_FULL, CSIDH512_REDUCED],
                         ids=["full", "reduced"])
def test_product_scanning_beats_karatsuba(benchmark, radix, rng, p512):
    a = rng.randrange(p512)
    b = rng.randrange(p512)
    la, lb = radix.to_limbs(a), radix.to_limbs(b)

    ps = benchmark(product_scanning_mul, radix, la, lb)
    ka = karatsuba_mul(radix, la, lb)
    assert radix.from_limbs(ps.limbs) == radix.from_limbs(ka.limbs)

    ps_cost = _instruction_estimate(ps.work)
    ka_cost = _instruction_estimate(ka.work)
    print(f"\n=== E4 ({radix.name}): product scanning "
          f"{ps.work.macs} MACs/{ps.work.word_adds} adds "
          f"~{ps_cost} instr  vs  Karatsuba "
          f"{ka.work.macs} MACs/{ka.work.word_adds} adds "
          f"~{ka_cost} instr ===")
    if radix is CSIDH512_FULL:
        # at 8 limbs Karatsuba genuinely saves MACs (36 vs 64) ...
        assert ka.work.macs < ps.work.macs
    # ... but is not cheaper overall at 512 bits on this ISA (and the
    # odd 9-limb reduced-radix split is worse on every axis)
    assert ka_cost >= ps_cost * 0.95


def test_karatsuba_wins_asymptotically(rng):
    """Sanity: at large sizes Karatsuba's MAC count dominates, so the
    paper's 512-bit conclusion is a size-specific crossover, not a
    universal one."""
    from repro.mpi.representation import Radix
    radix = Radix(64, 64)  # 4096-bit operands
    value = (1 << 4000) + 12345
    limbs = radix.to_limbs(value)
    ps = product_scanning_mul(radix, limbs, limbs)
    ka = karatsuba_mul(radix, limbs, limbs, threshold=8)
    assert _instruction_estimate(ka.work) < _instruction_estimate(
        ps.work)
