"""Supporting analysis — where the CSIDH-512 field work goes.

Prints the per-phase breakdown of one group action (sampling/Legendre,
cofactor ladders, kernel ladders, isogenies, normalisation) plus the
derived curve-operation cycle costs — the intermediate layer between
Table 4 and the group-action row.
"""

from __future__ import annotations

import random

import pytest

from repro.csidh.breakdown import group_action_breakdown
from repro.eval.curveops import curve_op_costs


def test_csidh512_phase_breakdown(benchmark, params512):
    key = params512.sample_private_key(random.Random(8))

    breakdown = benchmark.pedantic(
        group_action_breakdown, args=(params512, key),
        kwargs={"seed": 9}, rounds=1, iterations=1)

    print("\n=== CSIDH-512 group action, field work by phase ===")
    print(breakdown.report())

    fractions = breakdown.fractions()
    # scalar multiplications + quadraticity tests carry the bulk
    assert (fractions["cofactor"] + fractions["kernel"]
            + fractions["sampling"]) > 0.5
    # the per-round normalisation (one inversion each) stays secondary
    assert fractions["normalise"] < 0.35
    # everything accounted for
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_curve_op_layer(benchmark, table4):
    costs = benchmark(curve_op_costs, table4)
    print("\n=== curve-operation cycle costs (from measured Table 4) "
          "===")
    print(costs.render())
    ladder_full = costs.ladder_cost("full.isa", 511)
    ladder_ise = costs.ladder_cost("reduced.ise", 511)
    print(f"511-bit ladder: {ladder_full:,} -> {ladder_ise:,} cycles "
          f"({ladder_full / ladder_ise:.2f}x)")
    assert ladder_ise < ladder_full
