"""Overhead guard for the hardened ("checked") execution layer.

The acceptance contract of the robustness PR:

* ``checked=True`` at the default sampling interval costs **< 2x** on
  the toy group action relative to the plain replay path — the
  hardening is cheap enough to leave on for production-style runs;
* ``checked=False`` is a no-op: the hot path pays exactly one
  ``is None`` test per kernel run (asserted structurally: a plain
  runner carries no hardening state at all), so the PR 1 replay
  speedup guard keeps its floor untouched.
"""

from __future__ import annotations

import random
import time

from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext
from repro.kernels import registry
from repro.rv64.pipeline import ROCKET_CONFIG

EXPONENTS = (1, -1, 1)


def _run_action(*, checked: bool = False) -> float:
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, checked=checked)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def test_checked_default_sampling_under_2x():
    """Hardening at the default sampling rate (one verified operation
    in 8) stays under 2x the unhardened replay path."""
    _run_action()                 # warm plain pools
    _run_action(checked=True)     # warm checked pools
    plain = _best_of(3, _run_action)
    checked = _best_of(3, lambda: _run_action(checked=True))
    ratio = checked / plain
    print(f"\n=== toy action: plain {plain*1e3:.1f} ms, "
          f"checked {checked*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0


def test_disabled_hardening_is_structurally_free():
    """checked=False leaves the hot path with a single ``is None``
    test: no hardening object, no reference context, no sampling
    clock anywhere on a plain context or its pooled runners."""
    registry.clear_runner_pool()
    params = csidh_toy()
    field = SimulatedFieldContext(params.p)
    assert not field.checked
    assert field._checked is None
    assert field._reference is None
    for slot in ("_mul", "_sqr", "_add", "_sub"):
        assert getattr(field, slot)._hardening is None
    # and the pool never hands a hardened runner to a plain context
    hardened = registry.cached_runner(
        params.p, "fp_mul.reduced.ise", ROCKET_CONFIG,
        checked=True, check_interval=1)
    assert hardened is not field._mul
    assert field._mul._hardening is None
    registry.clear_runner_pool()
