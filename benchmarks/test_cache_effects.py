"""E14 — cache sensitivity: is the warm-cache assumption sound?

Table 4 reports steady-state cycle counts.  Our default timing model
treats the 16 kB caches as warm; this experiment enables the cache
models and measures (a) the cold-start penalty of one kernel call and
(b) the steady-state behaviour over repeated calls, confirming that
the fully-unrolled kernels and their working sets fit the Rocket-sized
caches comfortably (fp_mul.full.isa is ~5.3 kB of code + ~0.4 kB of
data against 16 kB I$/D$).
"""

from __future__ import annotations

import pytest

from repro.kernels.runner import KernelRunner
from repro.rv64.cache import CacheConfig
from repro.rv64.pipeline import PipelineConfig


def _cached_config() -> PipelineConfig:
    return PipelineConfig(icache=CacheConfig(), dcache=CacheConfig())


def test_cold_vs_warm_kernel(benchmark, kernels, rng, p512):
    kernel = kernels["fp_mul.full.isa"]
    a, b = rng.randrange(p512), rng.randrange(p512)

    warm_runner = KernelRunner(kernel)
    warm = warm_runner.run(a, b).cycles

    def cold_run():
        return KernelRunner(
            kernel, pipeline_config=_cached_config()).run(a, b)

    cold = benchmark.pedantic(cold_run, rounds=1, iterations=1).cycles
    penalty = cold - warm
    print(f"\n=== E14: fp_mul cold {cold} vs warm {warm} cycles "
          f"(+{penalty}, {100 * penalty / warm:.0f}%) ===")
    assert cold > warm
    # the cold-start penalty is bounded: ~85 I$ line fills plus a few
    # data lines at 20 cycles each — the same order as one call
    assert penalty < 1.5 * warm


def test_steady_state_has_no_misses(kernels, rng, p512):
    """After the first call every further call runs entirely from the
    caches — validating Table 4's steady-state assumption."""
    kernel = kernels["fp_mul.reduced.ise"]
    runner = KernelRunner(kernel, pipeline_config=_cached_config())
    a, b = rng.randrange(p512), rng.randrange(p512)

    first = runner.run(a, b)
    model = runner.machine.pipeline
    model.icache.reset_stats()
    model.dcache.reset_stats()
    second = runner.run(a, b)

    assert model.icache.misses == 0
    assert model.dcache.misses == 0
    assert second.cycles < first.cycles


def test_kernels_fit_the_icache(kernels):
    """Every generated CSIDH-512 kernel fits the 16 kB I$."""
    for name, kernel in kernels.items():
        runner = KernelRunner(kernel)
        assert runner.code_bytes < 16 * 1024, (
            f"{name}: {runner.code_bytes} bytes"
        )
