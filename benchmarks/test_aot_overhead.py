"""Speedup guards for the aot execution tier and its artifact cache.

The acceptance contract of the aot PR:

* the aot engine runs the toy group action at least **2x** faster than
  the jit engine — whole-kernel fusion must strip the per-instruction
  dispatch the jit tier still pays;
* constructing runners against a **warm** artifact cache is faster
  than a cold construction (trace + symbolic execution + codegen are
  skipped; the stored thunk source is just re-bound);
* the existing ladder floors stay intact — jit >= 2x over replay,
  replay > 3x over the interpreter, checked mode < 2x over plain —
  so the new top rung cannot silently compress the rungs below it.
"""

from __future__ import annotations

import random
import time

from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner

EXPONENTS = (1, -1, 1)


def _run_action(*, engine: str | None = None,
                checked: bool = False) -> float:
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, engine=engine,
                                  checked=checked)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def test_aot_at_least_2x_over_jit():
    """The fused tier halves (at least) the jit wall time on a full
    toy group action."""
    _run_action(engine="jit")   # warm pools + jit caches
    _run_action(engine="aot")   # warm pools + aot caches
    # interleave the two measurements so a load spike hits both sides
    jit = aot = float("inf")
    for _ in range(4):
        jit = min(jit, _run_action(engine="jit"))
        aot = min(aot, _run_action(engine="aot"))
    ratio = jit / aot
    print(f"\n=== toy action: jit {jit*1e3:.1f} ms, "
          f"aot {aot*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 2.0


def _construct_all(kernels) -> float:
    start = time.perf_counter()
    for kernel in kernels.values():
        KernelRunner(kernel, engine="aot")
    return time.perf_counter() - start


def test_warm_artifact_cache_beats_cold_start(monkeypatch, tmp_path):
    """Binding persisted thunks is faster than re-tracing and re-fusing
    the whole kernel matrix from scratch."""
    kernels = cached_kernels(csidh_toy().p)

    cold = float("inf")
    for index in range(3):
        monkeypatch.setenv("REPRO_AOT_CACHE",
                           str(tmp_path / f"cold{index}"))
        cold = min(cold, _construct_all(kernels))

    warm_dir = tmp_path / "warm"
    monkeypatch.setenv("REPRO_AOT_CACHE", str(warm_dir))
    _construct_all(kernels)  # populate the cache
    warm = _best_of(3, lambda: _construct_all(kernels))

    ratio = cold / warm
    print(f"\n=== {len(kernels)} runners: cold {cold*1e3:.1f} ms, "
          f"warm {warm*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert warm < cold


def test_jit_floor_over_replay_intact():
    """PR 4's guard: jit stays >=2x faster than replay."""
    _run_action(engine="replay")
    _run_action(engine="jit")
    replay = jit = float("inf")
    for _ in range(4):
        replay = min(replay, _run_action(engine="replay"))
        jit = min(jit, _run_action(engine="jit"))
    ratio = replay / jit
    print(f"\n=== toy action: replay {replay*1e3:.1f} ms, "
          f"jit {jit*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 2.0


def test_replay_floor_over_interpreter_intact():
    """PR 1's guard: replay stays >3x faster than the interpreter."""
    _run_action(engine="interpreter")
    _run_action(engine="replay")
    interp = _best_of(2, lambda: _run_action(engine="interpreter"))
    replay = _best_of(3, lambda: _run_action(engine="replay"))
    ratio = interp / replay
    print(f"\n=== toy action: interpreter {interp*1e3:.1f} ms, "
          f"replay {replay*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 3.0


def test_checked_mode_guard_intact():
    """PR 3's guard: hardening still costs < 2x over plain replay."""
    _run_action()
    _run_action(checked=True)
    plain = _best_of(3, _run_action)
    checked = _best_of(3, lambda: _run_action(checked=True))
    ratio = checked / plain
    print(f"\n=== toy action: plain {plain*1e3:.1f} ms, "
          f"checked {checked*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0
