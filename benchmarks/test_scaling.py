"""E9 — scaling: do the ISEs keep paying off beyond CSIDH-512?

The paper's introduction positions the proposal as ISEs for *flexible
(i.e., scalable) MPI arithmetic*, and Sect. 2 lists CSIDH-1024/1792 as
the larger instantiations.  The kernel generators are parametric in the
operand width (beyond ~640 bits they switch to operand-streaming code,
since the register file no longer holds both operands); this experiment
regenerates the Fp-multiplication row at 512 and ~1024 bits.

Expected shape: the MAC count grows quadratically while the
carry/bookkeeping overhead grows linearly, so the relative ISE benefit
*increases* with the operand width.
"""

from __future__ import annotations

import pytest

from repro.csidh.parameters import csidh_1024_like
from repro.kernels.registry import build_kernel, make_contexts
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import ALL_VARIANTS


@pytest.fixture(scope="module")
def p1024():
    return csidh_1024_like().p


@pytest.fixture(scope="module")
def contexts1024(p1024):
    return make_contexts(p1024)


def _measure_fp_mul(modulus, contexts, rng) -> dict[str, int]:
    cycles = {}
    for variant in ALL_VARIANTS:
        ctx = contexts[0] if variant.startswith("full.") else contexts[1]
        kernel = build_kernel("fp_mul", variant, ctx)
        runner = KernelRunner(kernel)
        cycles[variant] = runner.run(*kernel.sampler(rng)).cycles
    return cycles


def test_fp_mul_scaling(benchmark, p512, p1024, contexts1024, rng):
    from repro.kernels.registry import make_contexts as mk

    c512 = _measure_fp_mul(p512, mk(p512), rng)
    c1024 = benchmark.pedantic(
        _measure_fp_mul, args=(p1024, contexts1024, rng),
        rounds=1, iterations=1)

    s512 = c512["full.isa"] / c512["reduced.ise"]
    s1024 = c1024["full.isa"] / c1024["reduced.ise"]
    print(f"\n=== E9: Fp-mul cycles 512-bit {c512} ===")
    print(f"=== E9: Fp-mul cycles 1024-bit {c1024} ===")
    print(f"=== E9: reduced-ISE speedup {s512:.2f}x @512 -> "
          f"{s1024:.2f}x @1024 ===")
    # the ISE benefit grows with the operand width
    assert s1024 > s512 > 1.5
    # and the radix reversal persists at 1024 bits
    assert c1024["reduced.ise"] < c1024["full.ise"]
    assert c1024["full.isa"] < c1024["reduced.isa"]


def test_streaming_kernels_verify_at_1024(contexts1024, rng):
    """Functional check of the operand-streaming code paths (every run
    is compared against the big-integer reference)."""
    full, reduced = contexts1024
    assert full.radix.limbs == 16 and reduced.radix.limbs == 18
    for op in ("int_mul", "int_sqr", "mont_redc", "fp_add", "fp_sub"):
        for variant in ("full.isa", "reduced.ise"):
            ctx = full if variant.startswith("full.") else reduced
            kernel = build_kernel(op, variant, ctx)
            runner = KernelRunner(kernel)
            for _ in range(2):
                runner.run(*kernel.sampler(rng))


def test_cycles_scale_quadratically(p512, p1024, rng):
    """int_mul cycles should grow ~4x from 512 to 1024 bits (MAC count
    64 -> 256), while fp_add grows only ~2x (linear)."""
    from repro.kernels.registry import make_contexts as mk

    full512 = mk(p512)[0]
    full1024 = mk(p1024)[0]
    mul512 = build_kernel("int_mul", "full.isa", full512)
    mul1024 = build_kernel("int_mul", "full.isa", full1024)
    add512 = build_kernel("fp_add", "full.isa", full512)
    add1024 = build_kernel("fp_add", "full.isa", full1024)

    mul_ratio = (KernelRunner(mul1024).run(*mul1024.sampler(rng)).cycles
                 / KernelRunner(mul512).run(*mul512.sampler(rng)).cycles)
    add_ratio = (KernelRunner(add1024).run(*add1024.sampler(rng)).cycles
                 / KernelRunner(add512).run(*add512.sampler(rng)).cycles)
    print(f"\n=== E9: 1024/512 cycle ratios: int_mul {mul_ratio:.1f}x "
          f"(quadratic), fp_add {add_ratio:.1f}x (linear) ===")
    assert 3.3 < mul_ratio < 6.0
    assert 1.5 < add_ratio < 3.0


def test_group_action_speedup_at_1024(benchmark, p1024, contexts1024,
                                      rng):
    """Compose a full ~1024-bit group action: instrumented op counts x
    measured 1024-bit kernel costs.  The headline speedup grows with
    the security level — the forward-looking claim behind the paper's
    CSIDH-1024/1792 mention."""
    import random

    from repro.csidh.opcount import count_group_action
    from repro.csidh.parameters import csidh_1024_like
    from repro.field.counters import OpCosts

    params = csidh_1024_like()
    key = params.sample_private_key(random.Random(3))

    profile = benchmark.pedantic(
        count_group_action, args=(params, key),
        kwargs={"seed": 5}, rounds=1, iterations=1)

    costs = {}
    for variant in ("full.isa", "reduced.ise"):
        ctx = contexts1024[0] if variant.startswith("full.") \
            else contexts1024[1]
        per_op = {}
        for op in ("fp_mul", "fp_sqr", "fp_add", "fp_sub"):
            kernel = build_kernel(op, variant, ctx)
            per_op[op] = KernelRunner(kernel).run(
                *kernel.sampler(rng)).cycles
        costs[variant] = OpCosts.from_mapping(per_op, label=variant)

    cycles = {v: profile.ops.cycles(c) for v, c in costs.items()}
    speedup = cycles["full.isa"] / cycles["reduced.ise"]
    print(f"\n=== E9: ~1024-bit group action: "
          f"{cycles['full.isa']:,} -> {cycles['reduced.ise']:,} "
          f"cycles, speedup {speedup:.2f}x (512-bit: ~1.76x) ===")
    assert speedup > 1.75
