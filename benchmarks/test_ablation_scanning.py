"""E15 — ablation: product scanning vs. operand scanning.

The paper's Sect. 1 introduces both schoolbook multiplication orders;
its kernels use product scanning.  The row-wise (operand-scanning) form
must keep the partial product in memory — every result digit is
re-loaded and re-stored once per row — which squanders RV64's large
register file.  Both kernels run here head to head.
"""

from __future__ import annotations

import pytest


@pytest.mark.parametrize("variant", ["full.isa", "full.ise"])
def test_product_beats_operand_scanning(benchmark, kernels, rng, p512,
                                        variant):
    from repro.kernels.runner import KernelRunner

    ps = KernelRunner(kernels[f"int_mul.{variant}"])
    os_ = KernelRunner(kernels[f"int_mul_os.{variant}"])
    a, b = rng.randrange(p512), rng.randrange(p512)

    os_run = benchmark(os_.run, a, b)
    ps_run = ps.run(a, b)
    assert os_run.value == ps_run.value == a * b
    print(f"\n=== E15 ({variant}): product scanning {ps_run.cycles} "
          f"vs operand scanning {os_run.cycles} cycles ===")
    assert ps_run.cycles < os_run.cycles


def test_memory_traffic_explains_the_gap(kernels):
    """Operand scanning's defect is quantifiable: ~l^2 extra loads and
    stores versus product scanning's single store per digit."""
    ps = kernels["int_mul.full.isa"]
    os_ = kernels["int_mul_os.full.isa"]
    l = ps.context.radix.limbs
    assert os_.static_counts["sd"] >= l * l       # one store per step
    assert ps.static_counts["sd"] == 2 * l        # one per digit
    assert os_.static_counts["ld"] > ps.static_counts["ld"]
