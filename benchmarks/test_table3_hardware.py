"""E1 — Table 3: hardware cost of the base core and both extended cores.

Regenerates the LUT/Reg/DSP/CMOS table from the structural area model
and prints it next to the paper's synthesis results.
"""

from __future__ import annotations

from repro.eval.paperdata import PAPER_TABLE3
from repro.eval.table3 import (
    measure_table3,
    model_matches_paper,
    overhead_summary,
    render_table3,
)


def test_table3_regeneration(benchmark):
    rows = benchmark(measure_table3)
    assert [row.key for row in rows] == ["base", "full", "reduced"]
    print("\n=== E1 / Table 3: hardware cost (model vs. paper) ===")
    print(render_table3())


def test_table3_overheads_match_headline(benchmark):
    summary = benchmark(overhead_summary)
    print("\n=== E1: relative overheads (paper: ~4-9% LUTs, 9-11% Regs,"
          " ~10% overall) ===")
    for key, pct in summary.items():
        print(f"{key:8s} LUTs {pct['luts']:+5.1f}%  "
              f"Regs {pct['regs']:+5.1f}%  DSPs {pct['dsps']:+5.1f}%  "
              f"CMOS {pct['gates']:+5.1f}%")
    assert summary["full"]["dsps"] == 0
    assert summary["reduced"]["luts"] > summary["full"]["luts"]


def test_table3_absolute_agreement(benchmark):
    assert benchmark(model_matches_paper, tolerance=0.15)
    for row in measure_table3():
        paper = PAPER_TABLE3[row.key]
        got = row.tuple
        rel = [abs(g - w) / w for g, w in zip(got, paper) if w]
        print(f"{row.key:8s} max deviation from paper: "
              f"{100 * max(rel):.1f}%")


def test_e12_xmul_does_not_extend_critical_path(benchmark):
    """Sect 3.3: XMUL keeps the 50 MHz clock — its stage-2 logic stays
    shallower than the base multiplier array stage."""
    from repro.hw.timing import (
        base_multiplier_stage,
        critical_path_report,
        xmul_extends_critical_path,
    )

    extends = benchmark(xmul_extends_critical_path)
    print(f"\n=== E12: stage delays (ns): {critical_path_report()} "
          f"(budget: 20 ns @ 50 MHz) ===")
    assert not extends
    assert base_multiplier_stage().meets()
