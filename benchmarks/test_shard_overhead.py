"""Speedup and overhead guards for the sharded execution subsystem.

The acceptance contract of the sharding PR:

* on a multi-core host, a 2-worker sharded toy run beats the same
  backlog on a single worker by at least **1.3x** (the point of the
  subsystem is wall-clock, so the parallel win must be real, not just
  theoretical) — skipped on single-core containers where no parallel
  speedup is physically available;
* the sharded machinery itself stays cheap: executing the whole toy
  stream as **one shard in-process** costs < **1.5x** the monolithic
  jit group action (the difference is the per-op reference check and
  span bucketing — bounded, not multiplicative);
* the PR 1/3/4 speedup floors stay intact (interpreter/replay > 3x,
  jit >= 2x over replay, checked < 2x over plain) — sharding must not
  have perturbed the engine ladder it fans out over.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext
from repro.shard.plan import build_plan
from repro.shard.scheduler import ShardExecutor, ShardRunStats
from repro.shard.worker import ShardRunner

EXPONENTS = (1, -1, 1)


def _run_action(*, engine: str | None = None,
                checked: bool = False) -> float:
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, engine=engine,
                                  checked=checked)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def _run_executor(plan, workers: int) -> float:
    executor = ShardExecutor(plan, workers=workers)
    stats = ShardRunStats()
    start = time.perf_counter()
    records = executor.run(stats=stats)
    elapsed = time.perf_counter() - start
    assert len(records) == plan.shards
    return elapsed


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs >= 2 cores")
def test_two_workers_at_least_1_3x_over_one():
    """Two worker processes finish the toy backlog at least 1.3x
    faster than one — the subsystem's reason to exist."""
    plan, _ = build_plan("toy", shards=6, seed=3)
    _run_executor(plan, 1)          # warm fork/kernel/jit caches
    _run_executor(plan, 2)
    # interleave the two measurements so a load spike hits both sides
    single = dual = float("inf")
    for _ in range(3):
        single = min(single, _run_executor(plan, 1))
        dual = min(dual, _run_executor(plan, 2))
    ratio = single / dual
    print(f"\n=== toy x6 shards: 1 worker {single*1e3:.1f} ms, "
          f"2 workers {dual*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 1.3


def test_single_shard_overhead_under_1_5x_of_monolithic():
    """The whole toy stream as one in-process shard (simulate + verify
    each op against the pure-Python reference + bucket per-span) costs
    < 1.5x the plain monolithic jit action.

    Both sides run the *same* group action — the monolithic leg uses
    the plan's seed discipline (sampled private key), not the fixed
    benchmark exponents, so the op streams are identical.
    """
    params = csidh_toy()
    plan, stream = build_plan("toy", shards=1, seed=3)

    def _run_mono() -> float:
        rng = random.Random(plan.seed)
        exponents = params.sample_private_key(rng)
        field = SimulatedFieldContext(params.p, engine="jit")
        start = time.perf_counter()
        group_action(params, field, 0, exponents, rng)
        return time.perf_counter() - start

    def _run_shard() -> float:
        runner = ShardRunner(plan, engine="jit", stream=stream)
        start = time.perf_counter()
        record = runner.execute(0)
        elapsed = time.perf_counter() - start
        assert record["divergences"] == 0
        return elapsed

    _run_mono()                     # warm pools + jit caches
    _run_shard()
    # interleave the two measurements so a load spike hits both sides
    mono = shard = float("inf")
    for _ in range(4):
        mono = min(mono, _run_mono())
        shard = min(shard, _run_shard())
    ratio = shard / mono
    print(f"\n=== toy action: monolithic jit {mono*1e3:.1f} ms, "
          f"single shard {shard*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 1.5


def test_replay_floor_over_interpreter_intact():
    """PR 1's guard: replay stays >3x faster than the interpreter."""
    _run_action(engine="interpreter")
    _run_action(engine="replay")
    interp = _best_of(2, lambda: _run_action(engine="interpreter"))
    replay = _best_of(3, lambda: _run_action(engine="replay"))
    ratio = interp / replay
    print(f"\n=== toy action: interpreter {interp*1e3:.1f} ms, "
          f"replay {replay*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 3.0


def test_jit_floor_over_replay_intact():
    """PR 4's guard: jit stays >=2x faster than replay."""
    _run_action(engine="replay")
    _run_action(engine="jit")
    replay = jit = float("inf")
    for _ in range(4):
        replay = min(replay, _run_action(engine="replay"))
        jit = min(jit, _run_action(engine="jit"))
    ratio = replay / jit
    print(f"\n=== toy action: replay {replay*1e3:.1f} ms, "
          f"jit {jit*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 2.0


def test_checked_mode_guard_intact():
    """PR 3's guard: hardening still costs < 2x over plain replay."""
    _run_action()
    _run_action(checked=True)
    plain = _best_of(3, _run_action)
    checked = _best_of(3, lambda: _run_action(checked=True))
    ratio = checked / plain
    print(f"\n=== toy action: plain {plain*1e3:.1f} ms, "
          f"checked {checked*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0
