"""Supporting experiment — constant-time verification of every kernel.

The paper claims its F_p assembly routines are constant time.  For each
Table-4 kernel we verify trace-equivalence across random + boundary
operands: identical pc streams, identical memory-address streams,
identical cycle counts.
"""

from __future__ import annotations

import pytest

from repro.analysis.ct import boundary_inputs, verify_constant_time
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_all_kernels_constant_time(benchmark, kernels, variant):
    reports = []

    def verify_all():
        out = []
        for operation in TABLE4_OPERATIONS:
            kernel = kernels[f"{operation}.{variant}"]
            out.append(verify_constant_time(
                kernel, samples=3,
                extra_inputs=boundary_inputs(kernel)))
        return out

    reports = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    failures = [r for r in reports if not r.constant_time]
    print(f"\n=== CT ({variant}): {len(reports)} kernels verified "
          f"constant-time, {len(failures)} failures ===")
    assert not failures, failures[0].detail


def test_group_action_cycle_model_is_data_independent(kernels, rng):
    """Because every kernel is constant time, the composed group-action
    cycle count depends only on the op counts, never on key values —
    the property that justifies Table 4's single number per variant."""
    kernel = kernels["fp_mul.reduced.ise"]
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner(kernel)
    p = kernel.context.modulus
    cycles = {
        runner.run(rng.randrange(p), rng.randrange(p)).cycles
        for _ in range(5)
    }
    assert len(cycles) == 1
