"""Speedup guards for the jit execution tier and the batched API.

The acceptance contract of the jit PR:

* the jit engine runs the toy group action at least **2x** faster than
  the replay engine (which itself holds the PR 1 floor of >3x over the
  interpreter — re-asserted here so the ladder cannot silently
  compress);
* ``run_batch`` on the replay engine beats looped single calls by at
  least **1.5x** on a small kernel, where the per-call marshalling
  overhead dominates (the jit tier's fused entry thunks already strip
  most of that from scalar calls, so its batch margin is structural,
  asserted as parity rather than a multiple);
* the PR 3 checked-mode guard (< 2x over plain replay) stays intact —
  the jit tier must not have perturbed the hardened path.
"""

from __future__ import annotations

import random
import time

from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.field.simulated import SimulatedFieldContext
from repro.kernels.registry import cached_runner

EXPONENTS = (1, -1, 1)


def _run_action(*, engine: str | None = None,
                checked: bool = False) -> float:
    params = csidh_toy()
    field = SimulatedFieldContext(params.p, engine=engine,
                                  checked=checked)
    start = time.perf_counter()
    group_action(params, field, 0, EXPONENTS, random.Random(3))
    return time.perf_counter() - start


def _best_of(n: int, run) -> float:
    return min(run() for _ in range(n))


def test_jit_at_least_2x_over_replay():
    """The code-generated tier halves (at least) the replay wall time
    on a full toy group action."""
    _run_action(engine="replay")   # warm pools + trace caches
    _run_action(engine="jit")      # warm pools + jit caches
    # interleave the two measurements so a load spike hits both sides
    replay = jit = float("inf")
    for _ in range(4):
        replay = min(replay, _run_action(engine="replay"))
        jit = min(jit, _run_action(engine="jit"))
    ratio = replay / jit
    print(f"\n=== toy action: replay {replay*1e3:.1f} ms, "
          f"jit {jit*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 2.0


def test_replay_floor_over_interpreter_intact():
    """PR 1's guard: replay stays >3x faster than the interpreter."""
    _run_action(engine="interpreter")
    _run_action(engine="replay")
    interp = _best_of(2, lambda: _run_action(engine="interpreter"))
    replay = _best_of(3, lambda: _run_action(engine="replay"))
    ratio = interp / replay
    print(f"\n=== toy action: interpreter {interp*1e3:.1f} ms, "
          f"replay {replay*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 3.0


def test_checked_mode_guard_intact():
    """PR 3's guard: hardening still costs < 2x over plain replay."""
    _run_action()
    _run_action(checked=True)
    plain = _best_of(3, _run_action)
    checked = _best_of(3, lambda: _run_action(checked=True))
    ratio = checked / plain
    print(f"\n=== toy action: plain {plain*1e3:.1f} ms, "
          f"checked {checked*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio < 2.0


def _time_batch_vs_loop(engine: str, n: int = 200):
    p = csidh_toy().p
    runner = cached_runner(p, "fp_add.reduced.ise", engine=engine)
    rng = random.Random(17)
    sets = [(rng.randrange(p), rng.randrange(p)) for _ in range(n)]
    runner.run_batch(sets[:4], check=False)      # warm compile caches
    [runner.run(*v, check=False) for v in sets[:4]]
    # interleave the two measurements so a load spike hits both sides
    loop = batch = float("inf")
    for _ in range(5):
        loop = min(loop, _timed(
            lambda: [runner.run(*v, check=False) for v in sets]))
        batch = min(batch, _timed(
            lambda: runner.run_batch(sets, check=False)))
    return loop, batch


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def test_replay_batch_at_least_1_5x_over_looped_singles():
    """Batching amortises per-call marshal/dispatch overhead: on the
    replay engine a small kernel gains >=1.5x."""
    loop, batch = _time_batch_vs_loop("replay")
    ratio = loop / batch
    print(f"\n=== fp_add replay x200: loop {loop*1e3:.1f} ms, "
          f"batch {batch*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 1.5


def test_jit_batch_no_slower_than_looped_singles():
    """The jit tier's scalar calls are already thunk-fused, so batch
    must at minimum not regress (small constant-factor tolerance for
    timer noise on a fast path)."""
    loop, batch = _time_batch_vs_loop("jit")
    ratio = loop / batch
    print(f"\n=== fp_add jit x200: loop {loop*1e3:.1f} ms, "
          f"batch {batch*1e3:.1f} ms ({ratio:.2f}x) ===")
    assert ratio > 0.9
