"""Supporting analysis — dynamic instruction mix of the Table-4 kernels.

Shows *why* the ISEs help: in the ISA-only kernels barely 20-25% of the
dynamic instructions are multiplies (the rest is carry bookkeeping);
the ISE kernels concentrate the work into fused MAC instructions.
"""

from __future__ import annotations

import pytest

from repro.analysis.static import MAC_MNEMONICS
from repro.kernels.runner import KernelRunner
from repro.rv64.tracing import Profiler


def _mac_fraction(kernels, name: str, rng) -> float:
    kernel = kernels[name]
    runner = KernelRunner(kernel)
    profiler = Profiler(kernel.isa).attach(runner.machine)
    runner.run(*kernel.sampler(rng))
    return profiler.profile.mnemonic_fraction(*MAC_MNEMONICS)


def test_mix_table(benchmark, kernels, rng):
    def collect():
        out = {}
        for op in ("int_mul", "mont_redc", "fp_mul"):
            for variant in ("full.isa", "full.ise", "reduced.isa",
                            "reduced.ise"):
                out[f"{op}.{variant}"] = _mac_fraction(
                    kernels, f"{op}.{variant}", rng)
        return out

    mix = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\n=== instruction mix: MAC-class fraction of dynamic "
          "instructions ===")
    for name, fraction in mix.items():
        print(f"{name:26s} {100 * fraction:5.1f}%")

    # ISA-only: most instructions are bookkeeping, not multiplies
    assert mix["int_mul.full.isa"] < 0.30
    # ISE: the fused MACs dominate
    assert mix["int_mul.full.ise"] > 0.40
    assert mix["int_mul.reduced.ise"] > 0.55


def test_ise_reduces_total_instructions_not_macs(kernels, rng):
    """The ISEs eliminate bookkeeping around a constant amount of
    multiplier work: dynamic MAC-instruction counts stay comparable
    while totals collapse."""
    isa = kernels["int_mul.full.isa"]
    ise = kernels["int_mul.full.ise"]
    counts = {}
    for kernel in (isa, ise):
        runner = KernelRunner(kernel)
        profiler = Profiler(kernel.isa).attach(runner.machine)
        run = runner.run(*kernel.sampler(rng))
        macs = sum(profiler.profile.mnemonics[m]
                   for m in MAC_MNEMONICS)
        counts[kernel.name] = (run.instructions, macs)
    (isa_total, isa_macs), (ise_total, ise_macs) = counts.values()
    assert isa_macs == ise_macs == 128  # 64 MACs x 2 instructions
    assert ise_total < isa_total * 0.6
