"""E5 — ablation: swap-based vs. addition-based fast reduction.

The paper (Sect. 3.1): on RISC-V the missing carry flag makes the final
addition of Algorithm 1 expensive, so the swap-based Algorithm 2 wins
for the full-radix implementation.  Both kernels exist in the registry;
this experiment measures them head to head on the simulator.
"""

from __future__ import annotations

import pytest

from repro.kernels.runner import KernelRunner
from repro.kernels.spec import ALL_VARIANTS


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_swap_vs_addition_based(benchmark, kernels, rng, p512, variant):
    swap = KernelRunner(kernels[f"fast_reduce.{variant}"])
    addition = KernelRunner(kernels[f"fast_reduce_add.{variant}"])
    value = rng.randrange(2 * p512)

    swap_run = benchmark(swap.run, value)
    add_run = addition.run(value)
    assert swap_run.value == add_run.value == value % p512

    print(f"\n=== E5 ({variant}): swap-based {swap_run.cycles} cycles "
          f"vs addition-based {add_run.cycles} cycles ===")
    benchmark.extra_info["swap_cycles"] = swap_run.cycles
    benchmark.extra_info["addition_cycles"] = add_run.cycles
    # the paper's claim: swap-based is the faster option on RISC-V
    assert swap_run.cycles < add_run.cycles


def test_addition_based_penalty_is_the_carry_chain(kernels):
    """The instruction-count gap comes from the carried adds: the
    addition-based kernel has ~2 extra instructions per digit."""
    swap = kernels["fast_reduce.full.isa"]
    addition = kernels["fast_reduce_add.full.isa"]
    swap_count = sum(swap.static_counts.values())
    add_count = sum(addition.static_counts.values())
    digits = swap.context.radix.limbs
    assert add_count - swap_count >= digits
    assert addition.static_counts["sltu"] > swap.static_counts["sltu"]
