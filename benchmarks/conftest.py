"""Shared fixtures for the benchmark suite (experiments E1-E8).

Benchmarks regenerate the paper's tables; the pytest-benchmark timings
measure the *host-side* cost of simulation, while the printed reports
carry the *simulated* cycle counts that correspond to the paper's
numbers.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated tables.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# some benchmark modules reuse helpers from the test suite; make the
# repository root importable even under a bare `pytest benchmarks/`
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from repro.csidh.parameters import csidh_512, csidh_mini
from repro.eval.table4 import measure_table4
from repro.kernels.registry import cached_kernels


@pytest.fixture(scope="session", autouse=True)
def _isolated_aot_artifact_cache(tmp_path_factory):
    """Keep aot-engine benchmarks out of the user's real artifact
    cache; the warm-start benchmark overrides the variable itself."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_AOT_CACHE",
              str(tmp_path_factory.mktemp("aot-artifacts")))
    yield
    mp.undo()


@pytest.fixture(scope="session")
def params512():
    return csidh_512()


@pytest.fixture(scope="session")
def params_mini():
    return csidh_mini()


@pytest.fixture(scope="session")
def p512(params512):
    return params512.p


@pytest.fixture(scope="session")
def kernels(p512):
    return cached_kernels(p512)


@pytest.fixture(scope="session")
def table4(p512):
    """Measured Table 4 (shared across benchmark modules)."""
    return measure_table4(p512)


@pytest.fixture()
def rng():
    return random.Random(0xBE7C)
