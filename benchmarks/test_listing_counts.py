"""E6/E7 — the listing-level instruction counts and MAC latencies.

E6: the MAC operation shrinks from 8 to 4 instructions (full radix,
Listings 1 vs 3) and from 6 to 2 (reduced radix, Listings 2 vs 4).
E7: the radix-2^57 final carry propagation shrinks from 3 to 2
instructions with ``sraiadd``, with a weakened dependency chain.

Both counts are measured from the macro library and the dynamic cost of
a MAC chain is measured on the simulator.
"""

from __future__ import annotations

from repro.core.macros import (
    carry_propagate_isa,
    carry_propagate_ise,
    mac_full_radix_isa,
    mac_full_radix_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)
from repro.rv64.pipeline import PipelineConfig
from tests.helpers import result_of, run_asm


def test_e6_mac_instruction_counts(benchmark):
    def counts():
        return {
            "full_isa": len(mac_full_radix_isa(
                "s0", "s1", "s2", "a0", "a1", "t0", "t1")),
            "full_ise": len(mac_full_radix_ise(
                "s0", "s1", "s2", "a0", "a1", "t0")),
            "reduced_isa": len(mac_reduced_radix_isa(
                "s0", "s1", "a0", "a1", "t0", "t1")),
            "reduced_ise": len(mac_reduced_radix_ise(
                "s0", "s1", "a0", "a1")),
        }

    got = benchmark(counts)
    print(f"\n=== E6: MAC instruction counts {got} "
          "(paper: 8->4 and 6->2) ===")
    assert got == {"full_isa": 8, "full_ise": 4,
                   "reduced_isa": 6, "reduced_ise": 2}


def test_e6_dynamic_mac_chain_cycles(benchmark):
    """A chain of 8 dependent MACs on the simulator: the ISE version
    must be at least ~1.8x faster in cycles, not just instructions."""
    def chain(builder, count=8):
        lines = []
        for _ in range(count):
            lines.extend(builder())
        return "\n".join(lines)

    isa_src = chain(lambda: mac_full_radix_isa(
        "s2", "s1", "s0", "a0", "a1", "t0", "t1"))
    ise_src = chain(lambda: mac_full_radix_ise(
        "s2", "s1", "s0", "a0", "a1", "t0"))
    regs = {"a0": 0xFFFFFFFFFFFFFFFF, "a1": 0xFEDCBA9876543210}

    isa_m = benchmark(run_asm, isa_src, dict(regs),
                      pipeline=PipelineConfig())
    ise_m = run_asm(ise_src, dict(regs), pipeline=PipelineConfig())
    isa_cycles = result_of(isa_m).cycles
    ise_cycles = result_of(ise_m).cycles
    print(f"\n=== E6 dynamic: 8-MAC chain: ISA {isa_cycles} cycles, "
          f"ISE {ise_cycles} cycles ===")
    # both must compute the same accumulator value
    for reg in ("s0", "s1", "s2"):
        assert isa_m.regs[reg] == ise_m.regs[reg]
    assert ise_cycles < isa_cycles / 1.5


def test_e7_carry_propagation_counts(benchmark):
    got = benchmark(lambda: (
        len(carry_propagate_isa("s0", "s1", "t1", "t0")),
        len(carry_propagate_ise("s0", "s1", "t1")),
    ))
    print(f"\n=== E7: carry propagation {got[0]} -> {got[1]} "
          "instructions (paper: 3 -> 2) ===")
    assert got == (3, 2)


def test_e7_cascade_dependency_chain(benchmark):
    """A 9-limb carry cascade (one full canonicalisation pass): the
    sraiadd version must win in cycles thanks to the fused add."""
    mask = "li t1, 0x1ffffffffffffff\n"
    regs = {f"s{i}": (1 << 60) + i for i in range(9)}

    def cascade(ise: bool) -> str:
        lines = [mask]
        for i in range(1, 9):
            if ise:
                lines.append("\n".join(
                    carry_propagate_ise(f"s{i-1}", f"s{i}", "t1")))
            else:
                lines.append("\n".join(
                    carry_propagate_isa(f"s{i-1}", f"s{i}", "t1",
                                        "t0")))
        return "\n".join(lines)

    isa_m = benchmark(run_asm, cascade(False), dict(regs),
                      pipeline=PipelineConfig())
    ise_m = run_asm(cascade(True), dict(regs),
                    pipeline=PipelineConfig())
    for i in range(9):
        assert isa_m.regs[f"s{i}"] == ise_m.regs[f"s{i}"]
    isa_cycles = result_of(isa_m).cycles
    ise_cycles = result_of(ise_m).cycles
    print(f"\n=== E7 dynamic: 9-limb cascade: ISA {isa_cycles}, "
          f"ISE {ise_cycles} cycles ===")
    assert ise_cycles < isa_cycles
