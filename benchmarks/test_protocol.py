"""E8 — end-to-end protocol: key exchange and the simulator-hosted run.

The abstract claim being exercised: CSIDH "can serve as a drop-in
replacement for the (EC)DH key-exchange protocol".  Two benchmarks:

* a full key exchange on the mini parameter set (pure Python field);
* a toy group action where *every field operation executes on the RV64
  simulator through the reduced-radix ISE kernels* — the complete
  hardware/software stack in one run.
"""

from __future__ import annotations

import random

import pytest

from repro.csidh.group_action import group_action
from repro.csidh.parameters import csidh_toy
from repro.csidh.protocol import Csidh, key_exchange_demo
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext


def test_key_exchange_mini(benchmark, params_mini):
    secret_a, secret_b = benchmark(key_exchange_demo, params_mini,
                                   seed=11)
    assert secret_a == secret_b
    print(f"\n=== E8: CSIDH-mini shared secret agreed: "
          f"{secret_a} ===")


def test_key_exchange_csidh512_public_key(benchmark, params512):
    """One real CSIDH-512 public-key computation (pure Python field —
    the simulator-free path a library user would take)."""
    party = Csidh(params512, seed=3)
    private = party.generate_private_key()

    public = benchmark.pedantic(party.public_key, args=(private,),
                                rounds=1, iterations=1)
    assert 0 < public.coefficient < params512.p
    print(f"\n=== E8: CSIDH-512 public key: "
          f"{public.coefficient:#x} ===")


@pytest.mark.parametrize("variant", ["reduced.ise", "full.isa"])
def test_toy_group_action_on_simulator(benchmark, variant):
    """The zero-stub integration: protocol -> isogenies -> field kernels
    -> custom instructions -> pipeline model, end to end."""
    params = csidh_toy()
    exponents = (1, -1, 1)

    def run():
        field = SimulatedFieldContext(params.p, variant=variant)
        a = group_action(params, field, 0, exponents,
                         random.Random(3))
        return a, field

    # warmup_rounds pays the one-time kernel assembly + trace
    # compilation (pooled per process by cached_runner), so the
    # measured round is the group action itself
    a, field = benchmark.pedantic(run, rounds=1, iterations=1,
                                  warmup_rounds=1)
    reference = group_action(params, FieldContext(params.p), 0,
                             exponents, random.Random(1))
    assert a == reference
    print(f"\n=== E8 ({variant}): toy action on the simulator: "
          f"{field.simulated_instructions} instructions, "
          f"{field.simulated_cycles} cycles ===")
    assert field.simulated_instructions > 10_000
