"""E10 — ablation: instruction scheduling (naive vs. list-scheduled).

The paper's kernels are hand-optimised assembly; ours are generated
sequentially.  This experiment quantifies how much of the remaining
cycle gap to the paper is pure instruction scheduling, by re-running
Table 4's multiplication rows through the list scheduler
(:mod:`repro.analysis.schedule`).

Expected shape: scheduling recovers a large part of the ISA-only gap
(the Listing-1 MAC has exploitable ILP between the mulhu/mul pair and
the carry chain), while the ISE kernels — already throughput-bound on
the fused accumulator chain — gain little or even regress slightly
under the greedy heuristic.
"""

from __future__ import annotations

import pytest

from repro.eval.paperdata import PAPER_TABLE4
from repro.kernels.runner import KernelRunner

OPERATIONS = ("int_mul", "int_sqr", "mont_redc")


@pytest.mark.parametrize("operation", OPERATIONS)
def test_scheduling_recovers_isa_gap(benchmark, kernels, rng, p512,
                                     operation):
    kernel = kernels[f"{operation}.full.isa"]
    naive = KernelRunner(kernel)
    scheduled = KernelRunner(kernel, schedule=True)
    values = kernel.sampler(rng)

    run = benchmark(scheduled.run, *values)
    naive_cycles = naive.run(*values).cycles
    paper = PAPER_TABLE4[operation]["full.isa"]
    print(f"\n=== E10 ({operation}, full.isa): naive {naive_cycles} "
          f"-> scheduled {run.cycles} cycles (paper: {paper}) ===")
    assert run.cycles < naive_cycles
    # the scheduled kernel should approach the paper's hand assembly
    # (within 15%; the squaring row keeps a few extra shift-doubling
    # instructions the authors presumably fused differently)
    assert run.cycles <= paper * 1.15


def test_scheduling_summary_table(kernels, rng, p512):
    print("\n=== E10: scheduling ablation across Table 4 rows ===")
    print(f"{'kernel':26s}{'naive':>8s}{'sched':>8s}{'paper':>8s}")
    for operation in ("int_mul", "int_sqr", "mont_redc", "fp_mul"):
        for variant in ("full.isa", "reduced.isa", "full.ise",
                        "reduced.ise"):
            kernel = kernels[f"{operation}.{variant}"]
            values = kernel.sampler(rng)
            naive = KernelRunner(kernel).run(*values).cycles
            sched = KernelRunner(kernel, schedule=True).run(
                *values).cycles
            paper = PAPER_TABLE4[operation][variant]
            print(f"{kernel.name:26s}{naive:>8d}{sched:>8d}{paper:>8d}")
    # no assertion beyond per-row checks above: this is the report


def test_ise_kernels_are_latency_bound(kernels, rng):
    """The ISE reduced-radix multiplier is dominated by the fused
    accumulator chain, so greedy scheduling moves it by < 15%."""
    kernel = kernels["int_mul.reduced.ise"]
    values = kernel.sampler(rng)
    naive = KernelRunner(kernel).run(*values).cycles
    sched = KernelRunner(kernel, schedule=True).run(*values).cycles
    assert abs(sched - naive) / naive < 0.30
