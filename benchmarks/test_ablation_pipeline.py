"""E11 — sensitivity: how robust is the 1.71x headline to the timing
model's parameters?

The reproduction's cycle counts depend on the assumed multiplier
latency, load-use delay and cache behaviour.  This ablation sweeps the
main knobs and shows the speedup conclusion is stable: for every
plausible Rocket-like configuration the reduced-radix ISE variant wins
and the ISA-only reduced-radix variant loses.
"""

from __future__ import annotations

import pytest

from repro.csidh.opcount import average_group_action_profile
from repro.eval.groupaction import compose_group_action
from repro.eval.table4 import measure_table4
from repro.rv64.cache import CacheConfig
from repro.rv64.pipeline import PipelineConfig

SWEEP = [
    pytest.param(PipelineConfig(mul_latency=1), id="mul-lat-1"),
    pytest.param(PipelineConfig(mul_latency=2), id="mul-lat-2"),
    pytest.param(PipelineConfig(mul_latency=3), id="mul-lat-3-default"),
    pytest.param(PipelineConfig(mul_latency=4), id="mul-lat-4"),
    pytest.param(PipelineConfig(load_latency=3), id="load-lat-3"),
    pytest.param(
        PipelineConfig(icache=CacheConfig(), dcache=CacheConfig()),
        id="with-caches",
    ),
]


@pytest.fixture(scope="module")
def profile(params_mini):
    return average_group_action_profile(params_mini, keys=2, seed=5)


@pytest.mark.parametrize("config", SWEEP)
def test_headline_stable_across_configs(benchmark, p512, profile,
                                        config):
    table = benchmark.pedantic(
        measure_table4, args=(p512,),
        kwargs={"pipeline_config": config}, rounds=1, iterations=1)
    result = compose_group_action(table, profile)
    s = result.speedup
    print(f"\n=== E11 [{config.mul_latency=} {config.load_latency=}"
          f" caches={config.dcache is not None}]: "
          f"speedups full.ise {s['full.ise']:.2f}x, "
          f"reduced.isa {s['reduced.isa']:.2f}x, "
          f"reduced.ise {s['reduced.ise']:.2f}x ===")
    # the qualitative conclusions hold across the whole sweep
    assert s["reduced.ise"] > s["full.ise"] > 1.0
    assert s["reduced.isa"] < 1.0
    assert s["reduced.ise"] > 1.3
