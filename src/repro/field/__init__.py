"""F_p layer: instrumented field arithmetic and the op-count/cycle
bridge used to compose the CSIDH-512 group-action cycle counts."""

from repro.field.counters import CountingScope, OpCosts, OpCounter
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext

__all__ = [
    "CountingScope",
    "OpCosts",
    "OpCounter",
    "FieldContext",
    "SimulatedFieldContext",
]
