"""Field-operation counters: the bridge from protocol runs to cycles.

Simulating the full 500-million-instruction CSIDH-512 group action on a
Python ISA simulator is infeasible, so the evaluation composes:

    group-action cycles = sum over ops of  count(op) * cycles(op)

where the per-operation cycle costs come from *measured* simulator runs
of the generated kernels and the counts from an instrumented protocol
run.  This is exactly the additive structure visible in the paper's own
Table 4 (Fp-mul = int-mul + Montgomery reduction + fast reduction to
within a few cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Tally of F_p operations performed by an instrumented computation."""

    mul: int = 0
    sqr: int = 0
    add: int = 0
    sub: int = 0

    def reset(self) -> None:
        self.mul = self.sqr = self.add = self.sub = 0

    def copy(self) -> "OpCounter":
        return OpCounter(self.mul, self.sqr, self.add, self.sub)

    def __add__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            self.mul + other.mul,
            self.sqr + other.sqr,
            self.add + other.add,
            self.sub + other.sub,
        )

    def __sub__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            self.mul - other.mul,
            self.sqr - other.sqr,
            self.add - other.add,
            self.sub - other.sub,
        )

    @property
    def total(self) -> int:
        return self.mul + self.sqr + self.add + self.sub

    @property
    def mul_equivalents(self) -> float:
        """Rough single-number cost: sqr ~ 0.8 M, add/sub ~ 0.1 M."""
        return self.mul + 0.8 * self.sqr + 0.1 * (self.add + self.sub)

    def cycles(self, costs: "OpCosts") -> int:
        """Total cycles under the given per-operation costs."""
        return (
            self.mul * costs.fp_mul
            + self.sqr * costs.fp_sqr
            + self.add * costs.fp_add
            + self.sub * costs.fp_sub
        )


@dataclass(frozen=True)
class OpCosts:
    """Per-operation cycle costs of one implementation variant,
    as measured on the simulator (Table 4 rows 5-8)."""

    fp_mul: int
    fp_sqr: int
    fp_add: int
    fp_sub: int
    label: str = ""

    @staticmethod
    def from_mapping(costs: dict[str, int], label: str = "") -> "OpCosts":
        return OpCosts(
            fp_mul=costs["fp_mul"],
            fp_sqr=costs["fp_sqr"],
            fp_add=costs["fp_add"],
            fp_sub=costs["fp_sub"],
            label=label,
        )


@dataclass
class CountingScope:
    """Context manager measuring the ops performed inside a block."""

    counter: OpCounter
    _start: OpCounter = field(default_factory=OpCounter)
    delta: OpCounter = field(default_factory=OpCounter)

    def __enter__(self) -> "CountingScope":
        self._start = self.counter.copy()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.delta = self.counter - self._start
