"""A FieldContext whose arithmetic executes on the RV64 simulator.

Every ``mul``/``sqr``/``add``/``sub`` is carried out by the generated
assembly kernels of one implementation variant on the functional
simulator — turning a CSIDH run into an actual execution on the
(extended) core.  By default the kernels run through the trace-replay
engine (:mod:`repro.rv64.replay`): each kernel is decoded once into a
compiled closure sequence with a precomputed cycle cost, so an
end-to-end protocol run touches fetch/decode and the cycle-accurate
pipeline walker exactly once per kernel instead of once per field
operation.  The replay path is bit- and cycle-identical to the
interpreter (proven operand-by-operand by ``tests/differential/``);
pass ``cross_check=True`` to route every operation through the full
interpreter with per-run golden-reference verification instead — the
slow, belt-and-braces mode for debugging new kernels or pipelines.

The kernels implement *Montgomery* multiplication (``a*b*R^-1``), while
the :class:`FieldContext` API is plain modular arithmetic; the adapter
hides the domain conversion by folding in ``R^2`` per multiplication
(costing one extra kernel run — irrelevant for a functional check).

Runners are pooled per (modulus, kernel, pipeline) via
:func:`repro.kernels.registry.cached_runner`, so constructing many
contexts — one per benchmark round, say — assembles and trace-compiles
each kernel only once per process.
"""

from __future__ import annotations

from repro.field.counters import OpCounter
from repro.field.fp import FieldContext
from repro.kernels.registry import cached_runner
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG


class SimulatedFieldContext(FieldContext):
    """F_p arithmetic executed by simulator-hosted assembly kernels."""

    def __init__(
        self,
        p: int,
        *,
        variant: str = "reduced.ise",
        counter: OpCounter | None = None,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        cross_check: bool = False,
    ) -> None:
        super().__init__(p, counter)
        self.variant = variant
        self.cross_check = cross_check
        # cross_check escapes to the interpreter and verifies every run
        # against the kernel's golden reference; the default replays
        # compiled traces (equivalence is covered by the differential
        # suite, so per-run re-verification would only re-prove it).
        self._replay = not cross_check

        def runner(operation: str) -> KernelRunner:
            return cached_runner(
                p, f"{operation}.{variant}", pipeline_config
            )

        self._mul = runner(OP_FP_MUL)
        self._sqr = runner(OP_FP_SQR)
        self._add = runner(OP_FP_ADD)
        self._sub = runner(OP_FP_SUB)
        ctx = self._mul.kernel.context
        self._r2 = ctx.r2_mod_p
        self.simulated_instructions = 0
        self.simulated_cycles = 0

    # -- kernel dispatch -----------------------------------------------------

    def _run(self, runner: KernelRunner, *values: int) -> int:
        run = runner.run(*values, check=self.cross_check,
                         replay=self._replay)
        self.simulated_instructions += run.instructions
        self.simulated_cycles += run.cycles
        return run.value

    def mul(self, a: int, b: int) -> int:
        self.counter.mul += 1
        # plain product: mont(a, mont(b, R^2)) = a * b mod p
        b_mont = self._run(self._mul, b % self.p, self._r2)
        return self._run(self._mul, a % self.p, b_mont)

    def sqr(self, a: int) -> int:
        self.counter.sqr += 1
        a_mont = self._run(self._mul, a % self.p, self._r2)
        return self._run(self._mul, a % self.p, a_mont)

    def add(self, a: int, b: int) -> int:
        self.counter.add += 1
        return self._run(self._add, a % self.p, b % self.p)

    def sub(self, a: int, b: int) -> int:
        self.counter.sub += 1
        return self._run(self._sub, a % self.p, b % self.p)
