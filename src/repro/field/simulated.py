"""A FieldContext whose arithmetic executes on the RV64 simulator.

Every ``mul``/``sqr``/``add``/``sub`` is carried out by the generated
assembly kernels of one implementation variant on the functional
simulator — turning a CSIDH run into an actual execution on the
(extended) core.  By default the kernels run through the trace-replay
engine (:mod:`repro.rv64.replay`): each kernel is decoded once into a
compiled closure sequence with a precomputed cycle cost, so an
end-to-end protocol run touches fetch/decode and the cycle-accurate
pipeline walker exactly once per kernel instead of once per field
operation.  ``engine="jit"`` goes one tier further
(:mod:`repro.rv64.jit`): the compiled trace is code-generated into a
single Python function per kernel, removing the per-step closure
dispatch as well.  ``engine="aot"`` is the top tier
(:mod:`repro.rv64.aot`): the whole trace is fused into limb-level
wide-int arithmetic over the operand values — no per-instruction
statements, no memory marshalling — and warm-starts from the
persistent on-disk artifact cache (:mod:`repro.rv64.artifacts`)
without re-tracing.  Every fast tier is bit- and cycle-identical to
the interpreter (proven operand-by-operand by ``tests/differential/``);
pass ``cross_check=True`` to route every operation through the full
interpreter with per-run golden-reference verification instead — the
slow, belt-and-braces mode for debugging new kernels or pipelines.

Throughput workloads can hand over whole vectors of operands at once:
``mul_batch`` / ``sqr_batch`` / ``add_batch`` / ``sub_batch`` forward
to :meth:`KernelRunner.run_batch`, which resolves the engine and the
compiled artifact once per batch instead of once per element.  The
batched entry points are element-wise identical to looping the scalar
ones (same values, counters, cycle accounting); hardened contexts
transparently take the scalar path so every safety check still fires.

``checked=True`` selects the production hardening mode in between
(see ``docs/ROBUSTNESS.md``): execution stays on the fast replay path,
but one in ``check_interval`` operations is cross-validated against a
pure-Python :class:`~repro.field.fp.FieldContext` reference (and each
runner additionally validates sampled kernel runs).  A divergence —
a bit flip, a poisoned replay trace, a corrupted runner — raises
:class:`~repro.errors.FaultDetectedError` and triggers *recovery*:
the poisoned runner is evicted from the registry pool, its replay
trace invalidated, and the operation re-executed on the interpreter
from a freshly assembled runner, bounded by ``max_recovery_attempts``.
If every attempt still diverges,
:class:`~repro.errors.RecoveryExhaustedError` is raised.

The kernels implement *Montgomery* multiplication (``a*b*R^-1``), while
the :class:`FieldContext` API is plain modular arithmetic; the adapter
hides the domain conversion by folding in ``R^2`` per multiplication
(costing one extra kernel run — irrelevant for a functional check).

Runners are pooled per (modulus, kernel, pipeline, checked, engine) via
:func:`repro.kernels.registry.cached_runner`, so constructing many
contexts — one per benchmark round, say — assembles and trace-compiles
each kernel only once per process.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import (
    FaultDetectedError,
    KernelError,
    RecoveryExhaustedError,
    SimulationError,
)
from repro.field.counters import OpCounter
from repro.field.fp import FieldContext
from repro.kernels import registry
from repro.kernels.runner import DEFAULT_CHECK_INTERVAL, KernelRunner
from repro.kernels.spec import (
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.machine import ENGINES
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG

#: Default bound on interpreter re-executions after a detected fault.
DEFAULT_RECOVERY_ATTEMPTS = 2


class _CheckedConfig:
    """Sampling and retry knobs of a hardened context."""

    __slots__ = ("interval", "clock", "max_attempts")

    def __init__(self, interval: int, max_attempts: int) -> None:
        self.interval = max(1, int(interval))
        self.clock = 0
        self.max_attempts = max(1, int(max_attempts))


class SimulatedFieldContext(FieldContext):
    """F_p arithmetic executed by simulator-hosted assembly kernels."""

    def __init__(
        self,
        p: int,
        *,
        variant: str = "reduced.ise",
        counter: OpCounter | None = None,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        cross_check: bool = False,
        engine: str | None = None,
        checked: bool = False,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
        scope: str = "",
    ) -> None:
        super().__init__(p, counter)
        self.variant = variant
        self.cross_check = cross_check
        #: Runner-pool confinement tag (see
        #: :func:`repro.kernels.registry.cached_runner`): contexts with
        #: different scopes never share simulator machines, which is
        #: what makes concurrent sessions on worker threads safe.
        self.scope = scope
        self._pipeline_config = pipeline_config
        # cross_check escapes to the interpreter and verifies every run
        # against the kernel's golden reference; the default replays
        # compiled traces (equivalence is covered by the differential
        # suite, so per-run re-verification would only re-prove it);
        # engine="jit" selects the code-generated tier on top of that.
        if engine is None:
            engine = "interpreter" if cross_check else "replay"
        elif engine not in ENGINES:
            raise KernelError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        elif cross_check and engine != "interpreter":
            raise KernelError(
                "cross_check routes every operation through the "
                f"interpreter; engine={engine!r} conflicts"
            )
        self.engine = engine
        self._replay = engine != "interpreter"  # legacy alias
        self._checked = (
            _CheckedConfig(check_interval, max_recovery_attempts)
            if checked else None
        )
        # pure-Python ground truth for sampled cross-validation and for
        # deciding whether a recovery attempt actually recovered
        self._reference = FieldContext(p) if checked else None

        self._mul = self._pooled_runner(OP_FP_MUL)
        self._sqr = self._pooled_runner(OP_FP_SQR)
        self._add = self._pooled_runner(OP_FP_ADD)
        self._sub = self._pooled_runner(OP_FP_SUB)
        ctx = self._mul.kernel.context
        self._r2 = ctx.r2_mod_p
        self.simulated_instructions = 0
        self.simulated_cycles = 0
        #: Faults caught (and recoveries completed) by this context —
        #: the campaign layer classifies trial outcomes from these.
        self.fault_detections = 0
        self.fault_recoveries = 0

    @property
    def checked(self) -> bool:
        return self._checked is not None

    def _pooled_runner(self, operation: str) -> KernelRunner:
        cfg = self._checked
        return registry.cached_runner(
            self.p, f"{operation}.{self.variant}", self._pipeline_config,
            checked=cfg is not None,
            check_interval=cfg.interval if cfg is not None else None,
            engine=self.engine,
            scope=self.scope,
        )

    # -- kernel dispatch -----------------------------------------------------

    def _run(
        self,
        runner: KernelRunner,
        *values: int,
        engine: str | None = None,
    ) -> int:
        run = runner.run(*values, check=self.cross_check,
                         engine=self.engine if engine is None else engine)
        self.simulated_instructions += run.instructions
        self.simulated_cycles += run.cycles
        return run.value

    def _batch(self, runner: KernelRunner, operand_sets) -> list[int]:
        runs = runner.run_batch(operand_sets, check=self.cross_check,
                                engine=self.engine)
        for run in runs:
            self.simulated_instructions += run.instructions
            self.simulated_cycles += run.cycles
        return [run.value for run in runs]

    # -- the hardened execution path ----------------------------------------

    def _guarded(self, operation, slots, compute, reference):
        """Run *compute*; sample-check it; recover on divergence.

        ``compute(engine)`` performs the kernel runs (re-reading the
        runner slots, so a recovery swap takes effect), ``reference()``
        is the pure-Python ground truth.  Detection comes either from a
        runner's own checked mode (:class:`FaultDetectedError`, or a
        :class:`SimulationError` crash mid-kernel) or from this
        context-level sampled comparison.
        """
        cfg = self._checked
        try:
            value = compute(self.engine)
        except (FaultDetectedError, SimulationError) as exc:
            self.fault_detections += 1
            return self._recover(operation, slots, compute, reference,
                                 exc)
        cfg.clock += 1
        if cfg.clock >= cfg.interval:
            cfg.clock = 0
            if value != reference():
                self.fault_detections += 1
                telemetry.record_fault_detected(operation, "context")
                return self._recover(operation, slots, compute,
                                     reference, None)
        return value

    def _rebuild(self, slots) -> None:
        """Replace the runners behind *slots* with pristine ones."""
        cfg = self._checked
        for slot in slots:
            runner = getattr(self, slot)
            name = runner.kernel.name
            # drops the cached trace, any compiled jit/aot function,
            # and the entry's on-disk aot artifact
            runner.machine.invalidate_trace(runner.entry)
            registry.evict_runner(self.p, name, self._pipeline_config,
                                  checked=True, engine=self.engine,
                                  scope=self.scope)
            fresh = registry.cached_runner(
                self.p, name, self._pipeline_config,
                checked=True, check_interval=cfg.interval,
                engine=self.engine, scope=self.scope,
            )
            setattr(self, slot, fresh)

    def _recover(self, operation, slots, compute, reference, cause):
        """Bounded retry-with-fallback after a detected fault."""
        cfg = self._checked
        for _attempt in range(cfg.max_attempts):
            self._rebuild(slots)
            try:
                value = compute("interpreter")  # full re-execution
            except (FaultDetectedError, SimulationError):
                continue
            if value == reference():
                self.fault_recoveries += 1
                telemetry.record_fault_recovery(operation, "recovered")
                return value
        telemetry.record_fault_recovery(operation, "exhausted")
        raise RecoveryExhaustedError(
            f"{operation} still diverged from the pure-Python "
            f"reference after {cfg.max_attempts} interpreter "
            f"re-executions on freshly assembled runners"
        ) from cause

    # -- field operations ----------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        self.counter.mul += 1
        a %= self.p
        b %= self.p
        # plain product: mont(a, mont(b, R^2)) = a * b mod p
        if self._checked is None:
            b_mont = self._run(self._mul, b, self._r2)
            return self._run(self._mul, a, b_mont)
        return self._guarded(
            "mul", ("_mul",),
            lambda engine: self._run(
                self._mul, a,
                self._run(self._mul, b, self._r2, engine=engine),
                engine=engine),
            lambda: self._reference.mul(a, b),
        )

    def sqr(self, a: int) -> int:
        self.counter.sqr += 1
        a %= self.p
        if self._checked is None:
            a_mont = self._run(self._mul, a, self._r2)
            return self._run(self._mul, a, a_mont)
        return self._guarded(
            "sqr", ("_mul",),
            lambda engine: self._run(
                self._mul, a,
                self._run(self._mul, a, self._r2, engine=engine),
                engine=engine),
            lambda: self._reference.sqr(a),
        )

    def add(self, a: int, b: int) -> int:
        self.counter.add += 1
        a %= self.p
        b %= self.p
        if self._checked is None:
            return self._run(self._add, a, b)
        return self._guarded(
            "add", ("_add",),
            lambda engine: self._run(self._add, a, b, engine=engine),
            lambda: self._reference.add(a, b),
        )

    def sub(self, a: int, b: int) -> int:
        self.counter.sub += 1
        a %= self.p
        b %= self.p
        if self._checked is None:
            return self._run(self._sub, a, b)
        return self._guarded(
            "sub", ("_sub",),
            lambda engine: self._run(self._sub, a, b, engine=engine),
            lambda: self._reference.sub(a, b),
        )

    # -- batched field operations (throughput workloads) ---------------------

    def mul_batch(self, pairs) -> list[int]:
        """Element-wise :meth:`mul` over ``[(a, b), ...]`` in two
        kernel batches (Montgomery conversion, then product)."""
        pairs = [(a % self.p, b % self.p) for a, b in pairs]
        if self._checked is not None:
            return [self.mul(a, b) for a, b in pairs]
        self.counter.mul += len(pairs)
        r2 = self._r2
        monts = self._batch(self._mul, [(b, r2) for _, b in pairs])
        return self._batch(
            self._mul, [(a, bm) for (a, _), bm in zip(pairs, monts)])

    def sqr_batch(self, values) -> list[int]:
        """Element-wise :meth:`sqr` over ``[a, ...]``."""
        values = [a % self.p for a in values]
        if self._checked is not None:
            return [self.sqr(a) for a in values]
        self.counter.sqr += len(values)
        r2 = self._r2
        monts = self._batch(self._mul, [(a, r2) for a in values])
        return self._batch(
            self._mul, list(zip(values, monts)))

    def add_batch(self, pairs) -> list[int]:
        """Element-wise :meth:`add` over ``[(a, b), ...]``."""
        pairs = [(a % self.p, b % self.p) for a, b in pairs]
        if self._checked is not None:
            return [self.add(a, b) for a, b in pairs]
        self.counter.add += len(pairs)
        return self._batch(self._add, pairs)

    def sub_batch(self, pairs) -> list[int]:
        """Element-wise :meth:`sub` over ``[(a, b), ...]``."""
        pairs = [(a % self.p, b % self.p) for a, b in pairs]
        if self._checked is not None:
            return [self.sub(a, b) for a, b in pairs]
        self.counter.sub += len(pairs)
        return self._batch(self._sub, pairs)
