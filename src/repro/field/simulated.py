"""A FieldContext whose arithmetic executes on the RV64 simulator.

Every ``mul``/``sqr``/``add``/``sub`` is carried out by the generated
assembly kernels of one implementation variant, instruction by
instruction, on the functional simulator — turning a CSIDH run into an
actual execution on the (extended) core.  This is far too slow for
CSIDH-512, but with the toy parameter sets it provides a true
end-to-end check: protocol -> curve arithmetic -> field kernels ->
custom instructions -> pipeline.

The kernels implement *Montgomery* multiplication (``a*b*R^-1``), while
the :class:`FieldContext` API is plain modular arithmetic; the adapter
hides the domain conversion by folding in ``R^2`` per multiplication
(costing one extra kernel run — irrelevant for a functional check).
"""

from __future__ import annotations

from repro.field.counters import OpCounter
from repro.field.fp import FieldContext
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import (
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG


class SimulatedFieldContext(FieldContext):
    """F_p arithmetic executed by simulator-hosted assembly kernels."""

    def __init__(
        self,
        p: int,
        *,
        variant: str = "reduced.ise",
        counter: OpCounter | None = None,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        cross_check: bool = True,
    ) -> None:
        super().__init__(p, counter)
        self.variant = variant
        self.cross_check = cross_check
        kernels = cached_kernels(p)

        def runner(operation: str) -> KernelRunner:
            return KernelRunner(
                kernels[f"{operation}.{variant}"],
                pipeline_config=pipeline_config,
            )

        self._mul = runner(OP_FP_MUL)
        self._sqr = runner(OP_FP_SQR)
        self._add = runner(OP_FP_ADD)
        self._sub = runner(OP_FP_SUB)
        ctx = self._mul.kernel.context
        self._r2 = ctx.r2_mod_p
        self.simulated_instructions = 0
        self.simulated_cycles = 0

    # -- kernel dispatch -----------------------------------------------------

    def _run(self, runner: KernelRunner, *values: int) -> int:
        run = runner.run(*values, check=self.cross_check)
        self.simulated_instructions += run.instructions
        self.simulated_cycles += run.cycles
        return run.value

    def mul(self, a: int, b: int) -> int:
        self.counter.mul += 1
        # plain product: mont(a, mont(b, R^2)) = a * b mod p
        b_mont = self._run(self._mul, b % self.p, self._r2)
        return self._run(self._mul, a % self.p, b_mont)

    def sqr(self, a: int) -> int:
        self.counter.sqr += 1
        a_mont = self._run(self._mul, a % self.p, self._r2)
        return self._run(self._mul, a % self.p, a_mont)

    def add(self, a: int, b: int) -> int:
        self.counter.add += 1
        return self._run(self._add, a % self.p, b % self.p)

    def sub(self, a: int, b: int) -> int:
        self.counter.sub += 1
        return self._run(self._sub, a % self.p, b % self.p)
