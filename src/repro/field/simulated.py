"""A FieldContext whose arithmetic executes on the RV64 simulator.

Every ``mul``/``sqr``/``add``/``sub`` is carried out by the generated
assembly kernels of one implementation variant on the functional
simulator — turning a CSIDH run into an actual execution on the
(extended) core.  By default the kernels run through the trace-replay
engine (:mod:`repro.rv64.replay`): each kernel is decoded once into a
compiled closure sequence with a precomputed cycle cost, so an
end-to-end protocol run touches fetch/decode and the cycle-accurate
pipeline walker exactly once per kernel instead of once per field
operation.  The replay path is bit- and cycle-identical to the
interpreter (proven operand-by-operand by ``tests/differential/``);
pass ``cross_check=True`` to route every operation through the full
interpreter with per-run golden-reference verification instead — the
slow, belt-and-braces mode for debugging new kernels or pipelines.

``checked=True`` selects the production hardening mode in between
(see ``docs/ROBUSTNESS.md``): execution stays on the fast replay path,
but one in ``check_interval`` operations is cross-validated against a
pure-Python :class:`~repro.field.fp.FieldContext` reference (and each
runner additionally validates sampled kernel runs).  A divergence —
a bit flip, a poisoned replay trace, a corrupted runner — raises
:class:`~repro.errors.FaultDetectedError` and triggers *recovery*:
the poisoned runner is evicted from the registry pool, its replay
trace invalidated, and the operation re-executed on the interpreter
from a freshly assembled runner, bounded by ``max_recovery_attempts``.
If every attempt still diverges,
:class:`~repro.errors.RecoveryExhaustedError` is raised.

The kernels implement *Montgomery* multiplication (``a*b*R^-1``), while
the :class:`FieldContext` API is plain modular arithmetic; the adapter
hides the domain conversion by folding in ``R^2`` per multiplication
(costing one extra kernel run — irrelevant for a functional check).

Runners are pooled per (modulus, kernel, pipeline, checked) via
:func:`repro.kernels.registry.cached_runner`, so constructing many
contexts — one per benchmark round, say — assembles and trace-compiles
each kernel only once per process.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import (
    FaultDetectedError,
    RecoveryExhaustedError,
    SimulationError,
)
from repro.field.counters import OpCounter
from repro.field.fp import FieldContext
from repro.kernels import registry
from repro.kernels.runner import DEFAULT_CHECK_INTERVAL, KernelRunner
from repro.kernels.spec import (
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
)
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG

#: Default bound on interpreter re-executions after a detected fault.
DEFAULT_RECOVERY_ATTEMPTS = 2


class _CheckedConfig:
    """Sampling and retry knobs of a hardened context."""

    __slots__ = ("interval", "clock", "max_attempts")

    def __init__(self, interval: int, max_attempts: int) -> None:
        self.interval = max(1, int(interval))
        self.clock = 0
        self.max_attempts = max(1, int(max_attempts))


class SimulatedFieldContext(FieldContext):
    """F_p arithmetic executed by simulator-hosted assembly kernels."""

    def __init__(
        self,
        p: int,
        *,
        variant: str = "reduced.ise",
        counter: OpCounter | None = None,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        cross_check: bool = False,
        checked: bool = False,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
    ) -> None:
        super().__init__(p, counter)
        self.variant = variant
        self.cross_check = cross_check
        self._pipeline_config = pipeline_config
        # cross_check escapes to the interpreter and verifies every run
        # against the kernel's golden reference; the default replays
        # compiled traces (equivalence is covered by the differential
        # suite, so per-run re-verification would only re-prove it).
        self._replay = not cross_check
        self._checked = (
            _CheckedConfig(check_interval, max_recovery_attempts)
            if checked else None
        )
        # pure-Python ground truth for sampled cross-validation and for
        # deciding whether a recovery attempt actually recovered
        self._reference = FieldContext(p) if checked else None

        self._mul = self._pooled_runner(OP_FP_MUL)
        self._sqr = self._pooled_runner(OP_FP_SQR)
        self._add = self._pooled_runner(OP_FP_ADD)
        self._sub = self._pooled_runner(OP_FP_SUB)
        ctx = self._mul.kernel.context
        self._r2 = ctx.r2_mod_p
        self.simulated_instructions = 0
        self.simulated_cycles = 0
        #: Faults caught (and recoveries completed) by this context —
        #: the campaign layer classifies trial outcomes from these.
        self.fault_detections = 0
        self.fault_recoveries = 0

    @property
    def checked(self) -> bool:
        return self._checked is not None

    def _pooled_runner(self, operation: str) -> KernelRunner:
        cfg = self._checked
        return registry.cached_runner(
            self.p, f"{operation}.{self.variant}", self._pipeline_config,
            checked=cfg is not None,
            check_interval=cfg.interval if cfg is not None else None,
        )

    # -- kernel dispatch -----------------------------------------------------

    def _run(
        self,
        runner: KernelRunner,
        *values: int,
        replay: bool | None = None,
    ) -> int:
        run = runner.run(*values, check=self.cross_check,
                         replay=self._replay if replay is None else replay)
        self.simulated_instructions += run.instructions
        self.simulated_cycles += run.cycles
        return run.value

    # -- the hardened execution path ----------------------------------------

    def _guarded(self, operation, slots, compute, reference):
        """Run *compute*; sample-check it; recover on divergence.

        ``compute(replay)`` performs the kernel runs (re-reading the
        runner slots, so a recovery swap takes effect), ``reference()``
        is the pure-Python ground truth.  Detection comes either from a
        runner's own checked mode (:class:`FaultDetectedError`, or a
        :class:`SimulationError` crash mid-kernel) or from this
        context-level sampled comparison.
        """
        cfg = self._checked
        try:
            value = compute(self._replay)
        except (FaultDetectedError, SimulationError) as exc:
            self.fault_detections += 1
            return self._recover(operation, slots, compute, reference,
                                 exc)
        cfg.clock += 1
        if cfg.clock >= cfg.interval:
            cfg.clock = 0
            if value != reference():
                self.fault_detections += 1
                telemetry.record_fault_detected(operation, "context")
                return self._recover(operation, slots, compute,
                                     reference, None)
        return value

    def _rebuild(self, slots) -> None:
        """Replace the runners behind *slots* with pristine ones."""
        cfg = self._checked
        for slot in slots:
            runner = getattr(self, slot)
            name = runner.kernel.name
            runner.machine.invalidate_trace(runner.entry)
            registry.evict_runner(self.p, name, self._pipeline_config,
                                  checked=True)
            fresh = registry.cached_runner(
                self.p, name, self._pipeline_config,
                checked=True, check_interval=cfg.interval,
            )
            setattr(self, slot, fresh)

    def _recover(self, operation, slots, compute, reference, cause):
        """Bounded retry-with-fallback after a detected fault."""
        cfg = self._checked
        for _attempt in range(cfg.max_attempts):
            self._rebuild(slots)
            try:
                value = compute(False)  # interpreter re-execution
            except (FaultDetectedError, SimulationError):
                continue
            if value == reference():
                self.fault_recoveries += 1
                telemetry.record_fault_recovery(operation, "recovered")
                return value
        telemetry.record_fault_recovery(operation, "exhausted")
        raise RecoveryExhaustedError(
            f"{operation} still diverged from the pure-Python "
            f"reference after {cfg.max_attempts} interpreter "
            f"re-executions on freshly assembled runners"
        ) from cause

    # -- field operations ----------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        self.counter.mul += 1
        a %= self.p
        b %= self.p
        # plain product: mont(a, mont(b, R^2)) = a * b mod p
        if self._checked is None:
            b_mont = self._run(self._mul, b, self._r2)
            return self._run(self._mul, a, b_mont)
        return self._guarded(
            "mul", ("_mul",),
            lambda replay: self._run(
                self._mul, a,
                self._run(self._mul, b, self._r2, replay=replay),
                replay=replay),
            lambda: self._reference.mul(a, b),
        )

    def sqr(self, a: int) -> int:
        self.counter.sqr += 1
        a %= self.p
        if self._checked is None:
            a_mont = self._run(self._mul, a, self._r2)
            return self._run(self._mul, a, a_mont)
        return self._guarded(
            "sqr", ("_mul",),
            lambda replay: self._run(
                self._mul, a,
                self._run(self._mul, a, self._r2, replay=replay),
                replay=replay),
            lambda: self._reference.sqr(a),
        )

    def add(self, a: int, b: int) -> int:
        self.counter.add += 1
        a %= self.p
        b %= self.p
        if self._checked is None:
            return self._run(self._add, a, b)
        return self._guarded(
            "add", ("_add",),
            lambda replay: self._run(self._add, a, b, replay=replay),
            lambda: self._reference.add(a, b),
        )

    def sub(self, a: int, b: int) -> int:
        self.counter.sub += 1
        a %= self.p
        b %= self.p
        if self._checked is None:
            return self._run(self._sub, a, b)
        return self._guarded(
            "sub", ("_sub",),
            lambda replay: self._run(self._sub, a, b, replay=replay),
            lambda: self._reference.sub(a, b),
        )
