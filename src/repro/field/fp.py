"""Instrumented prime-field arithmetic for the CSIDH layers.

:class:`FieldContext` performs arithmetic in ``F_p`` while tallying
every multiplication, squaring, addition and subtraction in an
:class:`~repro.field.counters.OpCounter`.  Inversion, Legendre symbols
and exponentiation are built *from* the counted primitives (square-and-
multiply), so their cost decomposes into the same four kernel-backed
operations the cycle model knows about — mirroring how the paper's C
code routes everything through the assembly F_p functions.

Elements are plain Python integers in ``[0, p)``; speed matters here
because instrumented CSIDH-512 group actions execute hundreds of
thousands of field operations.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.field.counters import OpCounter


class FieldContext:
    """Arithmetic in F_p with operation counting."""

    def __init__(self, p: int, counter: OpCounter | None = None) -> None:
        if p < 3 or p % 2 == 0:
            raise ParameterError(f"field characteristic must be odd: {p}")
        self.p = p
        self.counter = counter if counter is not None else OpCounter()

    # -- counted primitives -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        self.counter.add += 1
        s = a + b
        p = self.p
        return s - p if s >= p else s

    def sub(self, a: int, b: int) -> int:
        self.counter.sub += 1
        d = a - b
        return d + self.p if d < 0 else d

    def mul(self, a: int, b: int) -> int:
        self.counter.mul += 1
        return (a * b) % self.p

    def sqr(self, a: int) -> int:
        self.counter.sqr += 1
        return (a * a) % self.p

    # -- derived operations (decompose into counted primitives) -----------

    def double(self, a: int) -> int:
        return self.add(a, a)

    def pow(self, base: int, exponent: int) -> int:
        """Left-to-right square-and-multiply, fully counted."""
        if exponent < 0:
            raise ParameterError("negative exponents not supported")
        if exponent == 0:
            return 1
        result = base
        for bit in bin(exponent)[3:]:
            result = self.sqr(result)
            if bit == "1":
                result = self.mul(result, base)
        return result

    def inv(self, a: int) -> int:
        """Fermat inversion ``a^(p-2)`` (constant-time style, counted)."""
        if a % self.p == 0:
            raise ParameterError("zero is not invertible")
        return self.pow(a, self.p - 2)

    def legendre(self, a: int) -> int:
        """Legendre symbol via ``a^((p-1)/2)``: returns -1, 0 or +1."""
        if a % self.p == 0:
            return 0
        value = self.pow(a, (self.p - 1) // 2)
        return 1 if value == 1 else -1

    def is_square(self, a: int) -> bool:
        return self.legendre(a) != -1

    def neg(self, a: int) -> int:
        return self.sub(0, a)

    def reduce(self, a: int) -> int:
        """Canonicalise any integer into ``[0, p)`` (not counted: the
        kernels keep values reduced by construction)."""
        return a % self.p
