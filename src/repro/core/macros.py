"""The paper's MAC and carry-propagation code sequences (Listings 1-4).

Each function returns a list of assembly-source lines parameterised on
register names, ready to be fed to the assembler or spliced into a
generated kernel.  The instruction counts are the paper's headline
software-level results:

* full-radix MAC:      8 instructions ISA-only  -> 4 with ISEs;
* reduced-radix MAC:   6 instructions ISA-only  -> 2 with ISEs;
* radix-2^57 carry propagation: 3 instructions -> 2 with ``sraiadd``.
"""

from __future__ import annotations

from repro.core.ise import REDUCED_RADIX_BITS


def mac_full_radix_isa(
    e: str, h: str, l: str, a: str, b: str, y: str, z: str
) -> list[str]:
    """Listing 1 — ISA-only full-radix MAC.

    ``(e || h || l) <- (e || h || l) + a*b`` with the 192-bit accumulator
    in registers *e*, *h*, *l*; *y*, *z* are clobbered temporaries.
    """
    return [
        f"mulhu {z}, {a}, {b}",
        f"mul {y}, {a}, {b}",
        f"add {l}, {l}, {y}",
        f"sltu {y}, {l}, {y}",
        f"add {z}, {z}, {y}",
        f"add {h}, {h}, {z}",
        f"sltu {z}, {h}, {z}",
        f"add {e}, {e}, {z}",
    ]


def mac_reduced_radix_isa(
    h: str, l: str, a: str, b: str, y: str, z: str
) -> list[str]:
    """Listing 2 — ISA-only reduced-radix MAC.

    ``(h || l) <- (h || l) + a*b`` with the 128-bit accumulator in *h*,
    *l*; *y*, *z* are clobbered temporaries.
    """
    return [
        f"mulhu {z}, {a}, {b}",
        f"mul {y}, {a}, {b}",
        f"add {l}, {l}, {y}",
        f"sltu {y}, {l}, {y}",
        f"add {z}, {z}, {y}",
        f"add {h}, {h}, {z}",
    ]


def mac_full_radix_ise(
    e: str, h: str, l: str, a: str, b: str, z: str
) -> list[str]:
    """Listing 3 — ISE-supported full-radix MAC (half the instructions).

    ``maddhu`` folds the low-half carry internally; ``cadd`` replaces the
    remaining ``sltu``/``add`` pair.
    """
    return [
        f"maddhu {z}, {a}, {b}, {l}",
        f"maddlu {l}, {a}, {b}, {l}",
        f"cadd {e}, {h}, {z}, {e}",
        f"add {h}, {h}, {z}",
    ]


def mac_reduced_radix_ise(h: str, l: str, a: str, b: str) -> list[str]:
    """Listing 4 — ISE-supported reduced-radix MAC (two instructions).

    ``l <- l + (a*b)_{56..0}`` and ``h <- h + (a*b)_{120..57}``; the
    accumulator stays aligned to the radix automatically.
    """
    return [
        f"madd57hu {h}, {a}, {b}, {h}",
        f"madd57lu {l}, {a}, {b}, {l}",
    ]


def carry_propagate_isa(x: str, y: str, m: str, z: str) -> list[str]:
    """Radix-2^57 carry propagation from limb *x* into limb *y*, ISA-only.

    *m* must hold the mask ``2^57 - 1``; *z* is a clobbered temporary
    (Sect. 3.2, "Impact of our ISEs on software").
    """
    w = REDUCED_RADIX_BITS
    return [
        f"srai {z}, {x}, {w}",
        f"add {y}, {y}, {z}",
        f"and {x}, {x}, {m}",
    ]


def carry_propagate_ise(x: str, y: str, m: str) -> list[str]:
    """Radix-2^57 carry propagation with ``sraiadd`` (one fewer
    instruction and a weakened dependency chain)."""
    w = REDUCED_RADIX_BITS
    return [
        f"sraiadd {y}, {y}, {x}, {w}",
        f"and {x}, {x}, {m}",
    ]


#: Instruction counts asserted by the paper; benchmarked in E6/E7.
LISTING_INSTRUCTION_COUNTS = {
    "mac_full_radix_isa": 8,
    "mac_reduced_radix_isa": 6,
    "mac_full_radix_ise": 4,
    "mac_reduced_radix_ise": 2,
    "carry_propagate_isa": 3,
    "carry_propagate_ise": 2,
}
