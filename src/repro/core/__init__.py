"""The paper's primary contribution: ISEs for MPI arithmetic on RISC-V.

* :mod:`repro.core.ise` — the six custom instructions of Table 1 with
  executable semantics (Figures 1-3), their R4-type encodings, and the
  extended instruction sets;
* :mod:`repro.core.macros` — the MAC operation bodies of Listings 1-4
  and the carry-propagation sequences.
"""

from repro.core.ise import (
    ALL_ISE_SPECS,
    CADD,
    CUSTOM_FUNCT3,
    EXTENDED_ISA,
    FULL_RADIX_ISA,
    FULL_RADIX_SPECS,
    MADD57HU,
    MADD57LU,
    MADDHU,
    MADDLU,
    MASK57,
    REDUCED_RADIX_BITS,
    REDUCED_RADIX_ISA,
    REDUCED_RADIX_SPECS,
    SRAIADD,
    cadd_value,
    madd57hu_value,
    madd57lu_value,
    maddhu_value,
    maddlu_value,
    msa2,
    sraiadd_value,
)
from repro.core.macros import (
    LISTING_INSTRUCTION_COUNTS,
    carry_propagate_isa,
    carry_propagate_ise,
    mac_full_radix_isa,
    mac_full_radix_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)

__all__ = [
    "ALL_ISE_SPECS",
    "CADD",
    "CUSTOM_FUNCT3",
    "EXTENDED_ISA",
    "FULL_RADIX_ISA",
    "FULL_RADIX_SPECS",
    "MADD57HU",
    "MADD57LU",
    "MADDHU",
    "MADDLU",
    "MASK57",
    "REDUCED_RADIX_BITS",
    "REDUCED_RADIX_ISA",
    "REDUCED_RADIX_SPECS",
    "SRAIADD",
    "cadd_value",
    "madd57hu_value",
    "madd57lu_value",
    "maddhu_value",
    "maddlu_value",
    "msa2",
    "sraiadd_value",
    "LISTING_INSTRUCTION_COUNTS",
    "carry_propagate_isa",
    "carry_propagate_ise",
    "mac_full_radix_isa",
    "mac_full_radix_ise",
    "mac_reduced_radix_isa",
    "mac_reduced_radix_ise",
]
