"""The paper's custom instructions (Figures 1-3), executable and encoded.

Two ISE sets are proposed (Table 1), each with three custom instructions:

========================  ==============================================
full-radix                ``maddlu``, ``maddhu`` (fused 64x64 multiply-
                          add, low/high half), ``cadd`` (compute-carry-
                          then-add)
reduced-radix             ``madd57lu``, ``madd57hu`` (multiply-shift-
                          and-add over a full 64-bit multiplier, radix
                          2^57), ``sraiadd`` (fused arithmetic-shift-
                          then-add)
========================  ==============================================

Design guidelines honoured (Sect. 3.2): operands live in the scalar
general-purpose register file; no special architectural state; at most
two source addresses except for the performance-critical MAC
instructions, which use the standard R4-type format (as the RV64GC
floating-point FMA does).

Encodings follow the paper's figures: the R4-type instructions occupy
the custom opcode ``0b1111011`` with a 2-bit ``funct2`` selector in bits
26:25 (``maddlu``=00, ``maddhu``=01 per Figure 1; ``madd57lu``=10,
``madd57hu``=11 per Figure 2; ``cadd``=10 per Figure 3).  ``sraiadd``
occupies opcode ``0b0101011`` with its 6-bit shift amount in bits 30:25
and bit 31 set.  Note that ``cadd`` and ``madd57lu`` share an encoding
point: the two ISE sets are *alternatives* — a core implements one set
or the other (the paper synthesises two distinct extended cores, Table
3) — so the binary encoding spaces never coexist.  Use the per-set
instruction sets (:data:`FULL_RADIX_ISA`, :data:`REDUCED_RADIX_ISA`)
whenever binary decode matters; :data:`EXTENDED_ISA` unions all six
mnemonics for assembler convenience only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rv64.bits import MASK64, sra64, u64
from repro.rv64.isa import (
    BASE_ISA,
    FMT_R4,
    FMT_RIA,
    InstrSpec,
    Instruction,
    KIND_ALU,
    KIND_MUL,
    OP_CUSTOM_MADD,
    OP_CUSTOM_SRAIADD,
    register_global_spec,
)
from repro.rv64.aot import register_expr as register_aot_expr
from repro.rv64.jit import register_template as register_jit_template
from repro.rv64.replay import register_compiler as register_replay_compiler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rv64.machine import MachineState

#: Limb width of the paper's reduced-radix representation.
REDUCED_RADIX_BITS = 57
MASK57 = (1 << REDUCED_RADIX_BITS) - 1

#: funct3 shared by all custom instructions (per Figures 1-3).
CUSTOM_FUNCT3 = 0b111


# ---------------------------------------------------------------------------
# Reference semantics (pure functions, used by tests and the hardware model)
# ---------------------------------------------------------------------------

def msa2(x: int, y: int, j: int, m: int, z: int) -> int:
    """The paper's Multiply-Shift-And-Add paradigm.

    ``rd <- (((rs1 * rs2) >> j) & m) + rs3`` — the general form that
    covers ``mla``/``vpmadd52luq``-style instructions (Sect. 3.2) and our
    ``madd57lu``/``madd57hu``.
    """
    return u64((((u64(x) * u64(y)) >> j) & m) + z)


def maddlu_value(x: int, y: int, z: int) -> int:
    """``maddlu``: low 64 bits of ``x*y + z`` (Figure 1, left)."""
    return (u64(x) * u64(y) + u64(z)) & MASK64


def maddhu_value(x: int, y: int, z: int) -> int:
    """``maddhu``: bits 127..64 of ``x*y + z`` (Figure 1, right).

    Multiply-Add-Shift-And rather than MSA2: adding *z* before the shift
    folds the carry-out of the low half into the high half, saving the
    explicit ``sltu`` carry check of Listing 1.
    """
    return ((u64(x) * u64(y) + u64(z)) >> 64) & MASK64


def madd57lu_value(x: int, y: int, z: int) -> int:
    """``madd57lu``: ``((x*y) & (2^57-1)) + z`` (Figure 2, left)."""
    return msa2(x, y, 0, MASK57, z)


def madd57hu_value(x: int, y: int, z: int) -> int:
    """``madd57hu``: ``((x*y) >> 57) + z`` (Figure 2, right).

    The full 64-bit multiplier plus the (j, m) product-slice control is
    the paper's fix for the AVX-512IFMA *multiplier saturation problem*:
    limbs carrying a few delayed-carry extra bits still multiply
    correctly, because the datapath never truncates the inputs.
    """
    return msa2(x, y, REDUCED_RADIX_BITS, MASK64, z)


def cadd_value(x: int, y: int, z: int) -> int:
    """``cadd``: carry-out of ``x + y`` added to ``z`` (Figure 3)."""
    return u64(((u64(x) + u64(y)) >> 64) + u64(z))


def sraiadd_value(x: int, y: int, imm: int) -> int:
    """``sraiadd``: ``x + EXTS(y >> imm)`` (Figure 3) — fused srai+add."""
    return u64(u64(x) + sra64(y, imm))


# ---------------------------------------------------------------------------
# Machine-level execute functions
# ---------------------------------------------------------------------------

def _exec_maddlu(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, maddlu_value(
        regs.read(ins.rs1), regs.read(ins.rs2), regs.read(ins.rs3)))


def _exec_maddhu(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, maddhu_value(
        regs.read(ins.rs1), regs.read(ins.rs2), regs.read(ins.rs3)))


def _exec_madd57lu(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, madd57lu_value(
        regs.read(ins.rs1), regs.read(ins.rs2), regs.read(ins.rs3)))


def _exec_madd57hu(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, madd57hu_value(
        regs.read(ins.rs1), regs.read(ins.rs2), regs.read(ins.rs3)))


def _exec_cadd(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, cadd_value(
        regs.read(ins.rs1), regs.read(ins.rs2), regs.read(ins.rs3)))


def _exec_sraiadd(state: MachineState, ins: Instruction) -> None:
    regs = state.regs
    regs.write(ins.rd, sraiadd_value(
        regs.read(ins.rs1), regs.read(ins.rs2), ins.imm))


# ---------------------------------------------------------------------------
# Instruction specs and sets
# ---------------------------------------------------------------------------
# All custom instructions execute on XMUL: timing class KIND_MUL, so they
# share the multiplier's 2-stage pipeline latency, matching Sect. 3.3.

MADDLU = InstrSpec(
    "maddlu", FMT_R4, KIND_MUL, _exec_maddlu, OP_CUSTOM_MADD,
    funct3=CUSTOM_FUNCT3, funct2=0b00,
    description="rd <- (rs1*rs2 + rs3) & (2^64-1)")
MADDHU = InstrSpec(
    "maddhu", FMT_R4, KIND_MUL, _exec_maddhu, OP_CUSTOM_MADD,
    funct3=CUSTOM_FUNCT3, funct2=0b01,
    description="rd <- ((rs1*rs2 + rs3) >> 64) & (2^64-1)")
CADD = InstrSpec(
    "cadd", FMT_R4, KIND_MUL, _exec_cadd, OP_CUSTOM_MADD,
    funct3=CUSTOM_FUNCT3, funct2=0b10,
    description="rd <- ((rs1 + rs2) >> 64) + rs3")
MADD57LU = InstrSpec(
    "madd57lu", FMT_R4, KIND_MUL, _exec_madd57lu, OP_CUSTOM_MADD,
    funct3=CUSTOM_FUNCT3, funct2=0b10,
    description="rd <- ((rs1*rs2) & (2^57-1)) + rs3")
MADD57HU = InstrSpec(
    "madd57hu", FMT_R4, KIND_MUL, _exec_madd57hu, OP_CUSTOM_MADD,
    funct3=CUSTOM_FUNCT3, funct2=0b11,
    description="rd <- ((rs1*rs2) >> 57) + rs3")
# sraiadd executes in XMUL but bypasses the multiplier array (it is a
# fused shift+add), so a dependent instruction sees single-cycle latency
# like any ALU op — hence timing class "alu" rather than "mul".
SRAIADD = InstrSpec(
    "sraiadd", FMT_RIA, KIND_ALU, _exec_sraiadd, OP_CUSTOM_SRAIADD,
    funct3=CUSTOM_FUNCT3,
    description="rd <- rs1 + EXTS(rs2 >> imm)")

FULL_RADIX_SPECS = (MADDLU, MADDHU, CADD)
REDUCED_RADIX_SPECS = (MADD57LU, MADD57HU, SRAIADD)
ALL_ISE_SPECS = FULL_RADIX_SPECS + REDUCED_RADIX_SPECS

#: RV64GC-equivalent base + full-radix ISEs (one extended core variant).
FULL_RADIX_ISA = BASE_ISA.extend("rv64im+ise-full", FULL_RADIX_SPECS)

#: RV64GC-equivalent base + reduced-radix ISEs (the other variant).
REDUCED_RADIX_ISA = BASE_ISA.extend("rv64im+ise-reduced",
                                    REDUCED_RADIX_SPECS)

#: Union of all six mnemonics — assembler/simulator convenience only;
#: binary decode of this set is ambiguous (cadd/madd57lu share funct2).
EXTENDED_ISA = BASE_ISA.extend("rv64im+ise-all", ALL_ISE_SPECS)

for _spec in ALL_ISE_SPECS:
    register_global_spec(_spec)


# ---------------------------------------------------------------------------
# Trace-replay compilers
# ---------------------------------------------------------------------------
# Bind the same pure value functions the execute hooks use, so replay
# and interpreter semantics cannot drift (see repro.rv64.replay).

def _r4_compiler(value_fn):
    def compile_(state, ins, pc):
        if ins.rd == 0:
            return None
        regs = state.regs._regs
        rd, rs1, rs2, rs3 = ins.rd, ins.rs1, ins.rs2, ins.rs3

        def step() -> None:
            regs[rd] = value_fn(regs[rs1], regs[rs2], regs[rs3])

        return step

    return compile_


def _compile_sraiadd(state, ins, pc):
    if ins.rd == 0:
        return None
    regs = state.regs._regs
    rd, rs1, rs2, imm = ins.rd, ins.rs1, ins.rs2, ins.imm

    def step() -> None:
        regs[rd] = sraiadd_value(regs[rs1], regs[rs2], imm)

    return step


register_replay_compiler("maddlu", _r4_compiler(maddlu_value))
register_replay_compiler("maddhu", _r4_compiler(maddhu_value))
register_replay_compiler("madd57lu", _r4_compiler(madd57lu_value))
register_replay_compiler("madd57hu", _r4_compiler(madd57hu_value))
register_replay_compiler("cadd", _r4_compiler(cadd_value))
register_replay_compiler("sraiadd", _compile_sraiadd)


# ---------------------------------------------------------------------------
# Trace-JIT expression templates
# ---------------------------------------------------------------------------
# Inline the same algebra as the pure value functions above — the
# three-way differential suite (interpreter vs replay vs jit) pins the
# inlined expressions to the reference semantics, so they cannot drift.

def _jit_r4(expr: str):
    """Emitter for an R4-type instruction from an {a}/{b}/{c} expression
    (operands are jit locals holding values in [0, 2^64); ``M`` is the
    64-bit mask in the generated function's globals)."""
    def emit(ins, pc):
        return f"r{ins.rd} = " + expr.format(
            a=f"r{ins.rs1}", b=f"r{ins.rs2}", c=f"r{ins.rs3}")

    return emit


def _jit_sraiadd(ins, pc):
    # x + EXTS(y >> imm): the signed shift may be negative; the final
    # mask is the u64 wrap (mod 2^64 the two formulations agree)
    y = f"r{ins.rs2}"
    return (f"r{ins.rd} = (r{ins.rs1} + (({y} - (({y} >> 63) << 64)) "
            f">> {ins.imm & 63})) & M")


# maddhu needs no final mask: (x*y + z) <= 2^128 - 2^64, so the high
# half is already < 2^64; every other sum can carry past 64 bits.
register_jit_template("maddlu", _jit_r4("({a} * {b} + {c}) & M"))
register_jit_template("maddhu", _jit_r4("({a} * {b} + {c}) >> 64"))
register_jit_template(
    "madd57lu", _jit_r4(f"(({{a}} * {{b}} & {MASK57}) + {{c}}) & M"))
register_jit_template(
    "madd57hu",
    _jit_r4(f"(((({{a}} * {{b}}) >> {REDUCED_RADIX_BITS}) & M) + {{c}}) & M"))
register_jit_template("cadd", _jit_r4("((({a} + {b}) >> 64) + {c}) & M"))
register_jit_template("sraiadd", _jit_sraiadd)


# ---------------------------------------------------------------------------
# Whole-kernel aot expressions
# ---------------------------------------------------------------------------
# The aot tier fuses these into its dataflow graph (constant-folding
# through them where operands are static), instead of falling back to
# one bound-lambda call per instruction; the fallback would also make
# the compiled artifact non-persistable (docs/SIMULATOR.md).  Same
# algebra as the jit templates above; the four-way differential suite
# pins all tiers to the reference semantics.

register_aot_expr("maddlu", "r4", "({a} * {b} + {c}) & M")
register_aot_expr("maddhu", "r4", "({a} * {b} + {c}) >> 64")
register_aot_expr(
    "madd57lu", "r4", f"(({{a}} * {{b}} & {MASK57}) + {{c}}) & M")
register_aot_expr(
    "madd57hu", "r4",
    f"(((({{a}} * {{b}}) >> {REDUCED_RADIX_BITS}) & M) + {{c}}) & M")
register_aot_expr("cadd", "r4", "((({a} + {b}) >> 64) + {c}) & M")
# x + EXTS(y >> imm): {sb} is the signed reinterpretation of rs2
register_aot_expr("sraiadd", "ria", "({a} + ({sb} >> {sh})) & M")
