"""Analysis tools: constant-time verification, static kernel profiling,
and the list scheduler used by the scheduling ablation (E10)."""

from repro.analysis.ct import (
    CtReport,
    ExecutionTrace,
    boundary_inputs,
    trace_execution,
    verify_constant_time,
)
from repro.analysis.schedule import schedule, schedule_source
from repro.analysis.static import (
    KernelProfile,
    MAC_MNEMONICS,
    compare_profiles,
    profile_kernel,
    profile_program,
)

__all__ = [
    "CtReport",
    "ExecutionTrace",
    "boundary_inputs",
    "trace_execution",
    "verify_constant_time",
    "schedule",
    "schedule_source",
    "KernelProfile",
    "MAC_MNEMONICS",
    "compare_profiles",
    "profile_kernel",
    "profile_program",
]
