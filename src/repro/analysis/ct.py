"""Constant-time verification of generated kernels.

The paper stresses that its F_p assembly functions are *constant time*.
For straight-line code on an in-order core, constant-time execution is
equivalent to two trace properties being input-independent:

1. the **instruction trace** (sequence of program-counter values) —
   no secret-dependent branches;
2. the **memory-address trace** — no secret-dependent table lookups.

:func:`verify_constant_time` executes a kernel on a set of operand
vectors, records both traces, and reports whether they coincide; since
the timing model is a deterministic function of those traces (plus
cache state, which the address trace pins), equal traces imply equal
cycle counts for all inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.kernels.spec import Kernel
from repro.kernels.runner import KernelRunner
from repro.rv64.machine import Machine


@dataclass
class ExecutionTrace:
    """PC and memory-address traces of one kernel execution."""

    pcs: list[int] = field(default_factory=list)
    addresses: list[int | None] = field(default_factory=list)
    cycles: int = 0

    def __len__(self) -> int:
        return len(self.pcs)


@dataclass(frozen=True)
class CtReport:
    """Outcome of a constant-time check."""

    kernel_name: str
    samples: int
    constant_time: bool
    first_divergence: int | None = None  # instruction index
    detail: str = ""


def trace_execution(runner: KernelRunner, values: tuple[int, ...],
                    *, check: bool = True) -> ExecutionTrace:
    """Run the kernel once, recording pc and memory-address streams."""
    trace = ExecutionTrace()
    machine: Machine = runner.machine

    def hook(state, ins) -> None:
        trace.pcs.append(state.pc)
        trace.addresses.append(state.last_address)

    machine.add_trace_hook(hook)
    try:
        run = runner.run(*values, check=check)
    finally:
        machine._trace_hooks.remove(hook)
    trace.cycles = run.cycles
    return trace


def _compare(a: ExecutionTrace, b: ExecutionTrace) -> int | None:
    """Index of the first divergence between two traces, else None."""
    if len(a) != len(b):
        return min(len(a), len(b))
    for index, (pa, pb) in enumerate(zip(a.pcs, b.pcs)):
        if pa != pb:
            return index
    for index, (aa, ab) in enumerate(zip(a.addresses, b.addresses)):
        if aa != ab:
            return index
    return None


def verify_constant_time(
    kernel: Kernel,
    *,
    samples: int = 6,
    seed: int = 0xC0117,
    extra_inputs: list[tuple[int, ...]] | None = None,
) -> CtReport:
    """Check that *kernel*'s traces are identical across inputs.

    Draws *samples* random operand vectors from the kernel's sampler
    (plus any *extra_inputs*, e.g. adversarial corner cases) and
    compares every execution's traces against the first.
    """
    rng = random.Random(seed)
    runner = KernelRunner(kernel)
    inputs = [kernel.sampler(rng) for _ in range(samples)]
    inputs.extend(extra_inputs or [])

    reference = trace_execution(runner, inputs[0])
    for values in inputs[1:]:
        trace = trace_execution(runner, values)
        divergence = _compare(reference, trace)
        if divergence is not None:
            return CtReport(
                kernel_name=kernel.name,
                samples=len(inputs),
                constant_time=False,
                first_divergence=divergence,
                detail=(
                    f"trace diverges at instruction {divergence} "
                    f"for inputs {[hex(v) for v in values]}"
                ),
            )
        if trace.cycles != reference.cycles:
            return CtReport(
                kernel_name=kernel.name,
                samples=len(inputs),
                constant_time=False,
                detail=(
                    f"cycle count varies: {reference.cycles} vs "
                    f"{trace.cycles}"
                ),
            )
    return CtReport(kernel_name=kernel.name, samples=len(inputs),
                    constant_time=True)


def boundary_inputs(kernel: Kernel) -> list[tuple[int, ...]]:
    """Adversarial operand vectors: zeros, ones, p-1, all-ones limbs."""
    p = kernel.context.modulus
    arity = len(kernel.input_limbs)
    singles = [0, 1, p - 1, p // 2]
    return [tuple(value for _ in range(arity)) for value in singles]
