"""Static analysis of generated kernels.

Provides the instruction-mix and dependency-structure views used in the
evaluation narrative: how many MAC-class instructions a kernel
contains, the longest register dependency chain (a lower bound on
execution time for an in-order core), and per-kind breakdowns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.kernels.spec import Kernel
from repro.rv64.assembler import assemble
from repro.rv64.isa import (
    KIND_LOAD,
    KIND_MUL,
    KIND_STORE,
    InstructionSet,
)

#: mnemonics implementing the multiply-accumulate work
MAC_MNEMONICS = frozenset({
    "mul", "mulhu", "maddlu", "maddhu", "madd57lu", "madd57hu",
})


@dataclass(frozen=True)
class KernelProfile:
    """Static characteristics of one kernel."""

    name: str
    instructions: int
    kind_counts: dict[str, int]
    mnemonic_counts: dict[str, int]
    mac_instructions: int
    loads: int
    stores: int
    critical_path: int  # longest dependency chain in latency cycles

    @property
    def arithmetic_intensity(self) -> float:
        """MAC instructions per memory access."""
        memory = self.loads + self.stores
        return self.mac_instructions / memory if memory else 0.0


def _latency(kind: str) -> int:
    # static critical-path weights: mul-class 3, loads 2, rest 1
    if kind == KIND_MUL:
        return 3
    if kind == KIND_LOAD:
        return 2
    return 1


def profile_kernel(kernel: Kernel) -> KernelProfile:
    """Compute the static profile of *kernel*."""
    program = assemble(kernel.source, kernel.isa)
    return profile_program(kernel.name, program.instructions,
                           kernel.isa)


def profile_program(
    name: str, instructions, isa: InstructionSet
) -> KernelProfile:
    """Static profile of an instruction list under *isa*."""
    kinds: Counter[str] = Counter()
    mnemonics: Counter[str] = Counter()
    ready = [0] * 32  # completion time of the chain producing each reg
    critical = 0

    for ins in instructions:
        spec = isa[ins.mnemonic]
        kinds[spec.kind] += 1
        mnemonics[ins.mnemonic] += 1
        start = 0
        for source in spec.reads:
            reg = getattr(ins, source)
            if reg and ready[reg] > start:
                start = ready[reg]
        finish = start + _latency(spec.kind)
        if spec.writes_rd and ins.rd:
            ready[ins.rd] = finish
        if finish > critical:
            critical = finish

    mac_count = sum(mnemonics[m] for m in MAC_MNEMONICS)
    return KernelProfile(
        name=name,
        instructions=len(instructions),
        kind_counts=dict(kinds),
        mnemonic_counts=dict(mnemonics),
        mac_instructions=mac_count,
        loads=kinds.get(KIND_LOAD, 0),
        stores=kinds.get(KIND_STORE, 0),
        critical_path=critical,
    )


def compare_profiles(
    a: KernelProfile, b: KernelProfile
) -> dict[str, float]:
    """Relative change (b vs. a) of the headline static metrics."""
    def ratio(x: int, y: int) -> float:
        return y / x if x else float("inf")

    return {
        "instructions": ratio(a.instructions, b.instructions),
        "macs": ratio(a.mac_instructions, b.mac_instructions),
        "critical_path": ratio(a.critical_path, b.critical_path),
    }
