"""List scheduler for straight-line kernels.

The paper's assembly is hand-optimised; the authors interleave
independent operations so the 2-stage multiplier's latency is hidden.
Our kernel *generators* emit naive sequential code, which costs some
cycles on dependency stalls.  This pass recovers the hand-scheduling:
it builds the register/memory dependency DAG of a straight-line
instruction sequence and re-orders it greedily by critical-path height,
respecting all RAW/WAR/WAW and memory-order constraints.

Used by the E10 scheduling ablation to quantify how much of our
ISA-only gap to the paper is explained by instruction scheduling alone.
Semantics preservation is guaranteed by construction (only independent
instructions commute) and re-checked in tests by running scheduled
kernels against their golden references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rv64.isa import (
    Instruction,
    InstructionSet,
    KIND_BRANCH,
    KIND_JUMP,
    KIND_LOAD,
    KIND_MUL,
    KIND_STORE,
    KIND_SYSTEM,
)

_BARRIER_KINDS = frozenset({KIND_BRANCH, KIND_JUMP, KIND_SYSTEM})


@dataclass
class _Node:
    index: int
    ins: Instruction
    kind: str
    successors: list[int] = field(default_factory=list)
    predecessors: int = 0
    height: int = 0


def _latency(kind: str) -> int:
    if kind == KIND_MUL:
        return 3
    if kind == KIND_LOAD:
        return 2
    return 1


def _build_dag(
    instructions: list[Instruction], isa: InstructionSet
) -> list[_Node]:
    nodes = [
        _Node(i, ins, isa[ins.mnemonic].kind)
        for i, ins in enumerate(instructions)
    ]
    last_writer: dict[int, int] = {}
    readers: dict[int, list[int]] = {}
    last_store: int | None = None
    loads_since_store: list[int] = []
    edges: set[tuple[int, int]] = set()

    def add_edge(src: int, dst: int) -> None:
        if src != dst and (src, dst) not in edges:
            edges.add((src, dst))
            nodes[src].successors.append(dst)
            nodes[dst].predecessors += 1

    for i, ins in enumerate(instructions):
        spec = isa[ins.mnemonic]
        sources = [getattr(ins, f) for f in spec.reads]
        for reg in sources:
            if reg and reg in last_writer:
                add_edge(last_writer[reg], i)          # RAW
        if spec.writes_rd and ins.rd:
            rd = ins.rd
            for reader in readers.get(rd, ()):
                add_edge(reader, i)                     # WAR
            if rd in last_writer:
                add_edge(last_writer[rd], i)            # WAW
            last_writer[rd] = i
            readers[rd] = []
        for reg in sources:
            if reg:
                readers.setdefault(reg, []).append(i)

        kind = spec.kind
        if kind == KIND_LOAD:
            if last_store is not None:
                add_edge(last_store, i)                 # load after store
            loads_since_store.append(i)
        elif kind == KIND_STORE:
            if last_store is not None:
                add_edge(last_store, i)                 # store ordering
            for load in loads_since_store:
                add_edge(load, i)                       # store after loads
            last_store = i
            loads_since_store = []
        elif kind in _BARRIER_KINDS:
            for j in range(i):                          # full barrier
                add_edge(j, i)
    return nodes


def _compute_heights(nodes: list[_Node]) -> None:
    for node in reversed(nodes):
        best = 0
        for succ in node.successors:
            if nodes[succ].height > best:
                best = nodes[succ].height
        node.height = best + _latency(node.kind)


def schedule(
    instructions: list[Instruction], isa: InstructionSet
) -> list[Instruction]:
    """Re-order a straight-line sequence to minimise in-order stalls.

    Greedy cycle-driven list scheduling: at each simulated cycle the
    ready instruction with the greatest critical-path height issues
    (tie-broken by original order, keeping the result deterministic).
    """
    if not instructions:
        return []
    nodes = _build_dag(instructions, isa)
    _compute_heights(nodes)

    indegree = [node.predecessors for node in nodes]
    earliest = [0] * len(nodes)  # operand-ready cycle
    ready = [i for i, degree in enumerate(indegree) if degree == 0]
    out: list[Instruction] = []
    cycle = 0

    while ready:
        issuable = [i for i in ready if earliest[i] <= cycle]
        if not issuable:
            cycle = min(earliest[i] for i in ready)
            continue
        issuable.sort(key=lambda i: (-nodes[i].height, i))
        chosen = issuable[0]
        ready.remove(chosen)
        out.append(nodes[chosen].ins)
        finish = cycle + _latency(nodes[chosen].kind)
        for succ in nodes[chosen].successors:
            if earliest[succ] < finish:
                earliest[succ] = finish
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        cycle += 1

    if len(out) != len(instructions):
        raise AssertionError("scheduler dropped instructions")
    return out


def schedule_source(source: str, isa: InstructionSet) -> str:
    """Schedule assembly text; returns re-ordered assembly text."""
    from repro.rv64.assembler import assemble
    from repro.rv64.disassembler import format_instruction

    program = assemble(source, isa)
    reordered = schedule(program.instructions, isa)
    return "\n".join(
        "    " + format_instruction(isa, ins) for ins in reordered
    ) + "\n"
