"""CSIDH non-interactive key exchange built on the group action.

The protocol is the commutative-group-action Diffie-Hellman of the
CSIDH paper: private keys are exponent vectors, public keys are curve
coefficients, and the shared secret follows from the commutativity

    [a] * ([b] * E0)  ==  [b] * ([a] * E0).

Public keys are a single F_p element (64 bytes for CSIDH-512 — the
"extremely short keys" the paper highlights).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro import telemetry
from repro.csidh.group_action import ActionStats, group_action
from repro.csidh.parameters import CsidhParameters
from repro.csidh.validate import is_supersingular
from repro.errors import FaultDetectedError, ProtocolError
from repro.field.fp import FieldContext

#: Coefficient of the starting curve ``E_0 : y^2 = x^3 + x``.
BASE_COEFFICIENT = 0


@dataclass(frozen=True)
class PrivateKey:
    """An exponent vector in ``[-m, m]^n``."""

    exponents: tuple[int, ...]

    def to_bytes(self, params: CsidhParameters) -> bytes:
        """Pack each exponent as one signed byte (|e| <= m <= 127)."""
        return bytes((e + 256) % 256 for e in self.exponents)

    @staticmethod
    def from_bytes(data: bytes, params: CsidhParameters) -> "PrivateKey":
        if len(data) != params.num_primes:
            raise ProtocolError(
                f"private key must be {params.num_primes} bytes"
            )
        exponents = tuple(
            b - 256 if b >= 128 else b for b in data
        )
        if any(abs(e) > params.max_exponent for e in exponents):
            raise ProtocolError("exponent out of range")
        return PrivateKey(exponents)

    @staticmethod
    def derive(seed: bytes, params: CsidhParameters) -> "PrivateKey":
        """Deterministically expand a byte seed into an exponent vector
        (SHAKE-256 with rejection sampling for unbiased exponents) —
        the way deployed implementations store private keys."""
        bound = 2 * params.max_exponent + 1
        # rejection threshold: largest multiple of `bound` below 256
        limit = 256 - (256 % bound)
        shake = hashlib.shake_256()
        shake.update(b"csidh private key")
        shake.update(seed)
        stream = shake.digest(64 * params.num_primes)
        exponents = []
        for byte in stream:
            if byte < limit:
                exponents.append(byte % bound - params.max_exponent)
                if len(exponents) == params.num_primes:
                    return PrivateKey(tuple(exponents))
        raise ProtocolError(
            "seed expansion exhausted (astronomically unlikely)"
        )


@dataclass(frozen=True)
class PublicKey:
    """A supersingular Montgomery coefficient ``A in F_p``."""

    coefficient: int

    def to_bytes(self, params: CsidhParameters) -> bytes:
        length = (params.p.bit_length() + 7) // 8
        return self.coefficient.to_bytes(length, "little")

    @staticmethod
    def from_bytes(data: bytes) -> "PublicKey":
        return PublicKey(int.from_bytes(data, "little"))


class Csidh:
    """One party's view of the CSIDH key exchange.

    ``verify_output=True`` enables the classic countermeasure against
    fault attacks on isogeny walks (see ``docs/ROBUSTNESS.md``): every
    computed curve — public key and shared secret alike — is validated
    to be supersingular before it is released.  A group action skewed
    by an injected fault lands on a wrong curve, which this check
    rejects with :class:`~repro.errors.FaultDetectedError` instead of
    leaking it to the peer (the leak is what makes CSIDH fault attacks
    key-recovering).
    """

    def __init__(
        self,
        params: CsidhParameters,
        *,
        field: FieldContext | None = None,
        seed: int | None = None,
        verify_output: bool = False,
    ) -> None:
        self.params = params
        self.field = field if field is not None else FieldContext(params.p)
        self.verify_output = verify_output
        self._rng = random.Random(seed)

    def _checked_output(self, coefficient: int, what: str) -> int:
        if self.verify_output:
            with telemetry.span("verify_output"):
                valid = is_supersingular(
                    self.params, self.field, coefficient, self._rng)
            if not valid:
                telemetry.record_fault_detected(what, "protocol")
                raise FaultDetectedError(
                    f"{what} is not a supersingular curve; the group "
                    f"action was corrupted mid-walk (withholding the "
                    f"result — releasing it would enable a "
                    f"fault-attack on the private key)")
        return coefficient

    # -- key management ------------------------------------------------------

    def generate_private_key(self) -> PrivateKey:
        return PrivateKey(self.params.sample_private_key(self._rng))

    def public_key(
        self, private: PrivateKey, *, stats: ActionStats | None = None
    ) -> PublicKey:
        """``[private] * E_0``."""
        with telemetry.span("public_key"):
            coefficient = group_action(
                self.params, self.field, BASE_COEFFICIENT,
                private.exponents, self._rng, stats=stats,
            )
        return PublicKey(self._checked_output(coefficient,
                                              "public key"))

    def keygen(self) -> tuple[PrivateKey, PublicKey]:
        private = self.generate_private_key()
        return private, self.public_key(private)

    # -- key exchange --------------------------------------------------------

    def shared_secret(
        self,
        private: PrivateKey,
        peer: PublicKey,
        *,
        validate: bool = True,
        stats: ActionStats | None = None,
    ) -> int:
        """``[private] * E_peer`` — the shared curve coefficient.

        With *validate* (the default, as the CSIDH paper mandates for
        static keys) the peer's key is first checked to be a valid
        supersingular curve; an invalid key raises
        :class:`~repro.errors.ProtocolError`.
        """
        peer_a = peer.coefficient % self.params.p
        with telemetry.span("shared_secret"):
            if validate:
                with telemetry.span("validate_peer"):
                    valid = is_supersingular(
                        self.params, self.field, peer_a, self._rng)
                if not valid:
                    raise ProtocolError(
                        "peer public key failed validation")
            secret = group_action(
                self.params, self.field, peer_a,
                private.exponents, self._rng, stats=stats,
            )
        return self._checked_output(secret, "shared secret")


def derive_symmetric_key(
    shared_secret: int,
    params: CsidhParameters,
    *,
    length: int = 32,
    context: bytes = b"csidh-512 shared key",
) -> bytes:
    """KDF step of a real deployment: hash the shared curve coefficient
    into a symmetric key (SHAKE-256, domain-separated)."""
    encoded = PublicKey(shared_secret).to_bytes(params)
    shake = hashlib.shake_256()
    shake.update(context)
    shake.update(len(encoded).to_bytes(2, "little"))
    shake.update(encoded)
    return shake.digest(length)


def key_exchange_demo(
    params: CsidhParameters, *, seed: int = 1
) -> tuple[int, int]:
    """Run a complete exchange; returns both parties' shared secrets
    (equal by commutativity — asserted by the caller/tests)."""
    alice = Csidh(params, seed=seed)
    bob = Csidh(params, seed=seed + 1)
    alice_priv, alice_pub = alice.keygen()
    bob_priv, bob_pub = bob.keygen()
    secret_a = alice.shared_secret(alice_priv, bob_pub)
    secret_b = bob.shared_secret(bob_priv, alice_pub)
    return secret_a, secret_b
