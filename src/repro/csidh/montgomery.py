"""x-only Montgomery curve arithmetic over an instrumented F_p.

CSIDH works on Montgomery curves ``E_A : y^2 = x^3 + A x^2 + x`` using
x-only projective points ``(X : Z)`` and the classic differential
arithmetic (xDBL / xADD / Montgomery ladder).  The curve coefficient is
kept projective as ``(A24plus : C24) = (A + 2C : 4C)`` so the whole
group action needs only a single inversion at the very end — the same
trick as the optimised CSIDH implementations the paper builds on.

A crucial property exploited by the group action: these formulas never
reference the y-coordinate, so they are simultaneously correct on the
curve and on its quadratic twist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.field.fp import FieldContext


@dataclass(frozen=True)
class XPoint:
    """Projective x-only point ``(X : Z)``; ``Z == 0`` encodes infinity."""

    X: int
    Z: int

    @property
    def is_infinity(self) -> bool:
        return self.Z == 0

    def normalise(self, field: FieldContext) -> int:
        """Affine x-coordinate (one counted inversion)."""
        if self.is_infinity:
            raise ParameterError("the point at infinity has no x")
        return field.mul(self.X, field.inv(self.Z))


INFINITY = XPoint(1, 0)


@dataclass(frozen=True)
class Curve:
    """Montgomery coefficient in projective ``(A24plus : C24)`` form."""

    A24plus: int   # A + 2C
    C24: int       # 4C

    @staticmethod
    def from_affine(field: FieldContext, a: int) -> "Curve":
        """Curve for an affine coefficient A (C = 1), uncounted setup."""
        p = field.p
        return Curve((a + 2) % p, 4 % p)

    def affine_a(self, field: FieldContext) -> int:
        """Recover affine ``A = (4*A24plus - 2*C24) / C24``."""
        if self.C24 % field.p == 0:
            raise ParameterError("degenerate curve: C = 0")
        four_a24 = field.add(
            field.add(self.A24plus, self.A24plus),
            field.add(self.A24plus, self.A24plus),
        )
        two_c24 = field.add(self.C24, self.C24)
        numerator = field.sub(four_a24, two_c24)
        return field.mul(numerator, field.inv(self.C24))

    def is_smooth(self, field: FieldContext) -> bool:
        """True unless the curve is singular (A = +-2, i.e. j = infty)."""
        a = self.affine_a(field)
        return a not in (2, field.p - 2)


def curve_rhs(field: FieldContext, a: int, x: int) -> int:
    """``x^3 + A x^2 + x`` — the Montgomery curve equation RHS."""
    x2 = field.sqr(x)
    ax2 = field.mul(a, x2)
    x3 = field.mul(x2, x)
    return field.add(field.add(x3, ax2), x)


def xdbl(field: FieldContext, point: XPoint, curve: Curve) -> XPoint:
    """Doubling: 4M + 2S (SIKE-style formulas on (A24plus : C24))."""
    t0 = field.sub(point.X, point.Z)
    t1 = field.add(point.X, point.Z)
    t0 = field.sqr(t0)
    t1 = field.sqr(t1)
    z2 = field.mul(curve.C24, t0)
    x2 = field.mul(z2, t1)
    t1 = field.sub(t1, t0)
    t0 = field.mul(curve.A24plus, t1)
    z2 = field.add(z2, t0)
    z2 = field.mul(z2, t1)
    return XPoint(x2, z2)


def xadd(
    field: FieldContext, p: XPoint, q: XPoint, diff: XPoint
) -> XPoint:
    """Differential addition ``P + Q`` given ``P - Q``: 4M + 2S."""
    t0 = field.add(p.X, p.Z)
    t1 = field.sub(p.X, p.Z)
    t2 = field.add(q.X, q.Z)
    t3 = field.sub(q.X, q.Z)
    t0 = field.mul(t0, t3)
    t1 = field.mul(t1, t2)
    t2 = field.add(t0, t1)
    t3 = field.sub(t0, t1)
    t2 = field.sqr(t2)
    t3 = field.sqr(t3)
    x = field.mul(diff.Z, t2)
    z = field.mul(diff.X, t3)
    return XPoint(x, z)


def ladder(
    field: FieldContext, k: int, point: XPoint, curve: Curve
) -> XPoint:
    """Montgomery ladder: ``[k] point`` (x-only scalar multiplication)."""
    if k < 0:
        raise ParameterError("ladder requires a non-negative scalar")
    if k == 0 or point.is_infinity:
        return INFINITY
    r0, r1 = point, xdbl(field, point, curve)
    for bit in bin(k)[3:]:
        if bit == "0":
            r1 = xadd(field, r0, r1, point)
            r0 = xdbl(field, r0, curve)
        else:
            r0 = xadd(field, r0, r1, point)
            r1 = xdbl(field, r1, curve)
    return r0


def sample_point_x(field: FieldContext, a: int, rng) -> tuple[int, int]:
    """Draw a uniform ``x`` and classify it: returns ``(x, s)`` with
    ``s = +1`` if x lies on ``E_A`` and ``s = -1`` if on its quadratic
    twist (``s = 0`` for the rare 2-torsion x with rhs == 0)."""
    x = rng.randrange(1, field.p)
    rhs = curve_rhs(field, a, x)
    return x, field.legendre(rhs)
