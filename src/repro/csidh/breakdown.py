"""Phase-level cost breakdown of the CSIDH group action.

Decomposes an instrumented group action into its constituent phases —
point sampling + quadraticity tests (Legendre symbols), cofactor
ladders, kernel-generation ladders, isogeny computation/evaluation and
the per-round coefficient normalisation — so the evaluation can say
*where* the half-million multiplications go.  This mirrors the analysis
behind the paper's focus on Montgomery multiplication ("it dominates
the execution time").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.csidh.isogeny import isogeny
from repro.csidh.montgomery import Curve, XPoint, curve_rhs, ladder
from repro.csidh.parameters import CsidhParameters
from repro.errors import ProtocolError
from repro.field.counters import CountingScope, OpCounter
from repro.field.fp import FieldContext

PHASES = (
    "sampling",       # random x + Legendre classification
    "cofactor",       # [(p+1)/k] ladder clearing unwanted torsion
    "kernel",         # [k/l_i] ladders producing kernel points
    "isogeny",        # codomain + point evaluation
    "normalise",      # projective -> affine coefficient (inversions)
)


@dataclass
class PhaseBreakdown:
    """Per-phase operation counters for one or more group actions."""

    phases: dict[str, OpCounter] = field(
        default_factory=lambda: {name: OpCounter() for name in PHASES})
    actions: int = 0

    @property
    def total(self) -> OpCounter:
        out = OpCounter()
        for counter in self.phases.values():
            out = out + counter
        return out

    def fractions(self) -> dict[str, float]:
        """Phase -> fraction of total mul-equivalents."""
        total = self.total.mul_equivalents
        if not total:
            return {name: 0.0 for name in PHASES}
        return {
            name: counter.mul_equivalents / total
            for name, counter in self.phases.items()
        }

    def report(self) -> str:
        lines = [f"{'phase':12s}{'mul':>9s}{'sqr':>9s}{'add':>9s}"
                 f"{'sub':>9s}{'share':>8s}"]
        fractions = self.fractions()
        for name in PHASES:
            ops = self.phases[name]
            lines.append(
                f"{name:12s}{ops.mul:>9d}{ops.sqr:>9d}{ops.add:>9d}"
                f"{ops.sub:>9d}{100 * fractions[name]:>7.1f}%"
            )
        return "\n".join(lines)


def group_action_breakdown(
    params: CsidhParameters,
    exponents: tuple[int, ...],
    *,
    coefficient: int = 0,
    seed: int = 0,
    max_rounds: int = 10_000,
) -> PhaseBreakdown:
    """Run one group action with per-phase counting.

    This is a re-instrumented copy of
    :func:`repro.csidh.group_action.group_action` (kept in sync by the
    equivalence test in the suite): same algorithm, same results, but
    each phase's field work is recorded separately.
    """
    field_ctx = FieldContext(params.p)
    counter = field_ctx.counter
    rng = random.Random(seed)
    breakdown = PhaseBreakdown(actions=1)
    phases = breakdown.phases

    p = params.p
    ells = params.ells
    pending = list(exponents)
    a = coefficient % p

    rounds = 0
    while any(pending):
        rounds += 1
        if rounds > max_rounds:
            raise ProtocolError("group action did not converge")

        with CountingScope(counter) as scope:
            x = rng.randrange(1, p)
            rhs = curve_rhs(field_ctx, a, x)
            side = field_ctx.legendre(rhs)
        phases["sampling"] = phases["sampling"] + scope.delta
        if side == 0:
            continue
        todo = [
            i for i, e in enumerate(pending)
            if e != 0 and (1 if e > 0 else -1) == side
        ]
        if not todo:
            continue

        k = math.prod(ells[i] for i in todo)
        curve = Curve.from_affine(field_ctx, a)
        with CountingScope(counter) as scope:
            point = ladder(field_ctx, (p + 1) // k, XPoint(x, 1), curve)
        phases["cofactor"] = phases["cofactor"] + scope.delta

        for position, i in enumerate(todo):
            ell = ells[i]
            if point.is_infinity:
                break
            with CountingScope(counter) as scope:
                kernel = ladder(field_ctx, k // ell, point, curve)
            phases["kernel"] = phases["kernel"] + scope.delta
            if kernel.is_infinity:
                k //= ell
                continue
            push = (point,) if position < len(todo) - 1 else ()
            with CountingScope(counter) as scope:
                result = isogeny(field_ctx, curve, kernel, ell,
                                 push=push)
            phases["isogeny"] = phases["isogeny"] + scope.delta
            curve = result.curve
            point = result.images[0] if push else XPoint(1, 0)
            k //= ell
            pending[i] -= side

        with CountingScope(counter) as scope:
            a = curve.affine_a(field_ctx)
        phases["normalise"] = phases["normalise"] + scope.delta

    return breakdown
