"""Instrumented CSIDH runs: field-operation counts for the cycle model.

:func:`count_group_action` executes a real group action with a counting
:class:`FieldContext` and returns the exact number of F_p
multiplications, squarings, additions and subtractions performed.
Combined with the per-operation cycle costs measured on the ISA
simulator, this reproduces the paper's Table 4 bottom row (the
CSIDH-512 group action takes roughly half a million field
multiplications-equivalents, dominating everything above it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.csidh.group_action import ActionStats, group_action
from repro.csidh.parameters import CsidhParameters
from repro.field.counters import OpCounter
from repro.field.fp import FieldContext


@dataclass(frozen=True)
class GroupActionProfile:
    """Operation counts and diagnostics of one (or several) actions."""

    ops: OpCounter
    stats: ActionStats
    actions: int

    def per_action(self) -> OpCounter:
        n = max(self.actions, 1)
        return OpCounter(
            mul=self.ops.mul // n,
            sqr=self.ops.sqr // n,
            add=self.ops.add // n,
            sub=self.ops.sub // n,
        )


def count_group_action(
    params: CsidhParameters,
    exponents: tuple[int, ...],
    *,
    coefficient: int = 0,
    seed: int = 0,
) -> GroupActionProfile:
    """Count the field work of one group-action evaluation."""
    counter = OpCounter()
    field = FieldContext(params.p, counter)
    stats = ActionStats()
    group_action(params, field, coefficient, exponents,
                 random.Random(seed), stats=stats)
    return GroupActionProfile(ops=counter, stats=stats, actions=1)


def average_group_action_profile(
    params: CsidhParameters,
    *,
    keys: int = 3,
    seed: int = 0,
) -> GroupActionProfile:
    """Average the op counts over *keys* random private keys.

    The group action's cost varies with the exponent vector and the luck
    of the point sampling; the paper reports a single number per
    variant, which we model as the mean over seeded random keys.
    """
    rng = random.Random(seed)
    total = OpCounter()
    stats = ActionStats()
    for _ in range(keys):
        exponents = params.sample_private_key(rng)
        counter = OpCounter()
        field = FieldContext(params.p, counter)
        group_action(params, field, 0, exponents, rng, stats=stats)
        total = total + counter
    return GroupActionProfile(ops=total, stats=stats, actions=keys)
