"""CSIDH parameter sets.

CSIDH primes have the special form ``p = 4 * l_1 * ... * l_n - 1`` with
small odd prime factors ``l_i`` (Sect. 2, "Basic CSIDH facts").  The
paper evaluates CSIDH-512 (511-bit p, NIST PQ level 1): the first 73 odd
primes 3..373 plus 587, with private-key exponents drawn from
``[-5, 5]^74``.

Toy parameter sets with the same structure are provided for end-to-end
tests that run the whole group action *on the ISA simulator*, which is
far too slow for the real 511-bit prime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ParameterError
from repro.mpi.primality import first_odd_primes, is_prime


@dataclass(frozen=True)
class CsidhParameters:
    """One CSIDH instantiation."""

    name: str
    ells: tuple[int, ...]        # the small odd prime factors l_1 < ... < l_n
    max_exponent: int            # private exponents drawn from [-m, m]

    def __post_init__(self) -> None:
        if not self.ells:
            raise ParameterError("need at least one isogeny degree")
        if list(self.ells) != sorted(set(self.ells)):
            raise ParameterError("ells must be strictly increasing")
        if self.max_exponent < 1:
            raise ParameterError("max_exponent must be >= 1")

    @property
    def p(self) -> int:
        """The field prime ``4 * prod(ells) - 1``."""
        return 4 * math.prod(self.ells) - 1

    @property
    def num_primes(self) -> int:
        return len(self.ells)

    @property
    def key_space_bits(self) -> float:
        """log2 of the private-key space ``(2m+1)^n``."""
        return self.num_primes * math.log2(2 * self.max_exponent + 1)

    def validate(self) -> None:
        """Check the structural properties the protocol relies on."""
        p = self.p
        if not is_prime(p):
            raise ParameterError(f"{self.name}: p is not prime")
        if p % 8 != 3:
            raise ParameterError(
                f"{self.name}: p = {p % 8} (mod 8), need 3 "
                "(so End(E) = Z[sqrt(-p)] and A=0 is supersingular)"
            )
        for ell in self.ells:
            if not is_prime(ell) or ell == 2:
                raise ParameterError(
                    f"{self.name}: factor {ell} is not an odd prime"
                )

    def sample_private_key(self, rng) -> tuple[int, ...]:
        """Uniform exponent vector in ``[-m, m]^n``."""
        m = self.max_exponent
        return tuple(rng.randint(-m, m) for _ in self.ells)


@lru_cache(maxsize=None)
def csidh_512() -> CsidhParameters:
    """The paper's CSIDH-512: 511-bit p, 74 primes, exponents in
    [-5, 5] (~2^256 keys, 64-byte public keys)."""
    ells = tuple(first_odd_primes(73)) + (587,)
    params = CsidhParameters("CSIDH-512", ells, max_exponent=5)
    params.validate()
    return params


@lru_cache(maxsize=None)
def csidh_toy() -> CsidhParameters:
    """Tiny instance (p = 4*3*5*7 - 1 = 419) for simulator-hosted
    end-to-end runs and exhaustive tests."""
    params = CsidhParameters("CSIDH-toy", (3, 5, 7), max_exponent=2)
    params.validate()
    return params


def synthesize_parameters(
    num_primes: int,
    *,
    max_exponent: int = 5,
    name: str | None = None,
) -> CsidhParameters:
    """Construct a CSIDH-shaped parameter set with *num_primes* factors.

    Takes the first ``num_primes - 1`` odd primes and searches the last
    factor upward until ``p = 4 * prod(ells) - 1`` is prime (every
    such p automatically satisfies ``p = 3 (mod 8)`` since each odd
    factor is coprime to 2).  The official CSIDH-512 list is of exactly
    this shape (73 consecutive primes + 587); larger instantiations
    (CSIDH-1024/1792, mentioned in Sect. 2) were never standardised, so
    scaling experiments use these synthesized sets — same structure,
    same arithmetic, documented substitution.
    """
    if num_primes < 2:
        raise ParameterError("need at least two prime factors")
    base = first_odd_primes(num_primes - 1)
    candidate = base[-1] + 2
    while True:
        if is_prime(candidate) and is_prime(
            4 * math.prod(base) * candidate - 1
        ):
            ells = tuple(base) + (candidate,)
            params = CsidhParameters(
                name or f"CSIDH-synth-{num_primes}",
                ells,
                max_exponent=max_exponent,
            )
            params.validate()
            return params
        candidate += 2


@lru_cache(maxsize=None)
def csidh_1024_like() -> CsidhParameters:
    """A synthesized ~1024-bit instantiation (CSIDH-1024 was never
    fully standardised); used by the E9 scaling experiment."""
    params = synthesize_parameters(130, max_exponent=2,
                                   name="CSIDH-1024-like")
    return params


@lru_cache(maxsize=None)
def csidh_mini() -> CsidhParameters:
    """Medium toy (p = 19399379, 25 bits) for fast protocol testing."""
    params = CsidhParameters(
        "CSIDH-mini", (3, 5, 7, 11, 13, 17, 19), max_exponent=3
    )
    params.validate()
    return params
