"""Public-key validation: verifying supersingularity of a coefficient.

CSIDH public keys are bare field elements; before using a peer's key
with a static private key, a party must check that ``E_A`` is a
supersingular curve in the right isogeny class.  The CSIDH paper's
Algorithm (Sect. "Validating public keys") accumulates the proven order
``d = prod l_i`` over the primes whose torsion a random point exhibits;
once ``d > 4 * sqrt(p)``, Hasse's bound pins the group order to exactly
``p + 1``, which happens only for supersingular curves.
"""

from __future__ import annotations

import math
import random

from repro.csidh.montgomery import Curve, XPoint, ladder
from repro.csidh.parameters import CsidhParameters
from repro.field.fp import FieldContext


def is_supersingular(
    params: CsidhParameters,
    field: FieldContext,
    coefficient: int,
    rng: random.Random,
    *,
    max_attempts: int = 64,
) -> bool:
    """Probabilistic supersingularity check (false negatives impossible;
    a non-supersingular curve is rejected with overwhelming odds)."""
    p = field.p
    a = coefficient % p
    if a in (2, p - 2):
        return False  # singular curve
    curve = Curve.from_affine(field, a)
    bound = 4 * math.isqrt(p)

    for _ in range(max_attempts):
        x = rng.randrange(1, p)
        point = XPoint(x, 1)
        # clear the cofactor 4; works on curve and twist alike
        point = ladder(field, 4, point, curve)
        if point.is_infinity:
            continue
        proven = 1
        for ell in params.ells:
            cofactor = (p + 1) // (4 * ell)
            probe = ladder(field, cofactor, point, curve)
            if probe.is_infinity:
                continue
            if not ladder(field, ell, probe, curve).is_infinity:
                return False  # order does not divide p + 1
            proven *= ell
            if proven > bound:
                return True
        # inconclusive point (too little torsion revealed); retry
    return False
