"""CSIDH: commutative supersingular-isogeny Diffie-Hellman.

The complete protocol stack the paper uses as its case study:

* :mod:`repro.csidh.parameters` — CSIDH-512 and toy parameter sets;
* :mod:`repro.csidh.montgomery` — x-only Montgomery curve arithmetic;
* :mod:`repro.csidh.isogeny` — odd-degree Velu isogenies;
* :mod:`repro.csidh.group_action` — the class group action;
* :mod:`repro.csidh.protocol` — key generation and exchange;
* :mod:`repro.csidh.validate` — public-key supersingularity checks;
* :mod:`repro.csidh.opcount` — instrumented runs for the cycle model.
"""

from repro.csidh.breakdown import (
    PHASES,
    PhaseBreakdown,
    group_action_breakdown,
)
from repro.csidh.group_action import ActionStats, group_action
from repro.csidh.isogeny import IsogenyResult, isogeny, kernel_multiples
from repro.csidh.montgomery import (
    Curve,
    INFINITY,
    XPoint,
    curve_rhs,
    ladder,
    sample_point_x,
    xadd,
    xdbl,
)
from repro.csidh.opcount import (
    GroupActionProfile,
    average_group_action_profile,
    count_group_action,
)
from repro.csidh.parameters import (
    CsidhParameters,
    csidh_1024_like,
    csidh_512,
    csidh_mini,
    csidh_toy,
    synthesize_parameters,
)
from repro.csidh.protocol import (
    BASE_COEFFICIENT,
    Csidh,
    PrivateKey,
    PublicKey,
    derive_symmetric_key,
    key_exchange_demo,
)
from repro.csidh.validate import is_supersingular

__all__ = [
    "PHASES",
    "PhaseBreakdown",
    "group_action_breakdown",
    "csidh_1024_like",
    "synthesize_parameters",
    "derive_symmetric_key",
    "ActionStats",
    "group_action",
    "IsogenyResult",
    "isogeny",
    "kernel_multiples",
    "Curve",
    "INFINITY",
    "XPoint",
    "curve_rhs",
    "ladder",
    "sample_point_x",
    "xadd",
    "xdbl",
    "GroupActionProfile",
    "average_group_action_profile",
    "count_group_action",
    "CsidhParameters",
    "csidh_512",
    "csidh_mini",
    "csidh_toy",
    "BASE_COEFFICIENT",
    "Csidh",
    "PrivateKey",
    "PublicKey",
    "key_exchange_demo",
    "is_supersingular",
]
