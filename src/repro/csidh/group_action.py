"""The CSIDH class group action (the protocol's core computation).

Implements the original Castryck-Lange-Martindale-Panny-Renes evaluation
strategy: sample a random x, determine by a Legendre symbol whether it
lies on the curve (s = +1) or its quadratic twist (s = -1), clear the
cofactor, and then peel off one l_i-isogeny per prime whose pending
exponent has sign s — the x-only arithmetic is twist-agnostic, which is
what makes the signed-exponent key space work.

The curve is tracked projectively as ``(A24plus : C24)`` across the
isogeny chain of one round; a single inversion per round recovers the
affine coefficient needed for the next point sampling (and for the final
public value).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro import telemetry
from repro.csidh.isogeny import isogeny
from repro.csidh.montgomery import (
    Curve,
    XPoint,
    curve_rhs,
    ladder,
)
from repro.csidh.parameters import CsidhParameters
from repro.errors import ParameterError, ProtocolError
from repro.field.fp import FieldContext


@dataclass
class ActionStats:
    """Diagnostics of one group-action evaluation."""

    rounds: int = 0
    isogenies: int = 0
    wasted_samples: int = 0      # x on the wrong side or rhs == 0
    missed_kernels: int = 0      # cofactor multiple landed on infinity


def group_action(
    params: CsidhParameters,
    field: FieldContext,
    coefficient: int,
    exponents: tuple[int, ...],
    rng: random.Random,
    *,
    stats: ActionStats | None = None,
    max_rounds: int = 10_000,
) -> int:
    """Apply the ideal ``prod l_i^{e_i}`` to ``E_coefficient``.

    Returns the affine Montgomery coefficient of the resulting curve.
    The result is deterministic in (coefficient, exponents); *rng* only
    influences how many rounds the evaluation takes.
    """
    if len(exponents) != params.num_primes:
        raise ParameterError(
            f"need {params.num_primes} exponents, got {len(exponents)}"
        )
    for e, ell in zip(exponents, params.ells):
        if abs(e) > params.max_exponent:
            raise ParameterError(
                f"exponent {e} for l={ell} exceeds bound "
                f"{params.max_exponent}"
            )

    p = field.p
    ells = params.ells
    pending = list(exponents)
    a = coefficient % p
    if stats is None:
        stats = ActionStats()

    # telemetry spans mirror Table 4's additive decomposition: every
    # field operation below lands in exactly one phase span, so the
    # captured tree's totals sum to the run's simulated-cycle total
    with telemetry.span("group_action"):
        rounds = 0
        while any(pending):
            rounds += 1
            if rounds > max_rounds:
                raise ProtocolError(
                    f"group action did not converge in "
                    f"{max_rounds} rounds"
                )

            with telemetry.span("sample_point"):
                x = rng.randrange(1, p)
                rhs = curve_rhs(field, a, x)
                side = field.legendre(rhs)
            if side == 0:
                stats.wasted_samples += 1
                continue
            todo = [
                i for i, e in enumerate(pending)
                if e != 0 and (1 if e > 0 else -1) == side
            ]
            if not todo:
                stats.wasted_samples += 1
                continue
            stats.rounds += 1

            k = math.prod(ells[i] for i in todo)
            curve = Curve.from_affine(field, a)
            with telemetry.span("cofactor_clear"):
                point = ladder(field, (p + 1) // k, XPoint(x, 1),
                               curve)

            for position, i in enumerate(todo):
                ell = ells[i]
                if point.is_infinity:
                    stats.missed_kernels += len(todo) - position
                    break
                with telemetry.span("isogeny", degree=ell):
                    kernel = ladder(field, k // ell, point, curve)
                    if kernel.is_infinity:
                        stats.missed_kernels += 1
                        k //= ell
                        continue
                    push = (point,) if position < len(todo) - 1 else ()
                    result = isogeny(field, curve, kernel, ell,
                                     push=push)
                    curve = result.curve
                    point = result.images[0] if push else XPoint(1, 0)
                    k //= ell
                    pending[i] -= side
                    stats.isogenies += 1

            with telemetry.span("recover_affine"):
                a = curve.affine_a(field)

    return a
