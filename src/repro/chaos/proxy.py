"""An in-process TCP chaos proxy for the JSON-lines wire protocol.

:class:`ChaosProxy` sits between a :class:`~repro.service.ServiceClient`
and a wire server, relaying newline-delimited frames in both
directions.  One :class:`~repro.chaos.plan.ChaosSite` may be *armed* at
a time; the armed fault fires **exactly once** (on the Nth line of the
relevant direction) and the proxy then degrades to pure pass-through —
so a client with at least one retry must always be able to complete,
which is precisely the property the campaign checks.

Raw site selectors are resolved at arm time:

* ``nth``       -> ``nth % lines_per_trial`` (line index within the trial;
  counting continues across reconnects, so a fault never re-fires on
  the retry connection);
* ``byte``      -> byte position modulo the actual line length;
* ``mask``      -> XOR mask ``1 + mask % 255`` (never a no-op);
* ``delay``     -> even selects ``latency_above_s`` (client must time out
  and retry), odd selects ``latency_below_s`` (absorbed by the caller);
* ``direction`` -> for ``corrupt`` only: even mangles a request
  (client-to-server), odd mangles a response.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro import telemetry
from repro.chaos.plan import (
    KIND_CORRUPT,
    KIND_DROP_MID,
    KIND_DROP_POST,
    KIND_DROP_PRE,
    KIND_DUPLICATE,
    KIND_LATENCY,
    KIND_PARTIAL_WRITE,
    KIND_REORDER,
    LINES_PER_HANDSHAKE,
    ChaosSite,
)
from repro.errors import ChaosError
from repro.service.wire import MAX_RESPONSE_BYTES

C2S = "c2s"
S2C = "s2c"


def corrupt_line(line: bytes, byte: int, mask: int) -> bytes:
    """XOR one payload byte of a newline-terminated frame."""
    body = line[:-1] if line.endswith(b"\n") else line
    if not body:
        return line
    pos = byte % len(body)
    flip = 1 + mask % 255
    return body[:pos] + bytes([body[pos] ^ flip]) + body[pos + 1:] + b"\n"


@dataclass(frozen=True)
class _Armed:
    """A site with its raw selectors resolved against the trial shape."""

    site: ChaosSite
    direction: str
    nth: int
    delay_s: float
    hold_s: float


class ChaosProxy:
    """Relay client<->server traffic, injecting one fault per trial."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 host: str = "127.0.0.1") -> None:
        self._upstream = (upstream_host, upstream_port)
        self._host = host
        self._server: asyncio.AbstractServer | None = None
        self._armed: _Armed | None = None
        self._fired = False
        self._count = {C2S: 0, S2C: 0}
        self._held: bytes | None = None
        self._side_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        #: injections fired since construction, keyed by site kind
        self.injections: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> int:
        """Start listening; returns the bound port."""
        if self._server is not None:
            raise ChaosError("chaos proxy is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, 0)
        return self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        if self._server is None:
            raise ChaosError("chaos proxy is not started")
        return self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in [*self._conn_tasks, *self._side_tasks]:
            task.cancel()
        for task in [*self._conn_tasks, *self._side_tasks]:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()
        self._side_tasks.clear()

    # -- arming -------------------------------------------------------

    def arm(self, site: ChaosSite, *,
            lines_per_trial: int = LINES_PER_HANDSHAKE,
            latency_above_s: float = 3.0,
            latency_below_s: float = 0.05,
            hold_s: float = 0.05) -> None:
        """Resolve *site* against the trial shape and make it live."""
        if site.kind == KIND_DROP_PRE:
            direction = C2S
        elif site.kind == KIND_CORRUPT:
            direction = C2S if site.direction % 2 == 0 else S2C
        else:
            direction = S2C
        self._armed = _Armed(
            site=site,
            direction=direction,
            nth=site.nth % lines_per_trial,
            delay_s=(latency_above_s if site.delay % 2 == 0
                     else latency_below_s),
            hold_s=hold_s,
        )
        self._fired = False
        self._count = {C2S: 0, S2C: 0}
        self._held = None

    def disarm(self) -> None:
        self._armed = None
        self._held = None

    @property
    def fired(self) -> bool:
        """Whether the currently/last armed site has injected its fault."""
        return self._fired

    @property
    def armed(self) -> _Armed | None:
        """The resolved armed site (None between trials)."""
        return self._armed

    # -- relaying -----------------------------------------------------

    def _take(self, direction: str) -> bool:
        """Count one line in *direction*; True iff the armed site fires."""
        idx = self._count[direction]
        self._count[direction] = idx + 1
        armed = self._armed
        if (armed is None or self._fired or armed.direction != direction
                or idx != armed.nth):
            return False
        self._fired = True
        kind = armed.site.kind
        self.injections[kind] = self.injections.get(kind, 0) + 1
        telemetry.record_chaos_injection(kind)
        return True

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self._upstream, limit=MAX_RESPONSE_BYTES)
        except OSError:
            writer.close()
            return
        lock = asyncio.Lock()
        pumps = [
            asyncio.ensure_future(self._pump(C2S, reader, up_writer, lock)),
            asyncio.ensure_future(self._pump(S2C, up_reader, writer, lock)),
        ]
        self._conn_tasks.update(pumps)
        try:
            # Either direction ending (EOF, error, or an injected drop)
            # tears down the whole relayed connection, mirroring what a
            # real broken TCP path looks like to both peers.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in pumps:
                task.cancel()
            for task in pumps:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            self._conn_tasks.difference_update(pumps)
            for closing in (writer, up_writer):
                try:
                    closing.close()
                except OSError:
                    pass

    async def _pump(self, direction: str, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter,
                    lock: asyncio.Lock) -> None:
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                # Forward a trailing partial write verbatim before EOF.
                if exc.partial:
                    await self._write(writer, lock, exc.partial)
                return
            except (asyncio.LimitOverrunError, ConnectionError, OSError):
                return
            armed = self._armed
            if self._take(direction):
                kind = armed.site.kind
                if kind in (KIND_DROP_PRE, KIND_DROP_MID):
                    return
                if kind == KIND_CORRUPT:
                    line = corrupt_line(line, armed.site.byte,
                                        armed.site.mask)
                elif kind == KIND_PARTIAL_WRITE:
                    cut = 1 + armed.site.byte % max(len(line) - 2, 1)
                    await self._write(writer, lock, line[:cut])
                    return
                elif kind == KIND_LATENCY:
                    self._spawn(self._delayed_write(
                        writer, lock, line, armed.delay_s))
                    continue
                elif kind == KIND_DUPLICATE:
                    await self._write(writer, lock, line + line)
                    continue
                elif kind == KIND_REORDER:
                    self._held = line
                    self._spawn(self._flush_held(writer, lock,
                                                 armed.hold_s))
                    continue
                elif kind == KIND_DROP_POST:
                    await self._write(writer, lock, line)
                    return
            await self._write(writer, lock, line, release_held=True)

    async def _write(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                     data: bytes, *, release_held: bool = False) -> None:
        async with lock:
            try:
                writer.write(data)
                if release_held and self._held is not None:
                    held, self._held = self._held, None
                    writer.write(held)
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._side_tasks.add(task)
        task.add_done_callback(self._side_tasks.discard)

    async def _delayed_write(self, writer: asyncio.StreamWriter,
                             lock: asyncio.Lock, line: bytes,
                             delay_s: float) -> None:
        await asyncio.sleep(delay_s)
        await self._write(writer, lock, line)

    async def _flush_held(self, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock, hold_s: float) -> None:
        # Fallback: if no later response ever overtakes the held one
        # (it was the last line of the handshake), release it anyway.
        await asyncio.sleep(hold_s)
        async with lock:
            held, self._held = self._held, None
            if held is not None:
                try:
                    writer.write(held)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
