"""Seeded network-chaos harness for the key-exchange service.

The wire-layer sibling of :mod:`repro.fault`: where fault campaigns
flip bits inside the simulated datapath, chaos campaigns break the
*network* between a :class:`~repro.service.ServiceClient` and a live
wire server — dropped connections, latency spikes, partial writes,
corrupted/duplicated/reordered frames — and prove the resilience
stack (deadlines, retries with idempotency keys, frame checksums,
circuit breaker) turns every one of them into either a transparent
recovery or a clean typed error, never a wrong secret and never a
hang.  See ``docs/ROBUSTNESS.md``.

* :class:`ChaosPlan` / :class:`ChaosSite` — seeded, reproducible,
  JSON round-trippable fault plans;
* :class:`ChaosProxy` — the in-process TCP proxy that injects exactly
  one fault per trial, then passes traffic through untouched;
* :func:`run_chaos_campaign` / :class:`ChaosReport` — full handshakes
  through the proxy, every secret checked against the pure-Python
  oracle, outcomes classified and gated (``repro chaos``).
"""

from repro.chaos.campaign import (
    OUTCOME_ESCAPED,
    OUTCOME_HUNG,
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOME_REJECTED,
    OUTCOMES,
    ChaosReport,
    ChaosTrial,
    run_chaos_campaign,
)
from repro.chaos.plan import (
    ALL_KINDS,
    LINES_PER_HANDSHAKE,
    ChaosPlan,
    ChaosSite,
)
from repro.chaos.proxy import ChaosProxy, corrupt_line

__all__ = [
    "ALL_KINDS",
    "LINES_PER_HANDSHAKE",
    "OUTCOMES",
    "OUTCOME_ESCAPED",
    "OUTCOME_HUNG",
    "OUTCOME_MASKED",
    "OUTCOME_RECOVERED",
    "OUTCOME_REJECTED",
    "ChaosPlan",
    "ChaosProxy",
    "ChaosReport",
    "ChaosSite",
    "ChaosTrial",
    "corrupt_line",
    "run_chaos_campaign",
]
