"""Seeded, reproducible network-chaos plans.

The wire-layer sibling of :mod:`repro.fault.plan`: a
:class:`ChaosPlan` expands a seed into a sequence of
:class:`ChaosSite` records, each naming one network fault the chaos
proxy (:mod:`repro.chaos.proxy`) will inject into exactly one
handshake.  Sites carry *raw* selector integers (``nth``, ``byte``,
``mask``, ``delay``, ``direction``) rather than resolved targets: the
proxy maps them onto the concrete traffic (modulo the lines per
handshake, the line length, the client timeout) at arm time, so the
same seed names the same abstract faults regardless of frame sizes —
and re-running a campaign with the seed from a failing report
reproduces the exact fault sequence and report
(``tests/chaos/test_chaos_plan.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ChaosError

#: Close the connection *before* forwarding the Nth request line.
KIND_DROP_PRE = "drop_pre"
#: Forward the request, close *instead of* relaying its response —
#: the lost-response scenario idempotency keys exist for.
KIND_DROP_MID = "drop_mid"
#: Relay the Nth response, then close the connection.
KIND_DROP_POST = "drop_post"
#: Delay the Nth response (above or below the client timeout).
KIND_LATENCY = "latency"
#: Write a strict prefix of the Nth response, then close.
KIND_PARTIAL_WRITE = "partial_write"
#: XOR one byte of the Nth line (either direction).
KIND_CORRUPT = "corrupt"
#: Relay the Nth response twice.
KIND_DUPLICATE = "duplicate"
#: Hold the Nth response until the next one has passed it.
KIND_REORDER = "reorder"

ALL_KINDS = (
    KIND_DROP_PRE,
    KIND_DROP_MID,
    KIND_DROP_POST,
    KIND_LATENCY,
    KIND_PARTIAL_WRITE,
    KIND_CORRUPT,
    KIND_DUPLICATE,
    KIND_REORDER,
)

#: Wire lines per handshake in each direction (two keygens + two
#: exchanges) — the modulus the proxy maps ``nth`` with at arm time.
LINES_PER_HANDSHAKE = 4


@dataclass(frozen=True)
class ChaosSite:
    """One planned network fault: a kind plus raw target selectors."""

    index: int      # trial number within the campaign
    kind: str       # one of ALL_KINDS
    nth: int        # raw line selector (mapped mod LINES_PER_HANDSHAKE)
    byte: int       # raw byte-position selector (corrupt/partial_write)
    mask: int       # raw XOR-mask selector (mapped to 1..255)
    delay: int      # raw latency selector (parity: above/below timeout)
    direction: int  # raw direction selector (corrupt: even=c2s, odd=s2c)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "nth": self.nth,
            "byte": self.byte,
            "mask": self.mask,
            "delay": self.delay,
            "direction": self.direction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSite":
        try:
            return cls(**{key: data[key] for key in (
                "index", "kind", "nth", "byte", "mask", "delay",
                "direction")})
        except KeyError as exc:
            raise ChaosError(
                f"chaos site record is missing field {exc}") from None


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded generator of reproducible network-fault sequences."""

    seed: int
    kinds: tuple[str, ...] = ALL_KINDS

    def __post_init__(self) -> None:
        unknown = [k for k in self.kinds if k not in ALL_KINDS]
        if unknown:
            raise ChaosError(
                f"unknown chaos kind(s) {unknown}; choose from "
                f"{', '.join(ALL_KINDS)}")
        if not self.kinds:
            raise ChaosError("a chaos plan needs at least one kind")

    def generate(self, n: int) -> tuple[ChaosSite, ...]:
        """The first *n* planned faults (pure function of the seed)."""
        if n < 1:
            raise ChaosError(f"need at least one trial, got {n}")
        rng = random.Random(self.seed)
        out = []
        for index in range(n):
            out.append(ChaosSite(
                index=index,
                kind=self.kinds[rng.randrange(len(self.kinds))],
                nth=rng.getrandbits(16),
                byte=rng.getrandbits(16),
                mask=rng.getrandbits(8),
                delay=rng.getrandbits(8),
                direction=rng.getrandbits(8),
            ))
        return tuple(out)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "kinds": list(self.kinds)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        try:
            return cls(seed=data["seed"], kinds=tuple(data["kinds"]))
        except KeyError as exc:
            raise ChaosError(
                f"chaos plan record is missing field {exc}") from None
