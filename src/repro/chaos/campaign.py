"""Network-chaos campaigns: every injected fault, checked end-to-end.

:func:`run_chaos_campaign` is the wire-layer sibling of
:func:`repro.fault.campaign.run_campaign`.  Each trial arms exactly
one :class:`~repro.chaos.plan.ChaosSite` on a
:class:`~repro.chaos.proxy.ChaosProxy` between a fresh
:class:`~repro.service.ServiceClient` and a real in-process wire
server, then drives one full handshake (two concurrent keygens + both
exchange directions) through it and checks every public key and
shared secret bit-for-bit against the pure-Python oracle
(:func:`~repro.service.load.expected_handshakes`).  Outcomes:

* ``recovered_by_retry`` — the fault bit (a retry or reconnect
  happened) and the handshake still matched the oracle;
* ``masked``            — the fault was absorbed without any retry
  (duplicates and reordering are handled by id correlation, latency
  below the timeout is just slow);
* ``rejected_clean``    — the client surfaced a typed
  :class:`~repro.errors.ReproError` after exhausting its budget: no
  wrong answer, but no answer either;
* ``hung``              — the trial blew its wall-clock budget;
* ``escaped``           — the handshake "succeeded" with a result
  that differs from the oracle.  **Any** escape or hang fails the
  campaign (``repro chaos`` exits non-zero).

Reports are a pure function of ``(params, seed, n, kinds, knobs)``:
:meth:`ChaosReport.to_dict` deliberately excludes wall-clock times and
raw retry counters, so two same-seed runs serialize byte-identically.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass

from repro import telemetry
from repro.chaos.plan import ALL_KINDS, LINES_PER_HANDSHAKE, ChaosPlan
from repro.chaos.proxy import ChaosProxy
from repro.csidh.parameters import CsidhParameters
from repro.errors import ChaosError, ReproError
from repro.service.load import _session_seeds, expected_handshakes
from repro.service.server import KeyExchangeService
from repro.service.tenancy import TenantConfig
from repro.service.wire import ServiceClient, start_server

OUTCOME_RECOVERED = "recovered_by_retry"
OUTCOME_MASKED = "masked"
OUTCOME_REJECTED = "rejected_clean"
OUTCOME_HUNG = "hung"
OUTCOME_ESCAPED = "escaped"
OUTCOMES = (OUTCOME_RECOVERED, OUTCOME_MASKED, OUTCOME_REJECTED,
            OUTCOME_HUNG, OUTCOME_ESCAPED)

#: The tenant every chaos trial runs against.
TENANT = "chaos"

#: Per-trial client knobs: tight timeout and backoff keep the
#: campaign fast while still exercising the full retry machinery.
DEFAULT_TIMEOUT_S = 0.75
DEFAULT_RETRIES = 3
_BACKOFF_S = 0.01
_BACKOFF_CAP_S = 0.05
_HOLD_S = 0.05


@dataclass(frozen=True)
class ChaosTrial:
    """One handshake driven through one armed network fault."""

    index: int
    kind: str
    nth: int            # resolved line index the fault targeted
    direction: str      # resolved direction ("c2s" / "s2c")
    outcome: str
    error_code: str | None  # stable code when rejected_clean
    injected: bool      # whether the armed fault actually fired

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "nth": self.nth,
            "direction": self.direction,
            "outcome": self.outcome,
            "error_code": self.error_code,
            "injected": self.injected,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Aggregate view of a chaos campaign (``repro chaos``)."""

    params: str
    seed: int
    n: int
    kinds: tuple[str, ...]
    engine: str
    timeout_s: float
    retries: int
    trials: tuple[ChaosTrial, ...]
    #: Not part of :meth:`to_dict` (timing-dependent); surfaced on the
    #: console and in the BENCH record only.
    duration_s: float
    retries_total: int
    reconnects_total: int

    @property
    def outcomes(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for trial in self.trials:
            counts[trial.outcome] += 1
        return counts

    @property
    def by_kind(self) -> dict[str, dict[str, int]]:
        table: dict[str, dict[str, int]] = {}
        for trial in self.trials:
            row = table.setdefault(
                trial.kind, {outcome: 0 for outcome in OUTCOMES})
            row[trial.outcome] += 1
        return table

    @property
    def escaped(self) -> int:
        return self.outcomes[OUTCOME_ESCAPED]

    @property
    def hung(self) -> int:
        return self.outcomes[OUTCOME_HUNG]

    @property
    def recovery_rate(self) -> float:
        """Fraction of trials that completed with oracle-exact
        results (recovered or masked) — the watchdog-gated metric."""
        good = (self.outcomes[OUTCOME_RECOVERED]
                + self.outcomes[OUTCOME_MASKED])
        return good / len(self.trials) if self.trials else 0.0

    def to_dict(self) -> dict:
        """Deterministic serialization: byte-identical across two
        same-seed runs (no wall-clock, no raw retry counters)."""
        return {
            "params": self.params,
            "seed": self.seed,
            "n": self.n,
            "kinds": list(self.kinds),
            "engine": self.engine,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "outcomes": self.outcomes,
            "by_kind": self.by_kind,
            "escaped": self.escaped,
            "hung": self.hung,
            "recovery_rate": self.recovery_rate,
            "trials": [trial.to_dict() for trial in self.trials],
        }

    def to_record(self) -> dict:
        """The ``chaos_load`` BENCH-trajectory record."""
        outcomes = self.outcomes
        return {
            "mode": "chaos_load",
            "params": self.params,
            "n": self.n,
            "seed": self.seed,
            "engine": self.engine,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "duration_s": self.duration_s,
            "recovered_by_retry": outcomes[OUTCOME_RECOVERED],
            "masked": outcomes[OUTCOME_MASKED],
            "rejected_clean": outcomes[OUTCOME_REJECTED],
            "hung": self.hung,
            "escaped": self.escaped,
            "recovery_rate": self.recovery_rate,
            "retries_total": self.retries_total,
            "reconnects_total": self.reconnects_total,
        }

    def summary(self) -> str:
        outcomes = self.outcomes
        return (
            f"{self.n} chaos trials over {len(self.kinds)} fault "
            f"kind(s) [{self.engine}] in {self.duration_s:.2f}s: "
            f"{outcomes[OUTCOME_RECOVERED]} recovered by retry, "
            f"{outcomes[OUTCOME_MASKED]} masked, "
            f"{outcomes[OUTCOME_REJECTED]} rejected clean, "
            f"{self.hung} hung, {self.escaped} escaped "
            f"({self.retries_total} retries, "
            f"{self.reconnects_total} reconnects)")


async def _run_trial(site, proxy: ChaosProxy, port: int,
                     oracle_entry: tuple[int, int, int], *,
                     seed: int, timeout_s: float,
                     retries: int) -> tuple[ChaosTrial, int, int]:
    """One armed handshake; returns the trial plus its retry counts."""
    proxy.arm(
        site,
        lines_per_trial=LINES_PER_HANDSHAKE,
        # Clearly above (client must time out and retry) or clearly
        # below (the caller just waits a little longer) the timeout.
        latency_above_s=timeout_s * 4,
        latency_below_s=min(timeout_s / 4, 0.05),
        hold_s=_HOLD_S,
    )
    armed = proxy.armed
    client = ServiceClient(
        timeout_s=timeout_s, retries=retries, backoff_s=_BACKOFF_S,
        backoff_cap_s=_BACKOFF_CAP_S,
        rng=random.Random((seed << 20) ^ site.index))
    seed_a, seed_b = _session_seeds(seed, site.index)
    # Generous wall-clock budget: an above-timeout latency plus every
    # retry timing out would still finish inside it.  Blowing it means
    # the stack wedged — the one thing resilience must never do.
    budget = timeout_s * 4 + (retries + 1) * timeout_s * 4 + 2.0
    error_code = None
    try:
        await client.connect("127.0.0.1", port)

        async def handshake():
            # The keygens run concurrently so duplicate/reorder sites
            # have two responses in flight to play with.
            pub_a, pub_b = await asyncio.gather(
                client.keygen(TENANT, seed_a),
                client.keygen(TENANT, seed_b))
            secret_ab = await client.exchange(TENANT, seed_a, pub_b)
            secret_ba = await client.exchange(TENANT, seed_b, pub_a)
            return pub_a, pub_b, secret_ab, secret_ba

        try:
            values = await asyncio.wait_for(handshake(), budget)
        except asyncio.TimeoutError:
            outcome = OUTCOME_HUNG
        except ReproError as exc:
            error_code = exc.code
            outcome = OUTCOME_REJECTED
        else:
            want_a, want_b, want_secret = oracle_entry
            pub_a, pub_b, secret_ab, secret_ba = values
            if (pub_a == want_a and pub_b == want_b
                    and secret_ab == want_secret
                    and secret_ba == want_secret):
                faulted = client.retries_total or client.reconnects_total
                outcome = (OUTCOME_RECOVERED if faulted
                           else OUTCOME_MASKED)
            else:
                outcome = OUTCOME_ESCAPED
    finally:
        injected = proxy.fired
        retries_total = client.retries_total
        reconnects_total = client.reconnects_total
        proxy.disarm()
        await client.aclose()
    telemetry.record_chaos_trial(site.kind, outcome)
    trial = ChaosTrial(
        index=site.index,
        kind=site.kind,
        nth=armed.nth,
        direction=armed.direction,
        outcome=outcome,
        error_code=error_code,
        injected=injected,
    )
    return trial, retries_total, reconnects_total


async def _run_campaign(params: CsidhParameters, *, seed: int, n: int,
                        kinds: tuple[str, ...], engine: str,
                        variant: str, timeout_s: float,
                        retries: int) -> ChaosReport:
    plan = ChaosPlan(seed=seed, kinds=tuple(kinds))
    sites = plan.generate(n)
    oracle = expected_handshakes(params, n, seed=seed)
    service = KeyExchangeService(params, [TenantConfig(
        TENANT, engine=engine, lanes=2, max_queue=32, variant=variant)])
    server = await start_server(service)
    port = server.sockets[0].getsockname()[1]
    proxy = ChaosProxy("127.0.0.1", port)
    proxy_port = await proxy.start()
    trials = []
    retries_total = reconnects_total = 0
    started = time.perf_counter()
    try:
        for site in sites:
            trial, trial_retries, trial_reconnects = await _run_trial(
                site, proxy, proxy_port, oracle[site.index],
                seed=seed, timeout_s=timeout_s, retries=retries)
            trials.append(trial)
            retries_total += trial_retries
            reconnects_total += trial_reconnects
    finally:
        duration = time.perf_counter() - started
        await proxy.aclose()
        server.close()
        await server.wait_closed()
        await service.aclose()
    return ChaosReport(
        params=params.name,
        seed=seed,
        n=n,
        kinds=tuple(kinds),
        engine=engine,
        timeout_s=timeout_s,
        retries=retries,
        trials=tuple(trials),
        duration_s=duration,
        retries_total=retries_total,
        reconnects_total=reconnects_total,
    )


def run_chaos_campaign(
    params: CsidhParameters,
    *,
    seed: int = 0,
    n: int = 16,
    kinds: tuple[str, ...] = ALL_KINDS,
    engine: str = "replay",
    variant: str = "reduced.ise",
    timeout_s: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
) -> ChaosReport:
    """Run *n* chaos trials against a real in-process wire server.

    Every trial arms one seeded fault on the proxy, drives one full
    handshake through it with a resilient client, and classifies the
    outcome against the pure-Python oracle.  Faults are one-shot, so a
    client with ``retries >= 1`` must always be able to finish —
    ``escaped == hung == 0`` is the acceptance gate.
    """
    if timeout_s <= 0:
        raise ChaosError(f"timeout_s must be positive, got {timeout_s}")
    if retries < 1:
        raise ChaosError(
            f"chaos trials need at least one retry to recover from "
            f"one-shot faults, got retries={retries}")
    return asyncio.run(_run_campaign(
        params, seed=seed, n=n, kinds=tuple(kinds), engine=engine,
        variant=variant, timeout_s=timeout_s, retries=retries))
