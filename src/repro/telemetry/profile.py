"""Instrumented workloads: run a protocol phase under full telemetry.

:func:`profile_group_action` is the canonical workload behind
``repro profile`` and ``repro action --telemetry``: it executes a real
group action with every field operation on the RV64 simulator
(:class:`~repro.field.simulated.SimulatedFieldContext`), with spans
open across every protocol phase, and returns the cycle-attribution
tree plus the flat metrics.  The invariant that makes the output
trustworthy — checked here, not just asserted in tests — is that the
span tree's grand total equals the field context's independently
accumulated ``simulated_cycles``: every simulated cycle is attributed
to exactly one phase.

This module sits *above* the instrumented layers (it imports csidh and
field code), so it is deliberately not re-exported from
:mod:`repro.telemetry` — import it directly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro import telemetry
from repro.csidh.group_action import ActionStats, group_action
from repro.csidh.parameters import CsidhParameters
from repro.errors import ReproError
from repro.field.counters import OpCounter
from repro.field.simulated import SimulatedFieldContext
from repro.telemetry.export import to_json_document
from repro.telemetry.spans import SpanNode, render_span_tree

#: Moduli wider than this are refused for fully simulated profiling —
#: a CSIDH-512 group action is ~500 M simulated instructions, days of
#: Python time.  (The toy and mini parameter sets are far below it.)
MAX_SIMULATED_BITS = 160


@dataclass(frozen=True)
class ProfileResult:
    """Everything one instrumented group action produced."""

    params: CsidhParameters
    variant: str
    exponents: tuple[int, ...]
    root: SpanNode                      # captured span tree (synthetic root)
    registry: telemetry.MetricsRegistry
    simulated_cycles: int
    simulated_instructions: int
    ops: OpCounter
    stats: ActionStats
    wall_s: float
    coefficient: int

    @property
    def action_node(self) -> SpanNode:
        node = self.root.find("group_action")
        if node is None:  # pragma: no cover - capture always creates it
            raise ReproError("no group_action span recorded")
        return node

    def hot_kernels(self, top: int = 8) -> list[tuple[str, int, int]]:
        """``(kernel, cycles, runs)`` ranked by attributed cycles."""
        cycles = self.registry.counter("kernel_cycles_total")
        runs = self.registry.counter("kernel_runs_total")
        per_kernel_runs: dict[str, int] = {}
        for key, child in runs.children():
            labels = dict(key)
            name = labels.get("kernel", "?")
            per_kernel_runs[name] = (
                per_kernel_runs.get(name, 0) + child.value
            )
        ranked = sorted(
            ((dict(key).get("kernel", "?"), child.value)
             for key, child in cycles.children()),
            key=lambda item: -item[1],
        )
        return [(name, cy, per_kernel_runs.get(name, 0))
                for name, cy in ranked[:top]]

    def workload_dict(self) -> dict:
        """Summary of the profiled workload (for the JSON export)."""
        return {
            "kind": "group_action",
            "params": self.params.name,
            "variant": self.variant,
            "exponents": list(self.exponents),
            "simulated_cycles": self.simulated_cycles,
            "simulated_instructions": self.simulated_instructions,
            "wall_s": self.wall_s,
            "isogenies": self.stats.isogenies,
            "rounds": self.stats.rounds,
            "field_ops": {
                "mul": self.ops.mul, "sqr": self.ops.sqr,
                "add": self.ops.add, "sub": self.ops.sub,
            },
        }

    def to_document(self) -> dict:
        """The JSON export document (spans + metrics + summary)."""
        return to_json_document(self.root, self.registry, extra={
            "workload": self.workload_dict(),
        })

    def bench_record(self) -> dict:
        """Flat summary for the ``BENCH_protocol.json`` trajectory."""
        return {
            "params": self.params.name,
            "variant": self.variant,
            "wall_s": self.wall_s,
            "simulated_cycles": self.simulated_cycles,
            "simulated_instructions": self.simulated_instructions,
            "isogenies": self.stats.isogenies,
            "kernel_runs": self.registry.counter(
                "kernel_runs_total").total(),
            "cycles_by_phase": {
                child.label: child.total_cycles
                for child in self.action_node.children.values()
            },
            "hot_kernels": {
                name: cycles
                for name, cycles, _ in self.hot_kernels(top=5)
            },
        }


def profile_group_action(
    params: CsidhParameters,
    *,
    variant: str = "reduced.ise",
    seed: int = 3,
    exponents: tuple[int, ...] | None = None,
    cross_check: bool = False,
) -> ProfileResult:
    """Run one fully simulated group action under telemetry capture."""
    if params.p.bit_length() > MAX_SIMULATED_BITS:
        raise ReproError(
            f"{params.name}: a {params.p.bit_length()}-bit modulus is "
            f"infeasible to profile on the Python simulator in one "
            f"process (limit {MAX_SIMULATED_BITS} bits); use --params "
            f"toy or mini, or shard the run across worker processes "
            f"with --shards N (see docs/SHARDING.md)"
        )
    rng = random.Random(seed)
    if exponents is None:
        exponents = params.sample_private_key(rng)
    # construct (and pool) the runners outside the capture so one-time
    # assembly/trace-compilation cost does not pollute the span tree
    field = SimulatedFieldContext(params.p, variant=variant,
                                  cross_check=cross_check)
    stats = ActionStats()
    with telemetry.capture() as cap:
        start = time.perf_counter()
        coefficient = group_action(
            params, field, 0, exponents, rng, stats=stats)
        wall_s = time.perf_counter() - start
    result = ProfileResult(
        params=params,
        variant=variant,
        exponents=tuple(exponents),
        root=cap.root,
        registry=cap.registry,
        simulated_cycles=field.simulated_cycles,
        simulated_instructions=field.simulated_instructions,
        ops=field.counter.copy(),
        stats=stats,
        wall_s=wall_s,
        coefficient=coefficient,
    )
    attributed = result.action_node.total_cycles
    if attributed != field.simulated_cycles:
        raise ReproError(
            f"cycle attribution leak: span tree holds {attributed} "
            f"cycles, field context measured {field.simulated_cycles}"
        )
    return result


def render_profile(result: ProfileResult, *, top: int = 8) -> str:
    """Human-readable profile: span tree, hot kernels, engine mix."""
    lines = [
        f"profiled group action: params={result.params.name} "
        f"variant={result.variant} "
        f"isogenies={result.stats.isogenies} "
        f"wall={result.wall_s:.3f}s",
        f"simulated: {result.simulated_cycles:,d} cycles / "
        f"{result.simulated_instructions:,d} instructions",
        "",
        render_span_tree(result.root),
        "",
        f"hot kernels (top {top}):",
    ]
    total = max(result.simulated_cycles, 1)
    for name, cycles, runs in result.hot_kernels(top=top):
        lines.append(
            f"  {name:24s}{cycles:>14,d} cy "
            f"{100.0 * cycles / total:6.1f}%  x{runs}"
        )
    engines = result.registry.counter("machine_runs_total")
    mix = ", ".join(
        f"{dict(key).get('engine', '?')}={child.value}"
        for key, child in sorted(engines.children())
    )
    if mix:
        lines.append(f"engine mix: {mix}")
    fallbacks = result.registry.counter("replay_fallback_total")
    if fallbacks.total():
        reasons = ", ".join(
            f"{dict(key).get('reason', '?')}={child.value}"
            for key, child in sorted(fallbacks.children())
        )
        lines.append(f"replay fallbacks: {reasons}")
    hits = result.registry.counter("runner_pool_hits_total").total()
    misses = result.registry.counter(
        "runner_pool_misses_total").total()
    if hits or misses:
        lines.append(f"runner pool: {hits} hits, {misses} misses")
    return "\n".join(lines)
