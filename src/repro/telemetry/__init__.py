"""Telemetry: hierarchical cycle-attribution spans + a metrics registry.

The observability layer behind ``repro profile`` and the
``--telemetry`` CLI flags (see ``docs/OBSERVABILITY.md``).  Three
pieces:

* :mod:`repro.telemetry.metrics` — counters, gauges and histograms
  with labels, collected in a :class:`MetricsRegistry`;
* :mod:`repro.telemetry.spans` — a :class:`Tracer` recording a tree of
  spans that accumulate wall-clock seconds and *simulated cycles*, so
  an instrumented protocol run decomposes exactly like the paper's
  Table 4 (protocol -> curve ops -> isogenies -> kernels);
* :mod:`repro.telemetry.export` — JSON / JSONL / Prometheus-text
  exporters and the ``BENCH_*.json`` perf-trajectory artifact.

This module owns the **process-global instances** (:data:`TRACER`,
:data:`REGISTRY`) plus the module-level helpers the rest of the
codebase calls.  Everything is **disabled by default**: ``span()``
hands out a shared no-op context manager and every ``record_*`` helper
returns after one boolean test, so instrumentation on the kernel-run
hot path costs nanoseconds until :func:`enable` (or :func:`capture`)
turns recording on.  Private :class:`Tracer` / :class:`MetricsRegistry`
instances remain plain constructible objects for tests and embedders.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
)
from repro.telemetry.spans import SpanNode, Tracer, render_span_tree

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SpanNode", "Tracer", "TelemetryError", "TraceContext",
    "TRACER", "REGISTRY",
    "enabled", "enable", "disable", "reset", "capture", "span",
    "add_cycles", "render_span_tree",
    "new_trace_id", "current_trace", "request_trace", "activate",
    "record_kernel_run", "record_kernel_check_failure",
    "record_kernel_batch",
    "record_pool_access", "record_machine_run",
    "record_replay_fallback", "record_trace_compile",
    "record_trace_reject",
    "record_jit_compile", "record_jit_reject", "record_jit_demotion",
    "record_jit_cache_hit", "record_jit_evicted",
    "record_aot_compile", "record_aot_reject", "record_aot_demotion",
    "record_aot_cache_hit", "record_aot_evicted",
    "record_artifact_cache_hit", "record_artifact_cache_miss",
    "record_artifact_cache_write", "record_artifact_invalidated",
    "record_fault_injected", "record_fault_detected",
    "record_fault_recovery", "record_checked_run",
    "record_runner_evicted", "record_trace_invalidated",
    "record_service_request", "record_service_rejected",
    "record_service_latency", "record_service_inflight",
    "record_service_demotion", "record_service_promotion",
    "record_coalesced_batch",
    "record_service_internal_error", "record_service_retry",
    "record_service_reconnect", "record_deadline_exceeded",
    "record_circuit_state",
    "record_chaos_injection", "record_chaos_trial",
    "current_span_path",
    "record_shard_completed", "record_shard_steal",
    "record_shard_requeue", "record_shard_worker_failure",
    "record_shard_checkpoint",
]

#: Process-global span recorder (disabled until :func:`enable`).
TRACER = Tracer()

#: Process-global metrics registry fed by the built-in instrumentation.
REGISTRY = MetricsRegistry()


def enabled() -> bool:
    """Whether telemetry recording is currently on."""
    return TRACER.enabled


def enable() -> None:
    """Turn recording on (spans and metrics)."""
    TRACER.enabled = True


def disable() -> None:
    """Turn recording off (recorded data is kept)."""
    TRACER.enabled = False


def reset() -> None:
    """Drop all recorded spans and metrics."""
    TRACER.reset()
    REGISTRY.reset()


def span(name: str, **labels: object):
    """Open a span under the current one (no-op while disabled)."""
    return TRACER.span(name, **labels)


def add_cycles(cycles: int) -> None:
    """Attribute simulated cycles to the innermost open span."""
    TRACER.add_cycles(cycles)


def current_span_path():
    """The open span stack as ``(name, labels)`` frames (root first)."""
    return TRACER.current_path()


@dataclass(frozen=True)
class Capture:
    """Handle to the telemetry state recorded by :func:`capture`."""

    tracer: Tracer
    registry: MetricsRegistry

    @property
    def root(self) -> SpanNode:
        return self.tracer.root


@contextmanager
def capture(*, fresh: bool = True) -> Iterator[Capture]:
    """Enable telemetry for a ``with`` block.

    With ``fresh`` (the default) the block records into **private**
    :class:`Tracer` / :class:`MetricsRegistry` instances installed as
    the process globals for the block's duration, so the capture holds
    exactly the block's activity and the returned :class:`Capture`
    stays readable after later :func:`reset` calls.  With
    ``fresh=False`` the block records into the existing global state
    (accumulating across captures).  The prior globals and
    enabled/disabled flag are restored on exit.
    """
    global TRACER, REGISTRY
    if fresh:
        tracer, registry = Tracer(), MetricsRegistry()
    else:
        tracer, registry = TRACER, REGISTRY
    prior_tracer, prior_registry = TRACER, REGISTRY
    prior_enabled = tracer.enabled
    TRACER, REGISTRY = tracer, registry
    tracer.enabled = True
    try:
        yield Capture(tracer, registry)
    finally:
        tracer.enabled = prior_enabled
        TRACER, REGISTRY = prior_tracer, prior_registry


# ---------------------------------------------------------------------------
# Instrumentation helpers (called from the hot paths; each starts with
# the disabled-fast-path test and must stay call-overhead cheap)
# ---------------------------------------------------------------------------


def record_kernel_run(
    kernel: str, engine: str, cycles: int, instructions: int
) -> None:
    """One :class:`~repro.kernels.runner.KernelRunner` execution."""
    if not TRACER.enabled:
        return
    TRACER.add_kernel_cycles(kernel, engine, cycles)
    REGISTRY.counter(
        "kernel_runs_total", "kernel executions by engine"
    ).inc(kernel=kernel, engine=engine)
    REGISTRY.counter(
        "kernel_cycles_total", "simulated cycles per kernel"
    ).inc(cycles, kernel=kernel)
    REGISTRY.counter(
        "kernel_instructions_total", "retired instructions per kernel"
    ).inc(instructions, kernel=kernel)


def record_kernel_check_failure(kernel: str) -> None:
    """A golden-reference verification failure in a kernel run."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "kernel_check_failures_total",
        "golden-reference mismatches",
    ).inc(kernel=kernel)


def record_pool_access(hit: bool, size: int) -> None:
    """One :func:`~repro.kernels.registry.cached_runner` lookup."""
    if not TRACER.enabled:
        return
    name = ("runner_pool_hits_total" if hit
            else "runner_pool_misses_total")
    REGISTRY.counter(name, "runner pool lookups").inc()
    REGISTRY.gauge("runner_pool_size", "pooled runners").set(size)


def record_machine_run(engine: str) -> None:
    """One :meth:`Machine.run`, labeled by the engine that ran."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "machine_runs_total", "Machine.run calls by engine"
    ).inc(engine=engine)


def record_replay_fallback(reason: str) -> None:
    """A requested replay that fell back to the interpreter."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "replay_fallback_total",
        "replay requests served by the interpreter",
    ).inc(reason=reason)


def record_trace_compile() -> None:
    """A successful replay-trace compilation."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "trace_compiles_total", "replay traces compiled"
    ).inc()


def record_trace_reject(reason: str) -> None:
    """A replay-trace compilation refusal, by reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "trace_rejects_total", "replay compilation refusals"
    ).inc(reason=reason)


# -- the trace-JIT tier (see repro.rv64.jit) ---------------------------------


def record_kernel_batch(kernel: str, engine: str, n: int) -> None:
    """One :meth:`KernelRunner.run_batch` call of *n* operand sets.

    Per-run cycles/instructions still flow through
    :func:`record_kernel_run` (once per item), keeping the span
    cycle-attribution invariant and the ``kernel_runs_total`` counts
    identical whether a workload batches or loops.
    """
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "kernel_batches_total", "batched kernel executions"
    ).inc(kernel=kernel, engine=engine)
    REGISTRY.counter(
        "kernel_batch_items_total", "operand sets executed in batches"
    ).inc(n, kernel=kernel, engine=engine)


def record_jit_compile(seconds: float) -> None:
    """A successful trace-JIT compilation, with its wall-clock cost."""
    if not TRACER.enabled:
        return
    REGISTRY.counter("jit_compiles_total", "jit functions compiled").inc()
    REGISTRY.histogram(
        "jit_compile_seconds", "trace-JIT compilation wall time"
    ).observe(seconds)


def record_jit_reject(reason: str) -> None:
    """A trace-JIT compilation refusal, by :class:`JitError` reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "jit_rejects_total", "jit compilation refusals"
    ).inc(reason=reason)


def record_jit_demotion(reason: str) -> None:
    """A requested jit run demoted down the engine ladder, by reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "jit_demotions_total",
        "jit requests demoted to replay/interpreter",
    ).inc(reason=reason)


def record_jit_cache_hit() -> None:
    """A jit run served by an already-compiled function."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "jit_cache_hits_total", "jit function cache hits"
    ).inc()


def record_jit_evicted() -> None:
    """A compiled jit function dropped by Machine.invalidate_trace."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "jit_evictions_total", "compiled jit functions evicted"
    ).inc()


# -- the aot tier and its persistent artifact cache -------------------------
# (see repro.rv64.aot / repro.rv64.artifacts and docs/SIMULATOR.md)


def record_aot_compile(seconds: float) -> None:
    """A successful whole-kernel aot fusion, with its wall-clock cost."""
    if not TRACER.enabled:
        return
    REGISTRY.counter("aot_compiles_total", "aot functions compiled").inc()
    REGISTRY.histogram(
        "aot_compile_seconds", "whole-kernel aot fusion wall time"
    ).observe(seconds)


def record_aot_reject(reason: str) -> None:
    """An aot fusion refusal, by :class:`AotError` reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_rejects_total", "aot compilation refusals"
    ).inc(reason=reason)


def record_aot_demotion(reason: str) -> None:
    """A requested aot run demoted down the engine ladder, by reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_demotions_total",
        "aot requests demoted to jit/replay/interpreter",
    ).inc(reason=reason)


def record_aot_cache_hit() -> None:
    """An aot run served by an already-compiled function."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_cache_hits_total", "aot function cache hits"
    ).inc()


def record_aot_evicted() -> None:
    """A compiled aot function dropped by Machine.invalidate_trace."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_evictions_total", "compiled aot functions evicted"
    ).inc()


def record_artifact_cache_hit() -> None:
    """An on-disk aot artifact loaded and validated (warm start)."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_artifact_hits_total", "on-disk aot artifact cache hits"
    ).inc()


def record_artifact_cache_miss() -> None:
    """An on-disk aot artifact lookup that found nothing usable."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_artifact_misses_total", "on-disk aot artifact cache misses"
    ).inc()


def record_artifact_cache_write() -> None:
    """A compiled aot thunk persisted to the on-disk artifact cache."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_artifact_writes_total", "on-disk aot artifacts written"
    ).inc()


def record_artifact_invalidated() -> None:
    """An on-disk artifact deleted (corruption, skew, or fault recovery)."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "aot_artifact_invalidations_total",
        "on-disk aot artifacts invalidated",
    ).inc()


# -- fault injection and the hardened execution layer -----------------------
# (see repro.fault and docs/ROBUSTNESS.md)


def record_fault_injected(site: str, kernel: str) -> None:
    """One armed fault, labeled by site kind and target kernel."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "faults_injected_total", "armed faults by site and kernel"
    ).inc(site=site, kernel=kernel)


def record_fault_detected(where: str, engine: str) -> None:
    """A checked execution caught a divergence from the reference."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "faults_detected_total",
        "checked-mode divergences by detection point",
    ).inc(where=where, engine=engine)


def record_fault_recovery(operation: str, outcome: str) -> None:
    """End of a recovery attempt sequence (``recovered``/``exhausted``)."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "fault_recoveries_total",
        "recovery outcomes after a detected fault",
    ).inc(operation=operation, outcome=outcome)


def record_checked_run(kernel: str) -> None:
    """One sampled cross-validation against the pure-Python reference."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "checked_runs_total", "sampled reference cross-validations"
    ).inc(kernel=kernel)


def record_runner_evicted(kernel: str) -> None:
    """A poisoned runner evicted from the registry pool."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "runner_evictions_total", "runner pool evictions"
    ).inc(kernel=kernel)


def record_trace_invalidated() -> None:
    """A cached replay trace dropped by Machine.invalidate_trace."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "trace_invalidations_total", "replay traces invalidated"
    ).inc()


# -- the multi-tenant key-exchange service -----------------------------------
# (see repro.service and docs/SERVICE.md)

#: Latency buckets for service requests (seconds; the cycle-flavoured
#: default buckets would put every request in the first bucket).
SERVICE_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def record_service_request(tenant: str, op: str, outcome: str) -> None:
    """One completed service request, by tenant, op and outcome."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_requests_total",
        "service requests by tenant, op and outcome",
    ).inc(tenant=tenant, op=op, outcome=outcome)


def record_service_rejected(tenant: str, reason: str) -> None:
    """A request bounced by admission control, by reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_rejections_total",
        "admission-control rejections by tenant and reason",
    ).inc(tenant=tenant, reason=reason)


def record_service_latency(op: str, seconds: float) -> None:
    """Wall-clock latency of one service request."""
    if not TRACER.enabled:
        return
    REGISTRY.histogram(
        "service_request_seconds", "service request latency",
        buckets=SERVICE_LATENCY_BUCKETS,
    ).observe(seconds, op=op)


def record_service_inflight(tenant: str, delta: int) -> None:
    """Admitted-but-unfinished request count change for *tenant*."""
    if not TRACER.enabled:
        return
    REGISTRY.gauge(
        "service_inflight", "admitted in-flight requests"
    ).inc(delta, tenant=tenant)


def record_service_demotion(
    tenant: str, engine_from: str, engine_to: str, reason: str
) -> None:
    """A tenant demoted one rung down the engine ladder."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_demotions_total",
        "tenant engine demotions by reason",
    ).inc(tenant=tenant, engine_from=engine_from, engine_to=engine_to,
          reason=reason)


def record_service_promotion(tenant: str, engine_to: str) -> None:
    """A tenant promoted one rung back up the engine ladder."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_promotions_total",
        "tenant engine promotions after sustained health",
    ).inc(tenant=tenant, engine_to=engine_to)


def record_coalesced_batch(op: str, n: int) -> None:
    """One coalesced flush of *n* requests into a batched execution."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_coalesced_batches_total",
        "coalescer flushes into run_batch",
    ).inc(op=op)
    REGISTRY.counter(
        "service_coalesced_items_total",
        "requests served through coalesced batches",
    ).inc(n, op=op)


# -- service resilience: deadlines, retries, circuit breaking ----------------
# (see docs/ROBUSTNESS.md, "Network chaos & resilience")

#: Gauge encoding for circuit-breaker states.
CIRCUIT_STATES = {"closed": 0, "open": 1, "half_open": 2}


def record_service_internal_error(op: str) -> None:
    """A non-``ReproError`` exception caught at the wire boundary."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_internal_errors_total",
        "unexpected exceptions answered with the service code",
    ).inc(op=op)


def record_service_retry(op: str, reason: str) -> None:
    """One client-side retry of an idempotent request, by reason."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_retries_total",
        "client request retries by op and reason",
    ).inc(op=op, reason=reason)


def record_service_reconnect() -> None:
    """The client re-established a dropped connection."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_reconnects_total", "client reconnections"
    ).inc()


def record_deadline_exceeded(op: str, where: str) -> None:
    """A request deadline expired (``queued`` or ``running``)."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "service_deadline_exceeded_total",
        "requests that ran out of deadline budget",
    ).inc(op=op, where=where)


def record_circuit_state(tenant: str, state: str) -> None:
    """A circuit-breaker transition (closed=0 / open=1 / half_open=2)."""
    if not TRACER.enabled:
        return
    REGISTRY.gauge(
        "circuit_state", "per-tenant circuit-breaker state"
    ).set(CIRCUIT_STATES[state], tenant=tenant)


# -- the network-chaos subsystem (see repro.chaos) ---------------------------


def record_chaos_injection(kind: str) -> None:
    """One chaos site fired inside the proxy, by site kind."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "chaos_injections_total", "network faults injected by kind"
    ).inc(kind=kind)


def record_chaos_trial(kind: str, outcome: str) -> None:
    """One chaos-campaign trial classified, by site kind and outcome."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "chaos_trials_total", "chaos trials by site kind and outcome"
    ).inc(kind=kind, outcome=outcome)


# -- the sharded multi-process execution subsystem ---------------------------
# (see repro.shard and docs/SHARDING.md)


def record_shard_completed(
    worker: int, cycles: int, instructions: int
) -> None:
    """One shard finished and its record reached the scheduler."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "shard_completed_total", "shards completed by worker"
    ).inc(worker=worker)
    REGISTRY.counter(
        "shard_cycles_total", "merged simulated cycles by worker"
    ).inc(cycles, worker=worker)
    REGISTRY.counter(
        "shard_instructions_total",
        "merged retired instructions by worker",
    ).inc(instructions, worker=worker)


def record_shard_steal(worker: int) -> None:
    """A worker drained its own backlog and stole from a peer's."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "shard_steals_total", "work-stealing grabs by thief worker"
    ).inc(worker=worker)


def record_shard_requeue(shard: int) -> None:
    """A dead worker's in-flight shard went back onto the backlog."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "shard_requeues_total", "shards re-queued after worker loss"
    ).inc(shard=shard)


def record_shard_worker_failure(worker: int) -> None:
    """A worker process died (crash, kill, or fatal worker error)."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "shard_worker_failures_total", "worker process losses"
    ).inc(worker=worker)


def record_shard_checkpoint() -> None:
    """One shard record appended to the JSONL checkpoint file."""
    if not TRACER.enabled:
        return
    REGISTRY.counter(
        "shard_checkpoint_records_total",
        "shard records written to checkpoints",
    ).inc()


# -- per-request trace contexts (see repro.telemetry.tracing) ----------------
# Imported last: tracing reads this module's globals at call time, so
# the import must not run before TRACER/REGISTRY exist.

from repro.telemetry.tracing import (  # noqa: E402
    TraceContext,
    activate,
    current_trace,
    new_trace_id,
    request_trace,
)
