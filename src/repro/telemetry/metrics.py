"""Metrics registry: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is a named collection of metric families.
Each family owns zero or more *children*, one per distinct label value
combination (the Prometheus data model, scaled down to what a
single-process simulator needs):

* :class:`Counter` — monotonically increasing totals (kernel runs,
  replay fallbacks, pool hits);
* :class:`Gauge` — last-written values (pool size, configured limits);
* :class:`Histogram` — bucketed distributions with count/sum/min/max
  (per-run cycle counts, span durations).

The module keeps a process-global :data:`DEFAULT_REGISTRY` that all
built-in instrumentation writes to; registries are plain objects, so
tests and embedders can construct private instances and pass them
wherever a registry is accepted.

Everything here is bookkeeping on plain dicts — no background threads,
no I/O.  Exporters live in :mod:`repro.telemetry.export`.

Since the service layer (:mod:`repro.service`) executes kernel runs on
worker threads, every *family-level* mutation (``Counter.inc``,
``Gauge.set``/``inc``/``dec``, ``Histogram.observe``) and every
get-or-create (family or child) is serialised on one re-entrant module
lock, :data:`MUTATION_LOCK` — concurrent sessions can therefore never
lose a counter update (``tests/service/test_concurrent_sessions.py``
asserts the sums are exact).  The span recorder shares the same lock so
cycle attribution composes with it.  Reads used by exporters
(``samples``/``to_dict``) snapshot under the lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ReproError

#: One re-entrant lock for all telemetry mutation (metrics *and* span
#: cycle attribution): uncontended acquisition is ~100ns, far below the
#: enabled-capture budget guarded by
#: ``benchmarks/test_telemetry_overhead.py``.
MUTATION_LOCK = threading.RLock()


class TelemetryError(ReproError):
    """Misuse of the telemetry layer (type clash, bad labels, ...)."""

    code = "telemetry"


LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------------
# Metric children (one per label combination)
# ---------------------------------------------------------------------------


class CounterChild:
    """A single monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        self.value += amount


class GaugeChild:
    """A single last-value-wins series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: Default histogram bucket upper bounds (cycle-count flavoured:
#: generated kernels run tens to thousands of cycles each).
DEFAULT_BUCKETS = (
    10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000,
)


class HistogramChild:
    """A single bucketed distribution."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1


# ---------------------------------------------------------------------------
# Metric families
# ---------------------------------------------------------------------------


class _Family:
    """Shared get-or-create child bookkeeping for one metric name."""

    kind = "untyped"
    child_cls: type = CounterChild

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._children: dict[LabelKey, object] = {}

    def _make_child(self):
        return self.child_cls()

    def labels(self, **labels: object):
        """Child for one label combination (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with MUTATION_LOCK:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    @property
    def unlabeled(self):
        """The no-label child (shorthand for ``labels()``)."""
        return self.labels()

    def children(self) -> Iterator[tuple[LabelKey, object]]:
        yield from self._children.items()


class Counter(_Family):
    kind = "counter"
    child_cls = CounterChild

    def inc(self, amount: int = 1, **labels: object) -> None:
        child = self.labels(**labels)
        with MUTATION_LOCK:
            child.inc(amount)

    def value(self, **labels: object) -> int:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0

    def total(self) -> int:
        """Sum over every label combination."""
        with MUTATION_LOCK:
            return sum(child.value for child in self._children.values())


class Gauge(_Family):
    kind = "gauge"
    child_cls = GaugeChild

    def set(self, value: float, **labels: object) -> None:
        child = self.labels(**labels)
        with MUTATION_LOCK:
            child.set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        child = self.labels(**labels)
        with MUTATION_LOCK:
            child.inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        child = self.labels(**labels)
        with MUTATION_LOCK:
            child.dec(amount)

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Histogram(_Family):
    kind = "histogram"
    child_cls = HistogramChild

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.bounds = tuple(sorted(buckets))

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.bounds)

    def observe(self, value: float, **labels: object) -> None:
        child = self.labels(**labels)
        with MUTATION_LOCK:
            child.observe(value)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricSample:
    """One exported time-series point: ``name{labels} = value``."""

    name: str
    kind: str
    labels: LabelKey
    value: float


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a name fixes its type, and later calls with a clashing
    type raise :class:`TelemetryError` (catching the classic silent
    double-registration bug).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        family = self._families.get(name)
        if family is None:
            with MUTATION_LOCK:
                family = self._families.get(name)
                if family is None:
                    family = self._families[name] = cls(
                        name, help, **kwargs)
        if type(family) is not cls:
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{family.kind}, not {cls.kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help,
                                   buckets=buckets)

    def families(self) -> Iterator[_Family]:
        yield from self._families.values()

    def reset(self) -> None:
        """Drop every family (fresh registry state)."""
        self._families.clear()

    # -- export views --------------------------------------------------------

    def samples(self) -> Iterator[MetricSample]:
        """Flatten every child into exportable samples.

        Histograms flatten to ``_count``/``_sum``/``_bucket`` series,
        mirroring the Prometheus exposition conventions.  The flatten
        runs under :data:`MUTATION_LOCK`, so an export taken while
        worker threads are recording is a consistent snapshot.
        """
        with MUTATION_LOCK:
            return iter(list(self._samples()))

    def _samples(self) -> Iterator[MetricSample]:
        for family in list(self._families.values()):
            if isinstance(family, Histogram):
                for key, child in family.children():
                    assert isinstance(child, HistogramChild)
                    yield MetricSample(f"{family.name}_count",
                                       family.kind, key, child.count)
                    yield MetricSample(f"{family.name}_sum",
                                       family.kind, key, child.sum)
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.buckets):
                        cumulative += count
                        yield MetricSample(
                            f"{family.name}_bucket", family.kind,
                            key + (("le", str(bound)),), cumulative)
                    yield MetricSample(
                        f"{family.name}_bucket", family.kind,
                        key + (("le", "+Inf"),), child.count)
            else:
                for key, child in family.children():
                    yield MetricSample(family.name, family.kind, key,
                                       child.value)  # type: ignore

    def to_dict(self) -> dict[str, list[dict[str, object]]]:
        """JSON-friendly dump: ``name -> [{labels, value}, ...]``."""
        out: dict[str, list[dict[str, object]]] = {}
        for sample in self.samples():
            out.setdefault(sample.name, []).append({
                "labels": dict(sample.labels),
                "value": sample.value,
            })
        return out


#: Process-global registry used by the built-in instrumentation.
DEFAULT_REGISTRY = MetricsRegistry()
