"""Perf-regression watchdog over ``BENCH_*.json`` trajectories.

The trajectory artifacts (:func:`~repro.telemetry.export.write_bench`)
accumulate one run record per invocation of ``repro profile``,
``repro bench`` and ``repro load``.  The watchdog turns that history
into a gate: group the runs by workload identity, take the **median of
every prior run** in a group as the baseline, and flag the group's
latest run when a metric moved past its tolerance in the bad
direction.  Medians (not means, not single predecessors) keep one
noisy CI run from poisoning the baseline in either direction.

Metric classes and their default tolerances:

* *lower-better wall-clock* (``wall_s``, ``duration_s``,
  ``latency_p50/p95/p99_ms``, ``engines.<e>.wall_s``) — noisy on
  shared CI runners, so the default tolerance is generous
  (:data:`DEFAULT_LATENCY_TOLERANCE`, +50%);
* *higher-better throughput* (``throughput_per_s``) — same noise,
  opposite direction (:data:`DEFAULT_THROUGHPUT_TOLERANCE`, −35%);
* *deterministic cycle counts* (``simulated_cycles``) — the simulator
  is bit-exact, so **any** increase is a real regression
  (:data:`DEFAULT_CYCLES_TOLERANCE`, 0.0);
* *deterministic recovery rate* (``recovery_rate``, from
  ``chaos_load`` records) — chaos campaigns are seeded and their
  outcomes are a pure function of the seed, so any drop below the
  baseline median is a real resilience regression
  (:data:`DEFAULT_RECOVERY_TOLERANCE`, 0.0);
* *invariants* (``divergences``, ``escaped``, ``hung``) — never
  compared to a baseline; a nonzero value in the latest run is a
  finding outright.

Every finding carries the stable error code ``"regression"``
(:class:`~repro.errors.RegressionError`); :func:`enforce` raises it,
while the ``repro watchdog`` CLI prints the report and exits 1 so the
regression exit is distinct from usage errors (exit 2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Iterable, Sequence

from repro.errors import RegressionError
from repro.telemetry.metrics import TelemetryError

#: Lower-better wall-clock metrics may grow by this fraction before
#: the watchdog fires (CI wall time is noisy; cycles are the tight
#: gate).
DEFAULT_LATENCY_TOLERANCE = 0.5
#: Higher-better throughput may drop by this fraction.
DEFAULT_THROUGHPUT_TOLERANCE = 0.35
#: Simulated cycle counts are deterministic: zero tolerance — any
#: increase over the baseline median is a regression.
DEFAULT_CYCLES_TOLERANCE = 0.0
#: Chaos recovery rates are a pure function of the seed: zero
#: tolerance — any drop below the baseline median is a regression.
DEFAULT_RECOVERY_TOLERANCE = 0.0

#: Record fields that identify a workload; runs sharing all present
#: key fields form one comparison group.  (``repro profile`` records
#: carry no ``mode`` — absence is itself part of the identity.)
GROUP_KEYS = (
    "mode", "params", "variant", "engine", "exchanges",
    "concurrency", "tenants", "hardened", "rounds",
    "workers", "shards", "n", "seed",
)

_LOWER_BETTER = (
    "wall_s", "duration_s",
    "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
)
_HIGHER_BETTER = ("throughput_per_s",)
_TIGHT = ("simulated_cycles",)
_RECOVERY = ("recovery_rate",)
#: Metrics that must be 0 in the latest run of every group, baseline
#: or not: a divergence/escape is a wrong answer that left the
#: service, a hang means the resilience stack wedged.
_INVARIANTS = ("divergences", "escaped", "hung")


@dataclass(frozen=True)
class Tolerances:
    """Per-class relative tolerances (fractions, not percents)."""

    latency: float = DEFAULT_LATENCY_TOLERANCE
    throughput: float = DEFAULT_THROUGHPUT_TOLERANCE
    cycles: float = DEFAULT_CYCLES_TOLERANCE
    recovery: float = DEFAULT_RECOVERY_TOLERANCE

    def __post_init__(self) -> None:
        for name in ("latency", "throughput", "cycles", "recovery"):
            value = getattr(self, name)
            if value < 0:
                raise TelemetryError(
                    f"{name} tolerance must be >= 0 (got {value})")

    def for_class(self, kind: str) -> float:
        return {"latency": self.latency,
                "throughput": self.throughput,
                "cycles": self.cycles,
                "recovery": self.recovery}[kind]


@dataclass(frozen=True)
class Finding:
    """One metric of one group's latest run outside its tolerance."""

    #: Stable error code shared with :class:`RegressionError`.
    code = "regression"

    path: str
    group: str
    metric: str
    kind: str
    direction: str  # "increase" | "decrease" | "invariant"
    baseline: float
    latest: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """``latest / baseline`` (``inf`` when the baseline is 0)."""
        if self.baseline == 0:
            return float("inf") if self.latest else 1.0
        return self.latest / self.baseline

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "group": self.group,
            "metric": self.metric,
            "kind": self.kind,
            "direction": self.direction,
            "baseline": self.baseline,
            "latest": self.latest,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
        }

    def describe(self) -> str:
        if self.direction == "invariant":
            return (f"{self.group}: {self.metric} must be 0, latest "
                    f"run has {self.latest:g}")
        verb = ("rose" if self.direction == "increase" else "fell")
        return (f"{self.group}: {self.metric} {verb} "
                f"{self.baseline:g} -> {self.latest:g} "
                f"({self.ratio:.2f}x, tolerance "
                f"{self.tolerance:+.0%})")


@dataclass
class WatchdogReport:
    """The outcome of one watchdog pass over one or more trajectories."""

    paths: list[str] = field(default_factory=list)
    runs_seen: int = 0
    groups_checked: int = 0
    groups_skipped: int = 0  # fewer than 2 runs: no baseline yet
    metrics_checked: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "paths": list(self.paths),
            "runs_seen": self.runs_seen,
            "groups_checked": self.groups_checked,
            "groups_skipped": self.groups_skipped,
            "metrics_checked": self.metrics_checked,
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        lines = [
            f"watchdog: {self.runs_seen} run(s) in "
            f"{len(self.paths)} trajectory file(s); "
            f"{self.groups_checked} group(s) checked, "
            f"{self.groups_skipped} skipped (no baseline), "
            f"{self.metrics_checked} metric(s) compared",
        ]
        if self.ok:
            lines.append("no regressions detected")
        else:
            lines.append(f"{len(self.findings)} regression(s):")
            lines.extend(f"  - {f.describe()}" for f in self.findings)
        return "\n".join(lines)


def _group_key(record: dict) -> str:
    parts = [f"{key}={record[key]}" for key in GROUP_KEYS
             if key in record]
    return " ".join(parts) if parts else "(unkeyed)"


def _number(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _metrics(record: dict) -> dict[str, tuple[float, str]]:
    """``{metric: (value, class)}`` for every comparable metric."""
    out: dict[str, tuple[float, str]] = {}
    for name in _LOWER_BETTER:
        value = _number(record.get(name))
        if value is not None:
            out[name] = (value, "latency")
    for name in _HIGHER_BETTER:
        value = _number(record.get(name))
        if value is not None:
            out[name] = (value, "throughput")
    for name in _TIGHT:
        value = _number(record.get(name))
        if value is not None:
            out[name] = (value, "cycles")
    for name in _RECOVERY:
        value = _number(record.get(name))
        if value is not None:
            out[name] = (value, "recovery")
    engines = record.get("engines")
    if isinstance(engines, dict):  # engine_comparison records
        for engine, row in engines.items():
            if isinstance(row, dict):
                value = _number(row.get("wall_s"))
                if value is not None:
                    out[f"engines.{engine}.wall_s"] = (
                        value, "latency")
    return out


def check_records(
    records: Sequence[dict],
    *,
    tolerances: Tolerances | None = None,
    path: str = "<records>",
    report: WatchdogReport | None = None,
) -> WatchdogReport:
    """Check the latest run of every group in *records* in order.

    Records accumulate into *report* when given (so
    :func:`check_paths` can merge several trajectories); otherwise a
    fresh :class:`WatchdogReport` is returned.
    """
    tolerances = tolerances or Tolerances()
    report = report if report is not None else WatchdogReport()
    report.paths.append(path)

    groups: dict[str, list[dict]] = {}
    for record in records:
        if isinstance(record, dict):
            report.runs_seen += 1
            groups.setdefault(_group_key(record), []).append(record)

    for group, runs in groups.items():
        latest = runs[-1]
        latest_metrics = _metrics(latest)

        # Invariants: a divergence/escape is a wrong answer that left
        # the service, a hang is a wedged resilience stack — flag on
        # the latest run even without any baseline.
        for invariant in _INVARIANTS:
            value = _number(latest.get(invariant))
            if value:
                report.findings.append(Finding(
                    path=path, group=group, metric=invariant,
                    kind="invariant", direction="invariant",
                    baseline=0.0, latest=value, tolerance=0.0))

        if len(runs) < 2:
            report.groups_skipped += 1
            continue
        report.groups_checked += 1

        for metric, (value, kind) in latest_metrics.items():
            history = [
                prior_value
                for prior in runs[:-1]
                for prior_value, prior_kind in
                [_metrics(prior).get(metric, (None, None))]
                if prior_value is not None
            ]
            if not history:
                continue
            baseline = float(median(history))
            if baseline <= 0:
                continue  # degenerate baseline: nothing to compare
            tolerance = tolerances.for_class(kind)
            report.metrics_checked += 1
            if kind in ("throughput", "recovery"):
                if value < baseline * (1.0 - tolerance):
                    report.findings.append(Finding(
                        path=path, group=group, metric=metric,
                        kind=kind, direction="decrease",
                        baseline=baseline, latest=value,
                        tolerance=tolerance))
            else:
                if value > baseline * (1.0 + tolerance):
                    report.findings.append(Finding(
                        path=path, group=group, metric=metric,
                        kind=kind, direction="increase",
                        baseline=baseline, latest=value,
                        tolerance=tolerance))
    return report


def _load_runs(path: str) -> list[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise TelemetryError(
            f"cannot read benchmark trajectory {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise TelemetryError(
            f"benchmark trajectory {path!r} is not valid JSON: {exc}"
        ) from exc
    runs = document.get("runs") if isinstance(document, dict) else None
    if not isinstance(runs, list):
        raise TelemetryError(
            f"benchmark trajectory {path!r} has no 'runs' list; is it "
            f"a write_bench artifact?")
    return [run for run in runs if isinstance(run, dict)]


def check_bench(
    path: str,
    *,
    tolerances: Tolerances | None = None,
) -> WatchdogReport:
    """Run the watchdog over one trajectory file."""
    return check_records(_load_runs(path), tolerances=tolerances,
                         path=path)


def check_paths(
    paths: Iterable[str],
    *,
    tolerances: Tolerances | None = None,
) -> WatchdogReport:
    """Run the watchdog over several trajectory files, one report."""
    report = WatchdogReport()
    for path in paths:
        check_records(_load_runs(path), tolerances=tolerances,
                      path=path, report=report)
    return report


def enforce(report: WatchdogReport) -> WatchdogReport:
    """Raise :class:`RegressionError` when *report* has findings."""
    if not report.ok:
        raise RegressionError(
            f"{len(report.findings)} perf regression(s): "
            + "; ".join(f.describe() for f in report.findings))
    return report
