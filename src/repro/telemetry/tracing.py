"""Per-request trace contexts over the span tree.

PR 2's span tree answers "where do the cycles go?" for a whole run;
this module answers it **per request**.  Every service request gets a
``trace_id`` that travels over the JSON-lines wire protocol, through
the coalescer's batches and down to the kernel runner, so the
cycle-exact span subtree hangs off the request that caused it:

* :func:`request_trace` opens a request node directly under the
  tracer root (deliberately *not* on the event-loop thread's span
  stack — concurrent asyncio tasks would otherwise nest under each
  other) and registers a :class:`TraceContext` in ``Tracer.traces``;
* :func:`activate` continues that node on an executor thread
  (``run_in_executor`` does not copy contextvars, so the service
  passes the context explicitly) — nested ``telemetry.span`` calls
  and kernel cycles then attach under the request;
* :func:`begin_batch` gives one coalesced flush its own ``batch``
  node recording **all** member trace_ids, with zero-cycle
  ``coalesced[batch=...]`` link children under each member request so
  the batch is reachable from every member's trace;
* :func:`to_chrome_trace` / :func:`to_collapsed` render any span
  forest as Chrome ``trace_event`` JSON (a wall-clock pid anchored at
  ``start_epoch`` plus a simulated-cycles pid) and as collapsed-stack
  text for flamegraph.pl / speedscope.

Cycle conservation survives tracing: kernel cycles recorded under an
active trace land in per-kernel children (``Tracer.add_kernel_cycles``)
of exactly one node, so subtree totals still sum to
``SimulatedFieldContext.simulated_cycles`` — ``run_load(trace=True)``
asserts it.

With telemetry disabled all of this degrades to id generation: a
``TraceContext`` with no node is handed out so the wire protocol still
echoes trace ids, but nothing is recorded and ``current_trace()``
stays ``None`` for downstream consumers.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import repro.telemetry as telemetry
from repro.telemetry.export import span_from_dict, span_to_dict
from repro.telemetry.metrics import MUTATION_LOCK
from repro.telemetry.spans import ACTIVE_TRACE, SpanNode, Tracer

#: Bound on the per-tracer trace/batch indexes: a long-lived server
#: keeps the most recent contexts and forgets the oldest (their span
#: nodes remain in the tree until :func:`clear_traces`).
MAX_INDEXED_TRACES = 4096

#: Ops that participate in request tracing over the wire.
TRACED_OPS = ("keygen", "exchange", "verify", "field_op")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


@dataclass
class TraceContext:
    """One request's (or coalesced batch's) trace bookkeeping.

    ``node`` is the span subtree root for this request, or ``None``
    when telemetry was disabled at creation (the id still flows over
    the wire).  ``batch_ids`` lists every coalesced batch this request
    contributed an operand to; for ``kind == "batch"`` contexts,
    ``member_ids`` lists the contributing requests instead.
    """

    trace_id: str
    op: str
    tenant: str = ""
    kind: str = "request"
    start_epoch: float = 0.0
    node: SpanNode | None = None
    wall_s: float = 0.0
    status: str = "open"
    error_code: str | None = None
    batch_ids: list[str] = field(default_factory=list)
    member_ids: tuple[str, ...] = ()

    def to_dict(self, *, spans: bool = False) -> dict[str, Any]:
        data: dict[str, Any] = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "op": self.op,
            "tenant": self.tenant,
            "start_epoch": self.start_epoch,
            "wall_s": self.wall_s,
            "status": self.status,
        }
        if self.error_code is not None:
            data["error_code"] = self.error_code
        if self.batch_ids:
            data["batch_ids"] = list(self.batch_ids)
        if self.member_ids:
            data["member_ids"] = list(self.member_ids)
        if self.node is not None:
            data["total_cycles"] = self.node.total_cycles
            if spans:
                data["spans"] = span_to_dict(self.node)
        return data


def _tracer() -> Tracer:
    # telemetry.capture() rebinds the module global, so dereference at
    # call time rather than import time.
    return telemetry.TRACER


def current_trace() -> TraceContext | None:
    """The trace context active in this task/thread, if any."""
    return ACTIVE_TRACE.get()  # type: ignore[return-value]


def _index(table: dict[str, TraceContext], ctx: TraceContext) -> None:
    table[ctx.trace_id] = ctx
    while len(table) > MAX_INDEXED_TRACES:
        del table[next(iter(table))]


@contextmanager
def request_trace(
    op: str,
    tenant: str = "",
    *,
    trace_id: str | None = None,
) -> Iterator[TraceContext]:
    """Open a per-request trace for the ``with`` block.

    The request's span node is created directly under the tracer root
    (labels ``op``/``tenant``/``trace``) and is **not** pushed on the
    calling thread's span stack — on an asyncio event loop many
    requests interleave on one thread, and stack nesting would wrongly
    chain them.  Execution threads join the subtree via
    :func:`activate`.  Wall-clock and count are booked on the node
    when the block exits; an escaping exception marks the context
    ``status="error"`` with its stable ``code``.
    """
    tracer = _tracer()
    ctx = TraceContext(trace_id or new_trace_id(), op, tenant,
                       start_epoch=time.time())
    if not tracer.enabled:
        yield ctx
        return
    with MUTATION_LOCK:
        node = tracer.root.child("request", (
            ("op", op), ("tenant", tenant), ("trace", ctx.trace_id)))
        if node.start_epoch is None:
            node.start_epoch = ctx.start_epoch
        ctx.node = node
        _index(tracer.traces, ctx)
    token = ACTIVE_TRACE.set(ctx)
    start = time.perf_counter()
    try:
        yield ctx
        ctx.status = "ok"
    except BaseException as exc:
        ctx.status = "error"
        ctx.error_code = getattr(exc, "code", type(exc).__name__)
        raise
    finally:
        ACTIVE_TRACE.reset(token)
        elapsed = time.perf_counter() - start
        ctx.wall_s = elapsed
        with MUTATION_LOCK:
            node.count += 1
            node.wall_s += elapsed


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Continue *ctx* on the calling (executor) thread.

    Pushes the request node onto this thread's span stack (without
    double-booking its wall/count) and sets the active-trace
    contextvar, so nested spans and kernel cycles attribute under the
    request.  ``None`` (or a node-less context) is a cheap no-op, the
    disabled-telemetry fast path.
    """
    if ctx is None or ctx.node is None:
        yield None
        return
    token = ACTIVE_TRACE.set(ctx)
    try:
        with _tracer().adopt(ctx.node):
            yield ctx
    finally:
        ACTIVE_TRACE.reset(token)


@contextmanager
def using(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Set the active-trace contextvar *without* touching span stacks.

    For async contexts (the coalescer's batch coroutine): the span
    stack is per *thread* and adopted nodes would interleave across
    concurrently awaiting tasks, but the contextvar is per *task* and
    safe.  Downstream code reads :func:`current_trace`.
    """
    if ctx is None:
        yield None
        return
    token = ACTIVE_TRACE.set(ctx)
    try:
        yield ctx
    finally:
        ACTIVE_TRACE.reset(token)


def begin_batch(
    op: str,
    members: list[tuple[TraceContext | None, float]],
) -> TraceContext | None:
    """Open a batch context for one coalesced flush.

    *members* pairs each member's trace context (or ``None``) with the
    wall-clock seconds it waited in the coalescing window.  Records,
    per member: a ``coalesce.wait`` child booking the wait and a
    zero-cycle ``coalesced[batch=...]`` link child, making the batch
    reachable from every member request's trace.  Returns ``None``
    while telemetry is disabled.
    """
    tracer = _tracer()
    if not tracer.enabled:
        return None
    batch_id = new_trace_id()
    traced = [(ctx, wait) for ctx, wait in members if ctx is not None]
    ctx = TraceContext(
        batch_id, op, kind="batch", start_epoch=time.time(),
        member_ids=tuple(m.trace_id for m, _ in traced))
    with MUTATION_LOCK:
        node = tracer.root.child(
            "batch", (("batch", batch_id), ("op", op)))
        if node.start_epoch is None:
            node.start_epoch = ctx.start_epoch
        ctx.node = node
        _index(tracer.batches, ctx)
        for member, wait in traced:
            member.batch_ids.append(batch_id)
            if member.node is None:
                continue
            waited = member.node.child("coalesce.wait")
            if waited.start_epoch is None:
                waited.start_epoch = ctx.start_epoch - wait
            waited.count += 1
            waited.wall_s += wait
            link = member.node.child(
                "coalesced", (("batch", batch_id),))
            link.count += 1
    return ctx


def finish_batch(ctx: TraceContext | None, wall_s: float,
                 ok: bool = True) -> None:
    """Book one flush's execution wall time on its batch node."""
    if ctx is None or ctx.node is None:
        return
    ctx.wall_s = wall_s
    ctx.status = "ok" if ok else "error"
    with MUTATION_LOCK:
        ctx.node.count += 1
        ctx.node.wall_s += wall_s


def clear_traces(tracer: Tracer | None = None) -> int:
    """Drop recorded request/batch subtrees and indexes.

    Keeps unrelated spans and all metrics.  Returns the number of
    dropped top-level nodes — the ``trace_export(reset=True)`` wire op
    uses this so a long-lived server's tree stays bounded.
    """
    tracer = tracer or _tracer()
    with MUTATION_LOCK:
        keys = [key for key in tracer.root.children
                if key[0] in ("request", "batch")]
        for key in keys:
            del tracer.root.children[key]
        tracer.traces.clear()
        tracer.batches.clear()
    return len(keys)


# ---------------------------------------------------------------------------
# Documents: snapshot a tracer, rebuild a forest from a snapshot
# ---------------------------------------------------------------------------


def snapshot_document(
    tracer: Tracer | None = None,
    *,
    spans: bool = True,
    op: str | None = None,
    tenant: str | None = None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """JSON-able dump of every indexed trace/batch (optionally
    filtered), the payload behind the ``trace_export`` wire op."""
    tracer = tracer or _tracer()

    def keep(ctx: TraceContext) -> bool:
        return ((op is None or ctx.op == op)
                and (tenant is None or ctx.tenant == tenant)
                and (trace_id is None or ctx.trace_id == trace_id))

    with MUTATION_LOCK:
        traces = [ctx.to_dict(spans=spans)
                  for ctx in tracer.traces.values() if keep(ctx)]
        wanted = ({b for t in tracer.traces.values() if keep(t)
                   for b in t.batch_ids}
                  if (op, tenant, trace_id) != (None, None, None)
                  else None)
        batches = [ctx.to_dict(spans=spans)
                   for ctx in tracer.batches.values()
                   if wanted is None or ctx.trace_id in wanted]
    return {
        "enabled": tracer.enabled,
        "traces": traces,
        "batches": batches,
    }


def document_to_root(document: dict[str, Any]) -> SpanNode:
    """Rebuild a span forest (synthetic root) from a snapshot document,
    so the exporters below work identically on live trees and on
    ``trace_export`` payloads fetched over the wire."""
    root = SpanNode("root")
    for entry in list(document.get("traces", ())) + list(
            document.get("batches", ())):
        data = entry.get("spans")
        if not data:
            continue
        child = span_from_dict(data)
        root.children[(child.name, child.labels)] = child
    return root


# ---------------------------------------------------------------------------
# Exporters: Chrome trace_event JSON and collapsed stacks
# ---------------------------------------------------------------------------

_WALL_PID = 1
_CYCLES_PID = 2


def to_chrome_trace(root: SpanNode) -> dict[str, Any]:
    """Render a span forest as a Chrome ``trace_event`` document.

    Two processes in the trace viewer: pid 1 lays spans out on the
    **wall clock** (microseconds, anchored at each node's
    ``start_epoch`` relative to the earliest anchor in the forest) and
    pid 2 on **simulated cycles** (1 cycle rendered as 1 µs, children
    packed left-to-right), where per-kernel spans appear with exact
    subtree cycle totals.  Load the output in ``chrome://tracing``,
    Perfetto or speedscope.
    """
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _WALL_PID, "tid": 0,
         "args": {"name": "wall clock (us)"}},
        {"name": "process_name", "ph": "M", "pid": _CYCLES_PID,
         "tid": 0,
         "args": {"name": "simulated cycles (1 cycle = 1us)"}},
    ]
    tops = list(root.children.values())
    anchors = [node.start_epoch for node in root.walk()
               if node.start_epoch is not None]
    epoch0 = min(anchors) if anchors else 0.0

    def args(node: SpanNode) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": node.count,
            "self_cycles": node.self_cycles,
            "total_cycles": node.total_cycles,
            "wall_s": node.wall_s,
        }
        if node.start_epoch is not None:
            out["start_epoch"] = node.start_epoch
        return out

    def emit_wall(node: SpanNode, tid: int, fallback_ts: float) -> None:
        if node.wall_s <= 0.0 and node.count == 0:
            return
        ts = ((node.start_epoch - epoch0) * 1e6
              if node.start_epoch is not None else fallback_ts)
        events.append({
            "name": node.label, "cat": node.name, "ph": "X",
            "pid": _WALL_PID, "tid": tid,
            "ts": ts, "dur": node.wall_s * 1e6, "args": args(node),
        })
        for child in node.children.values():
            emit_wall(child, tid, ts)

    def emit_cycles(node: SpanNode, tid: int, ts: int) -> None:
        total = node.total_cycles
        if total <= 0:
            return
        events.append({
            "name": node.label, "cat": node.name, "ph": "X",
            "pid": _CYCLES_PID, "tid": tid,
            "ts": ts, "dur": total, "args": args(node),
        })
        cursor = ts
        for child in node.children.values():
            emit_cycles(child, tid, cursor)
            cursor += child.total_cycles

    for tid, top in enumerate(tops, start=1):
        for pid in (_WALL_PID, _CYCLES_PID):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid, "args": {"name": top.label}})
        emit_wall(top, tid, 0.0)
        emit_cycles(top, tid, 0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"total_cycles": root.total_cycles},
    }


def to_collapsed(root: SpanNode) -> str:
    """Render a span forest as collapsed stacks (flamegraph.pl input).

    One ``frame;frame;frame count`` line per node with nonzero
    exclusive cycles; the values sum exactly to ``root.total_cycles``,
    so the flamegraph is the cycle-conservation invariant made
    visible.
    """
    lines: list[str] = []

    def frame(node: SpanNode) -> str:
        return node.label.replace(";", ",").replace(" ", "_")

    def emit(node: SpanNode, stack: str) -> None:
        path = f"{stack};{frame(node)}" if stack else frame(node)
        if node.self_cycles:
            lines.append(f"{path} {node.self_cycles}")
        for child in node.children.values():
            emit(child, path)

    for top in root.children.values():
        emit(top, "")
    if root.self_cycles:
        lines.append(f"{frame(root)} {root.self_cycles}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


def summarize_root(root: SpanNode, *, top: int = 5) -> dict[str, Any]:
    """Compact forest summary for BENCH records and ``repro trace``:
    span/request/batch counts, total cycles, top kernels by cycles."""
    kernels: dict[str, int] = {}
    span_count = 0
    requests = 0
    batches = 0
    for node in root.walk():
        span_count += 1
        if node.name == "kernel":
            labels = dict(node.labels)
            key = labels.get("kernel", node.label)
            kernels[key] = kernels.get(key, 0) + node.self_cycles
        elif node.name == "request":
            requests += 1
        elif node.name == "batch":
            batches += 1
    ranked = sorted(kernels.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "span_count": span_count - 1,  # exclude the synthetic root
        "requests": requests,
        "batches": batches,
        "total_cycles": root.total_cycles,
        "top_kernels": [
            {"kernel": name, "cycles": cycles}
            for name, cycles in ranked[:top]
        ],
    }


def render_trace_summary(document: dict[str, Any],
                         *, limit: int = 20) -> str:
    """Human-readable table of a snapshot document's traces."""
    rows = ["trace             kind     op         tenant       "
            "status   wall_ms      cycles"]
    entries = list(document.get("traces", ())) + list(
        document.get("batches", ()))
    entries.sort(key=lambda e: e.get("start_epoch", 0.0))
    for entry in entries[:limit]:
        rows.append(
            f"{entry['trace_id']:<17s} {entry.get('kind', '?'):<8s} "
            f"{entry.get('op', ''):<10s} "
            f"{entry.get('tenant', ''):<12s} "
            f"{entry.get('status', ''):<8s} "
            f"{entry.get('wall_s', 0.0) * 1e3:>7.2f} "
            f"{entry.get('total_cycles', 0):>11,d}")
    hidden = len(entries) - limit
    if hidden > 0:
        rows.append(f"... ({hidden} more)")
    return "\n".join(rows)
