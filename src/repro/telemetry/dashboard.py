"""Live service dashboard: render ``stats()`` snapshots as text.

``repro top`` polls a running service's ``stats`` wire op and redraws
one compact screen per interval — per-tenant throughput, the rolling
p50/p95/p99 request latency, engine-ladder occupancy, admission
rejections and fault recoveries.  The renderer is a **pure function**
over two snapshots (:func:`render_dashboard`), so tests feed it
hand-built dictionaries and never open a socket; only
:func:`poll_dashboard` talks to the wire.

Rates are derived client-side from snapshot deltas: the service keeps
monotonic counters (``requests``, ``rejections`` ...) and the
dashboard divides the delta by the poll interval, so a restarted
dashboard converges within one tick and needs no server support.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Callable, TextIO

from repro.errors import ServiceError

#: Ladder tiers in demotion order, for the occupancy line.
_TIERS = ("jit", "replay", "interpreter")


def _rate(current: float, previous: float | None,
          dt: float | None) -> float:
    if previous is None or not dt or dt <= 0:
        return 0.0
    return max(0.0, (current - previous) / dt)


def _fmt_rate(value: float) -> str:
    return f"{value:8.1f}/s"


def render_dashboard(
    stats: dict,
    previous: dict | None = None,
    dt: float | None = None,
    *,
    clear: bool = False,
) -> str:
    """One dashboard frame from a ``stats()`` snapshot.

    *previous* (the prior snapshot) and *dt* (seconds between the
    two) turn monotonic counters into rates; without them the rate
    columns read 0.  With ``clear=True`` the frame is prefixed with
    the ANSI clear-screen sequence for in-place terminal redraws.
    """
    tenants = stats.get("tenants", {})
    previous_tenants = (previous or {}).get("tenants", {})
    latency = stats.get("latency_ms", {})

    ladder = {tier: 0 for tier in _TIERS}
    for row in tenants.values():
        engine = row.get("engine")
        ladder[engine] = ladder.get(engine, 0) + 1

    uptime = stats.get("uptime_s", 0.0)
    lines = [
        f"repro service · {stats.get('modulus_bits', '?')}-bit modulus"
        f" · up {uptime:7.1f}s · inflight "
        f"{stats.get('total_inflight', 0)}",
        f"requests {stats.get('requests_total', 0)} "
        f"({_fmt_rate(_rate(stats.get('requests_total', 0), (previous or {}).get('requests_total'), dt)).strip()})"
        f" · errors {stats.get('errors_total', 0)}"
        f" · rejections {stats.get('rejections_total', 0)}",
        f"latency ms p50 {latency.get('p50', 0.0):8.2f}  "
        f"p95 {latency.get('p95', 0.0):8.2f}  "
        f"p99 {latency.get('p99', 0.0):8.2f}  "
        f"(window {latency.get('window', 0)})",
        "ladder   " + "  ".join(
            f"{tier}:{ladder.get(tier, 0)}" for tier in _TIERS
            ) + "   (tenants per active tier)",
        "",
        f"{'tenant':<12} {'engine':<12} {'infl':>4} {'cap':>4} "
        f"{'req/s':>8} {'requests':>9} {'rej':>5} {'demo':>5} "
        f"{'promo':>5} {'faults':>10}",
    ]
    for name in sorted(tenants):
        row = tenants[name]
        prior = previous_tenants.get(name, {})
        engine = row.get("engine", "?")
        if engine != row.get("preferred_engine", engine):
            engine = f"{engine}*"  # demoted below its preferred tier
        if row.get("hardened"):
            engine += "+h"
        faults = (f"{row.get('fault_detections', 0)}det/"
                  f"{row.get('fault_recoveries', 0)}rec")
        lines.append(
            f"{name:<12} {engine:<12} "
            f"{row.get('inflight', 0):>4} "
            f"{row.get('capacity', 0):>4} "
            f"{_rate(row.get('requests', 0), prior.get('requests'), dt):>8.1f} "
            f"{row.get('requests', 0):>9} "
            f"{row.get('rejections', 0):>5} "
            f"{row.get('demotions', 0):>5} "
            f"{row.get('promotions', 0):>5} "
            f"{faults:>10}")

    coalesced = stats.get("coalesced", {})
    batches = sum(row.get("batches", 0) for row in coalesced.values())
    items = sum(row.get("items", 0) for row in coalesced.values())
    if batches:
        lines.append("")
        lines.append(
            f"coalesced {items} field op(s) into {batches} batch(es) "
            f"({items / batches:.1f}/batch)")

    frame = "\n".join(lines) + "\n"
    if clear:
        frame = "\x1b[2J\x1b[H" + frame
    return frame


async def poll_dashboard(
    host: str,
    port: int,
    *,
    interval_s: float = 1.0,
    iterations: int | None = None,
    plain: bool = False,
    out: TextIO | None = None,
    clock: Callable[[], float] | None = None,
) -> int:
    """Poll ``stats`` over the wire and redraw the dashboard.

    ``iterations=None`` runs until cancelled (ctrl-C in the CLI);
    tests pass a small count.  Returns the number of frames drawn.
    """
    from repro.service.wire import ServiceClient  # avoid import cycle

    if interval_s <= 0:
        raise ServiceError(
            f"poll interval must be positive (got {interval_s})")
    out = out if out is not None else sys.stdout
    clock = clock or asyncio.get_event_loop().time
    frames = 0
    previous: dict | None = None
    previous_at: float | None = None
    async with await ServiceClient().connect(host, port) as client:
        while iterations is None or frames < iterations:
            stats = await client.stats()
            now = clock()
            dt = (now - previous_at) if previous_at is not None else None
            out.write(render_dashboard(
                stats, previous, dt, clear=not plain))
            out.flush()
            frames += 1
            previous, previous_at = stats, now
            if iterations is not None and frames >= iterations:
                break
            await asyncio.sleep(interval_s)
    return frames
