"""Machine-readable exporters for spans and metrics.

Three formats, each chosen for a different consumer:

* **JSON document** (:func:`write_json`) — one self-contained object
  with the span tree, the flattened metrics and run metadata; the
  format behind the CLI's ``--telemetry out.json``;
* **JSONL event stream** (:func:`write_jsonl` / :func:`read_jsonl`) —
  one event per line (``meta``, ``span``, ``metric``), append-friendly
  and streamable; ``read_jsonl`` reconstructs the exact in-memory
  span tree (round-trip tested);
* **Prometheus text** (:func:`to_prometheus`) — the standard
  ``# TYPE`` + ``name{labels} value`` exposition format, ready for a
  node-exporter-style scrape or eyeballing;

plus :func:`write_bench` — the ``BENCH_*.json`` perf-trajectory
artifact: a small summary record appended to a ``runs`` list so CI can
track the benchmark numbers PR over PR.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any

from repro.telemetry.metrics import MetricsRegistry, TelemetryError
from repro.telemetry.spans import SpanNode

#: Format version stamped into every export.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Span tree <-> plain dicts
# ---------------------------------------------------------------------------


def span_to_dict(node: SpanNode) -> dict[str, Any]:
    """JSON-friendly recursive dump of one span subtree."""
    data = {
        "name": node.name,
        "labels": {k: v for k, v in node.labels},
        "count": node.count,
        "self_cycles": node.self_cycles,
        "total_cycles": node.total_cycles,
        "wall_s": node.wall_s,
        "children": [
            span_to_dict(child) for child in node.children.values()
        ],
    }
    if node.start_epoch is not None:
        data["start_epoch"] = node.start_epoch
    return data


def span_from_dict(data: dict[str, Any]) -> SpanNode:
    """Inverse of :func:`span_to_dict` (``total_cycles`` is derived and
    ignored on input)."""
    labels = tuple(sorted(
        (k, str(v)) for k, v in data.get("labels", {}).items()
    ))
    node = SpanNode(data["name"], labels)
    node.count = data.get("count", 0)
    node.self_cycles = data.get("self_cycles", 0)
    node.wall_s = data.get("wall_s", 0.0)
    node.start_epoch = data.get("start_epoch")
    for child_data in data.get("children", ()):
        child = span_from_dict(child_data)
        node.children[(child.name, child.labels)] = child
    return node


def _meta() -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": time.time(),
        "python": platform.python_version(),
        "platform": sys.platform,
    }


# ---------------------------------------------------------------------------
# JSON document
# ---------------------------------------------------------------------------


def to_json_document(
    root: SpanNode,
    registry: MetricsRegistry,
    *,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The combined export object (see :func:`write_json`)."""
    document = {
        "meta": _meta(),
        "spans": span_to_dict(root),
        "metrics": registry.to_dict(),
    }
    if extra:
        document.update(extra)
    return document


def write_json(
    path: str,
    root: SpanNode,
    registry: MetricsRegistry,
    *,
    extra: dict[str, Any] | None = None,
) -> None:
    """Write the combined JSON document to *path*."""
    document = to_json_document(root, registry, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


# ---------------------------------------------------------------------------
# JSONL event stream
# ---------------------------------------------------------------------------


def write_jsonl(
    path: str,
    root: SpanNode,
    registry: MetricsRegistry | None = None,
) -> None:
    """Stream the telemetry state as one JSON event per line.

    Span events carry a ``path`` (list of ``[name, labels]`` pairs from
    the root), which makes each line self-describing and lets
    :func:`read_jsonl` rebuild the tree without relying on ordering.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "meta", **_meta()}) + "\n")
        for node, span_path in _walk_with_paths(root, []):
            event = {
                "type": "span",
                "path": span_path,
                "count": node.count,
                "self_cycles": node.self_cycles,
                "wall_s": node.wall_s,
            }
            if node.start_epoch is not None:
                event["start_epoch"] = node.start_epoch
            handle.write(json.dumps(event) + "\n")
        if registry is not None:
            for sample in registry.samples():
                event = {
                    "type": "metric",
                    "name": sample.name,
                    "kind": sample.kind,
                    "labels": dict(sample.labels),
                    "value": sample.value,
                }
                handle.write(json.dumps(event) + "\n")


def _walk_with_paths(node: SpanNode, prefix: list):
    span_path = prefix + [[node.name, {k: v for k, v in node.labels}]]
    yield node, span_path
    for child in node.children.values():
        yield from _walk_with_paths(child, span_path)


def read_jsonl(path: str) -> SpanNode:
    """Rebuild the span tree from a :func:`write_jsonl` stream."""
    root: SpanNode | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("type") != "span":
                continue
            span_path = event["path"]
            name, labels = span_path[0]
            key = tuple(sorted((k, str(v)) for k, v in labels.items()))
            if root is None:
                root = SpanNode(name, key)
            node = root
            for name, labels in span_path[1:]:
                key = tuple(sorted(
                    (k, str(v)) for k, v in labels.items()))
                node = node.child(name, key)
            node.count = event.get("count", 0)
            node.self_cycles = event.get("self_cycles", 0)
            node.wall_s = event.get("wall_s", 0.0)
            node.start_epoch = event.get("start_epoch")
    if root is None:
        raise TelemetryError(f"no span events found in {path!r}")
    return root


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape_label_value(value: object) -> str:
    # Prometheus text exposition: inside a quoted label value,
    # backslash, double-quote and line feed must be escaped.
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for sample in registry.samples():
        base = sample.name
        for suffix in ("_bucket", "_count", "_sum"):
            if sample.kind == "histogram" and base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        if base not in seen_types:
            seen_types.add(base)
            lines.append(f"# TYPE {base} {sample.kind}")
        value = sample.value
        rendered = (
            f"{value:.10g}" if isinstance(value, float) else str(value)
        )
        lines.append(
            f"{sample.name}{_prom_labels(sample.labels)} {rendered}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# BENCH_*.json perf trajectory
# ---------------------------------------------------------------------------


def write_bench(
    path: str,
    benchmark: str,
    record: dict[str, Any],
) -> dict[str, Any]:
    """Append *record* to the trajectory artifact at *path*.

    The artifact is ``{"benchmark": ..., "schema": ..., "runs": [...]}``;
    an existing file accumulates (the *trajectory*), anything
    unreadable is started afresh.  Returns the written document.
    """
    document: dict[str, Any] = {
        "benchmark": benchmark,
        "schema": SCHEMA_VERSION,
        "runs": [],
    }
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if (isinstance(existing, dict)
                and existing.get("benchmark") == benchmark
                and isinstance(existing.get("runs"), list)):
            document["runs"] = existing["runs"]
    except (OSError, ValueError):
        pass
    document["runs"].append({**_meta(), **record})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document
