"""Hierarchical cycle-attribution spans.

A :class:`Tracer` maintains a tree of :class:`SpanNode` objects.  Code
under measurement opens spans::

    with tracer.span("group_action"):
        with tracer.span("isogeny", degree=3):
            ...

and the low layers attribute *simulated cycles* to whatever span is
innermost when a kernel retires (:meth:`Tracer.add_cycles`, called by
:class:`~repro.kernels.runner.KernelRunner`).  The result of a protocol
run is therefore a cycle-attribution tree with the same additive
structure as the paper's Table 4: every simulated cycle lands in
exactly one node's ``self_cycles``, so subtree totals roll up to the
run's grand total without double counting.

Repeated spans aggregate: entering ``span("isogeny", degree=3)`` twice
under the same parent accumulates into one node with ``count == 2``
(keeping the tree Table-4-sized instead of trace-sized).  Wall-clock
time is recorded per node as *inclusive* seconds (``wall_s``); cycles
are recorded *exclusive* (``self_cycles``) with the inclusive total
available as :attr:`SpanNode.total_cycles`.

The disabled fast path matters: with tracing off, :func:`Tracer.span`
returns a shared no-op context manager and :meth:`add_cycles` is a
single attribute test, so instrumented hot paths (one call per kernel
run) keep the trace-replay engine's speed.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Iterator

from repro.telemetry.metrics import MUTATION_LOCK, LabelKey, _label_key

#: The active trace context (see :mod:`repro.telemetry.tracing`), or
#: ``None``.  A :class:`~contextvars.ContextVar` rather than a
#: thread-local so concurrent asyncio tasks on one event-loop thread
#: each see their own request; worker threads inherit it only through
#: an explicit ``tracing.activate`` (``run_in_executor`` does not copy
#: contexts).
ACTIVE_TRACE: ContextVar[object | None] = ContextVar(
    "repro_active_trace", default=None)


class SpanNode:
    """One node of the aggregated span tree."""

    __slots__ = ("name", "labels", "count", "self_cycles", "wall_s",
                 "start_epoch", "children")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.self_cycles = 0
        self.wall_s = 0.0  # inclusive (children included)
        # wall-clock anchor: epoch seconds of the *first* entry, so
        # exported traces from different processes/hosts are alignable
        self.start_epoch: float | None = None
        self.children: dict[tuple[str, LabelKey], SpanNode] = {}

    # -- derived views -------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Inclusive cycles: this node plus every descendant."""
        return self.self_cycles + sum(
            child.total_cycles for child in self.children.values()
        )

    @property
    def label(self) -> str:
        """Display name, e.g. ``isogeny[degree=3]``."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}[{inner}]"

    def child(self, name: str, labels: LabelKey = ()) -> "SpanNode":
        """Get-or-create the child for ``(name, labels)``."""
        key = (name, labels)
        node = self.children.get(key)
        if node is None:
            node = self.children[key] = SpanNode(name, labels)
        return node

    def find(self, name: str, **labels: object) -> "SpanNode | None":
        """First descendant (pre-order) matching *name* and *labels*."""
        want = _label_key(labels) if labels else None
        for node in self.walk():
            if node.name == name and (want is None
                                      or node.labels == want):
                return node
        return None

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of this subtree (self first)."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanNode):
            return NotImplemented
        return (self.name == other.name
                and self.labels == other.labels
                and self.count == other.count
                and self.self_cycles == other.self_cycles
                and self.wall_s == other.wall_s
                and self.start_epoch == other.start_epoch
                and self.children == other.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.label}, count={self.count}, "
                f"self_cycles={self.self_cycles}, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing one node onto the tracer stack."""

    __slots__ = ("_tracer", "_node", "_start")

    def __init__(self, tracer: "Tracer", node: SpanNode) -> None:
        self._tracer = tracer
        self._node = node

    def __enter__(self) -> SpanNode:
        node = self._node
        if node.start_epoch is None:
            node.start_epoch = time.time()
        self._tracer._stack.append(node)
        self._start = time.perf_counter()
        return self._node

    def __exit__(self, *exc_info: object) -> bool:
        node = self._node
        elapsed = time.perf_counter() - self._start
        with MUTATION_LOCK:
            node.wall_s += elapsed
            node.count += 1
        stack = self._tracer._stack
        # tolerate exception-driven unwinding out of nested spans
        while stack and stack.pop() is not node:
            pass
        return False


class _AdoptedSpan:
    """Context manager pushing an *existing* node onto this thread's
    stack without touching its wall/count accounting.

    Used by :func:`repro.telemetry.tracing.activate` to continue a
    request's span subtree on an executor thread: the request node's
    wall clock belongs to the event loop that opened it, so adoption
    must not double-book it.
    """

    __slots__ = ("_tracer", "_node")

    def __init__(self, tracer: "Tracer", node: SpanNode) -> None:
        self._tracer = tracer
        self._node = node

    def __enter__(self) -> SpanNode:
        self._tracer._stack.append(self._node)
        return self._node

    def __exit__(self, *exc_info: object) -> bool:
        stack = self._tracer._stack
        while len(stack) > 1 and stack.pop() is not self._node:
            pass
        return False


class Tracer:
    """Span-tree recorder with a disabled no-op fast path.

    The process-global instance lives in :mod:`repro.telemetry`
    (``TRACER``); private instances are plain objects for tests and
    embedders.  ``enabled`` is a public attribute: instrumented code
    may read it directly to guard bigger recording blocks.

    The span stack is **per thread** (each stack rooted at the shared
    ``root``), so service worker threads record concurrent sessions as
    parallel subtrees instead of corrupting one shared stack; node
    mutation (cycles, counts, child creation) is serialised on
    :data:`~repro.telemetry.metrics.MUTATION_LOCK`, keeping the
    roll-up exact under concurrency.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.root = SpanNode("root")
        self._tls = threading.local()
        # trace_id -> TraceContext / batch_id -> TraceContext indexes,
        # maintained by repro.telemetry.tracing (bounded there)
        self.traces: dict[str, object] = {}
        self.batches: dict[str, object] = {}

    @property
    def _stack(self) -> list[SpanNode]:
        """This thread's span stack (created rooted at ``root``).

        A stale stack — one rooted at a pre-:meth:`reset` root — is
        rebuilt on first access after the reset.
        """
        stack = getattr(self._tls, "stack", None)
        if stack is None or not stack or stack[0] is not self.root:
            stack = self._tls.stack = [self.root]
        return stack

    def span(self, name: str, **labels: object):
        """Open (or re-enter) the span *name* under the current span."""
        if not self.enabled:
            return _NULL_SPAN
        with MUTATION_LOCK:
            node = self._stack[-1].child(
                name, _label_key(labels) if labels else ())
        return _ActiveSpan(self, node)

    def add_cycles(self, cycles: int) -> None:
        """Attribute *cycles* to the innermost open span."""
        if self.enabled:
            with MUTATION_LOCK:
                self._stack[-1].self_cycles += cycles

    def add_kernel_cycles(self, kernel: str, engine: str,
                          cycles: int) -> None:
        """Attribute one kernel run's *cycles* to the innermost span.

        Outside a trace this is exactly :meth:`add_cycles` (the PR 2
        aggregate behaviour, so ``repro profile`` trees are unchanged).
        Under an active trace context the cycles instead land in a
        ``kernel[engine=...,kernel=...]`` child of the innermost span,
        so a request's subtree decomposes to per-kernel cycle totals
        while the conservation invariant (every cycle in exactly one
        ``self_cycles``) still holds.
        """
        if not self.enabled:
            return
        with MUTATION_LOCK:
            top = self._stack[-1]
            if ACTIVE_TRACE.get() is None:
                top.self_cycles += cycles
                return
            node = top.child(
                "kernel", (("engine", engine), ("kernel", kernel)))
            if node.start_epoch is None:
                node.start_epoch = time.time()
            node.count += 1
            node.self_cycles += cycles

    def adopt(self, node: SpanNode) -> _AdoptedSpan:
        """Continue an existing *node* as this thread's innermost span.

        Unlike :meth:`span` this neither creates a child nor books
        wall/count on exit — it only re-roots the calling thread's
        stack so nested spans and kernel cycles attach under *node*.
        """
        return _AdoptedSpan(self, node)

    def current(self) -> SpanNode:
        return self._stack[-1]

    def current_path(self) -> tuple[tuple[str, LabelKey], ...]:
        """``(name, labels)`` frames from the root's child down to the
        innermost open span (empty at the root).

        The shard planner records this per field operation so a
        sharded run can re-attribute every simulated cycle to the
        exact node the monolithic run would have booked it to (see
        :mod:`repro.shard.plan`).
        """
        return tuple((node.name, node.labels)
                     for node in self._stack[1:])

    def reset(self) -> None:
        """Drop the recorded tree (keeps the enabled flag)."""
        self.root = SpanNode("root")
        self._tls = threading.local()
        self.traces = {}
        self.batches = {}


def render_span_tree(
    root: SpanNode,
    *,
    min_percent: float = 0.0,
    show_wall: bool = True,
) -> str:
    """ASCII rendering of a span tree with cycles and percentages.

    Percentages are of the *root* total, so nested rows read like the
    paper's Table 4 (every layer as a share of the group action).
    """
    total = root.total_cycles
    lines: list[str] = []

    def fmt(node: SpanNode, prefix: str, is_last: bool,
            is_root: bool) -> None:
        cycles = node.total_cycles
        pct = (100.0 * cycles / total) if total else 0.0
        if not is_root and pct < min_percent:
            return
        connector = "" if is_root else ("`- " if is_last else "|- ")
        label = f"{prefix}{connector}{node.label}"
        line = f"{label:44s}{cycles:>14,d} cy {pct:6.1f}%"
        line += f"  x{node.count:<6d}"
        if show_wall:
            line += f" {node.wall_s:8.3f}s"
        lines.append(line)
        child_prefix = prefix if is_root else \
            prefix + ("   " if is_last else "|  ")
        children = list(node.children.values())
        for index, child in enumerate(children):
            fmt(child, child_prefix, index == len(children) - 1, False)

    # skip the synthetic root when it has exactly one top-level span
    tops = list(root.children.values())
    if len(tops) == 1 and root.self_cycles == 0:
        fmt(tops[0], "", True, True)
    else:
        fmt(root, "", True, True)
    return "\n".join(lines)
