"""Multi-precision integer (MPI) reference arithmetic substrate.

Pure-Python, limb-exact models of every algorithm the assembly kernels
implement: representations (full/reduced radix), scanning multipliers,
Karatsuba, Montgomery SPS reduction, and the two fast modulo-p
reductions of Algorithms 1 and 2.
"""

from repro.mpi.arithmetic import (
    MpiResult,
    WorkCount,
    compare,
    karatsuba_mul,
    mpi_add,
    mpi_add_delayed,
    mpi_sub,
    operand_scanning_mul,
    product_scanning_mul,
    product_scanning_sqr,
)
from repro.mpi.fastred import (
    FastReduceResult,
    fast_reduce_addition_based,
    fast_reduce_subtraction,
    fast_reduce_swap_based,
)
from repro.mpi.montgomery import MontgomeryContext, invert_mod
from repro.mpi.primality import first_odd_primes, is_prime
from repro.mpi.representation import (
    CSIDH512_FULL,
    CSIDH512_REDUCED,
    FULL_RADIX_BITS,
    REDUCED_RADIX_BITS,
    Radix,
    full_radix_for,
    reduced_radix_for,
)

__all__ = [
    "MpiResult",
    "WorkCount",
    "compare",
    "karatsuba_mul",
    "mpi_add",
    "mpi_add_delayed",
    "mpi_sub",
    "operand_scanning_mul",
    "product_scanning_mul",
    "product_scanning_sqr",
    "FastReduceResult",
    "fast_reduce_addition_based",
    "fast_reduce_subtraction",
    "fast_reduce_swap_based",
    "MontgomeryContext",
    "invert_mod",
    "first_odd_primes",
    "is_prime",
    "CSIDH512_FULL",
    "CSIDH512_REDUCED",
    "FULL_RADIX_BITS",
    "REDUCED_RADIX_BITS",
    "Radix",
    "full_radix_for",
    "reduced_radix_for",
]
