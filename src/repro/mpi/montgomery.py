"""Montgomery arithmetic reference model (Sect. 3.1 of the paper).

Montgomery multiplication maps operands into the residue ring
``Z_p`` scaled by ``R = 2^(w*l)`` so that the modular reduction becomes
word-level shifting.  The paper implements the *separated* product-
scanning form: integer product, then an SPS (separated product
scanning) Montgomery reduction, then a fast modulo-p reduction to the
canonical range — matching Table 4's row structure.

:class:`MontgomeryContext` is the reference implementation the assembly
kernels are verified against; it also exposes the per-phase quotient
digits so kernel tests can compare internal state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.mpi.arithmetic import MpiResult, WorkCount
from repro.mpi.representation import Radix


def invert_mod(value: int, modulus: int) -> int:
    """Modular inverse via extended Euclid; raises if not invertible."""
    r0, r1 = modulus, value % modulus
    s0, s1 = 0, 1
    while r1:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        s0, s1 = s1, s0 - q * s1
    if r0 != 1:
        raise ParameterError(f"{value} is not invertible mod {modulus}")
    return s0 % modulus


@dataclass(frozen=True)
class MontgomeryContext:
    """Precomputed constants for Montgomery arithmetic over *modulus*."""

    modulus: int
    radix: Radix

    def __post_init__(self) -> None:
        if self.modulus % 2 == 0 or self.modulus < 3:
            raise ParameterError("modulus must be odd and >= 3")
        if self.modulus >> self.radix.capacity_bits:
            raise ParameterError(
                "modulus does not fit the radix representation"
            )

    @property
    def r(self) -> int:
        """The Montgomery radix R = 2^(bits*limbs)."""
        return 1 << self.radix.capacity_bits

    @property
    def r_mod_p(self) -> int:
        return self.r % self.modulus

    @property
    def r2_mod_p(self) -> int:
        """R^2 mod p — the to-Montgomery conversion constant."""
        return (self.r * self.r) % self.modulus

    @property
    def n0_inv(self) -> int:
        """``p' = -p^-1 mod 2^bits`` (the per-word reduction factor)."""
        base = 1 << self.radix.bits
        return (-invert_mod(self.modulus, base)) % base

    @property
    def modulus_limbs(self) -> list[int]:
        return self.radix.to_limbs(self.modulus)

    # -- conversions -------------------------------------------------------

    def to_montgomery(self, value: int) -> int:
        """Map ``x -> x*R mod p``."""
        return (value * self.r) % self.modulus

    def from_montgomery(self, value: int) -> int:
        """Map ``x*R -> x`` (one Montgomery reduction of the bare value)."""
        return (value * invert_mod(self.r, self.modulus)) % self.modulus

    # -- reference reduction -------------------------------------------------

    def sps_reduce(self, t: list[int]) -> MpiResult:
        """Separated-product-scanning Montgomery reduction.

        Input: ``2l`` limbs of ``T < p*R``.  Output: ``l+1`` limbs of
        ``T*R^-1 mod p`` in ``[0, 2p)`` (the extra limb is the final
        carry, at most 1 for full radix).  This limb-level walk mirrors
        the generated reduction kernels column for column.
        """
        radix = self.radix
        l = radix.limbs
        if len(t) != 2 * l:
            raise ParameterError(
                f"reduction input must have {2 * l} limbs, got {len(t)}"
            )
        p = self.modulus_limbs
        n0 = self.n0_inv
        work = WorkCount()

        q: list[int] = []
        acc = 0
        for i in range(l):
            acc += t[i]
            work.word_adds += 1
            for j in range(i):
                acc += q[j] * p[i - j]
                work.macs += 1
            qi = ((acc & radix.mask) * n0) & radix.mask
            q.append(qi)
            acc += qi * p[0]
            work.macs += 1
            if acc & radix.mask:
                raise ParameterError("reduction invariant violated")
            acc >>= radix.bits
            work.word_shifts += 1

        out: list[int] = []
        for i in range(l, 2 * l):
            acc += t[i]
            work.word_adds += 1
            for j in range(i - l + 1, l):
                acc += q[j] * p[i - j]
                work.macs += 1
            out.append(acc & radix.mask)
            acc >>= radix.bits
            work.word_shifts += 1
        out.append(acc)
        return MpiResult(out, work)

    def montgomery_multiply(self, a: int, b: int) -> int:
        """Full reference: ``a*b*R^-1 mod p`` for a, b in ``[0, p)``."""
        if not (0 <= a < self.modulus and 0 <= b < self.modulus):
            raise ParameterError("operands must be reduced mod p")
        from repro.mpi.arithmetic import product_scanning_mul

        radix = self.radix
        t = product_scanning_mul(
            radix, radix.to_limbs(a), radix.to_limbs(b)
        )
        reduced = self.sps_reduce(t.limbs)
        value = radix.from_limbs(reduced.limbs)
        if value >= self.modulus:
            value -= self.modulus
        return value

    def verify_against_plain(self, a: int, b: int) -> bool:
        """Cross-check the limb-level path against plain modular math."""
        expected = (a * b * invert_mod(self.r, self.modulus)) % self.modulus
        return self.montgomery_multiply(a, b) == expected
