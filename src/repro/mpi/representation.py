"""Multi-precision integer representations: full-radix and reduced-radix.

The paper compares two ways of splitting an *n*-bit integer across
machine words (Sect. 1):

* **full-radix** — ``w = 64`` bits per digit, ``l = ceil(n/64)`` digits;
  for CSIDH-512 (511-bit prime): 8 digits;
* **reduced-radix** — ``w = 57`` bits per limb (radix 2^57), 9 limbs;
  the slack bits absorb delayed carries.

A :class:`Radix` bundles the limb width and count and converts between
Python integers and limb vectors.  Reduced-radix vectors may be
*non-canonical* (limbs exceeding ``2^57``) while carries are delayed;
:meth:`Radix.canonicalize` performs the deferred propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

FULL_RADIX_BITS = 64
REDUCED_RADIX_BITS = 57


@dataclass(frozen=True)
class Radix:
    """A limb representation: *bits* per limb, *limbs* per operand."""

    bits: int
    limbs: int
    name: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ParameterError(f"limb width {self.bits} not in [1, 64]")
        if self.limbs < 1:
            raise ParameterError(f"limb count {self.limbs} must be >= 1")

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def capacity_bits(self) -> int:
        """Total bits representable canonically."""
        return self.bits * self.limbs

    @property
    def is_full(self) -> bool:
        return self.bits == FULL_RADIX_BITS

    def to_limbs(self, value: int, *, limbs: int | None = None) -> list[int]:
        """Split non-negative *value* into canonical limbs, little-endian."""
        if value < 0:
            raise ParameterError("cannot represent a negative integer")
        count = self.limbs if limbs is None else limbs
        if value >> (self.bits * count):
            raise ParameterError(
                f"{value.bit_length()}-bit value exceeds "
                f"{count} x {self.bits}-bit limbs"
            )
        out = []
        for _ in range(count):
            out.append(value & self.mask)
            value >>= self.bits
        return out

    def from_limbs(self, limbs: list[int]) -> int:
        """Recombine limbs (canonical or not) into a Python integer.

        Limbs are weighted by ``2^(bits*i)``; oversized or negative limbs
        are folded in arithmetically, so delayed-carry vectors evaluate
        to the value they denote.
        """
        total = 0
        for index, limb in enumerate(limbs):
            total += limb << (self.bits * index)
        return total

    def is_canonical(self, limbs: list[int]) -> bool:
        """True if every limb lies in ``[0, 2^bits)``."""
        return all(0 <= limb <= self.mask for limb in limbs)

    def canonicalize(self, limbs: list[int]) -> list[int]:
        """Propagate delayed carries; value must be non-negative and fit."""
        value = self.from_limbs(limbs)
        return self.to_limbs(value, limbs=len(limbs))

    def random(self, rng, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` from the given RNG."""
        return rng.randrange(bound)


def full_radix_for(bit_length: int) -> Radix:
    """Full-radix representation covering *bit_length* bits."""
    limbs = -(-bit_length // FULL_RADIX_BITS)
    return Radix(FULL_RADIX_BITS, limbs, name=f"full-{limbs}x64")


def reduced_radix_for(
    bit_length: int, limb_bits: int = REDUCED_RADIX_BITS
) -> Radix:
    """Reduced-radix representation covering *bit_length* bits."""
    limbs = -(-bit_length // limb_bits)
    return Radix(limb_bits, limbs, name=f"reduced-{limbs}x{limb_bits}")


#: CSIDH-512 representations used throughout the paper (Sect. 3).
CSIDH512_FULL = full_radix_for(512)          # 8 x 64-bit digits
CSIDH512_REDUCED = reduced_radix_for(513)    # 9 x 57-bit limbs
