"""Primality testing used to validate the CSIDH parameters.

A deterministic Miller-Rabin for 64-bit inputs (fixed witness set) and a
seeded probabilistic Miller-Rabin for multi-precision inputs — enough to
verify the CSIDH-512 prime ``p = 4 * l_1 ... l_74 - 1`` and its factor
list at import-test time without any external dependency.
"""

from __future__ import annotations

import random

# Witnesses proving primality for every n < 3.3 * 10^24 (Sorenson-Webster).
_SMALL_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One MR round; True means 'probably prime' for witness *a*."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, *, rounds: int = 32, seed: int = 0xC51D) -> bool:
    """Miller-Rabin primality test.

    Deterministic for ``n < 3.3e24`` via the fixed witness set;
    probabilistic (error < 4^-rounds) above, with witnesses drawn from a
    seeded RNG so results are reproducible.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _SMALL_WITNESSES
    else:
        rng = random.Random(seed ^ (n & 0xFFFFFFFF))
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return all(
        _miller_rabin_round(n, a % n, d, r)
        for a in witnesses
        if a % n not in (0, 1, n - 1)
    )


def first_odd_primes(count: int) -> list[int]:
    """The first *count* odd primes (3, 5, 7, ...)."""
    primes: list[int] = []
    candidate = 3
    while len(primes) < count:
        if is_prime(candidate):
            primes.append(candidate)
        candidate += 2
    return primes
