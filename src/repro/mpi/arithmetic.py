"""Reference MPI algorithms: scanning multiplications, Karatsuba, add/sub.

These limb-level algorithms mirror exactly what the generated assembly
kernels compute, so tests can compare intermediate structure (e.g. MAC
counts per column) and not just final values.  All functions operate on
little-endian limb vectors under a :class:`~repro.mpi.representation.Radix`
and also report the work performed, which feeds the E4 ablation
(product scanning vs. Karatsuba, Sect. 3.1/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.mpi.representation import Radix


@dataclass
class WorkCount:
    """Primitive-operation tally of one MPI routine."""

    macs: int = 0          # w x w -> 2w multiply-accumulate operations
    word_adds: int = 0     # single-word additions/subtractions
    word_shifts: int = 0   # single-word shift/mask operations

    def __add__(self, other: "WorkCount") -> "WorkCount":
        return WorkCount(
            self.macs + other.macs,
            self.word_adds + other.word_adds,
            self.word_shifts + other.word_shifts,
        )


@dataclass
class MpiResult:
    """Limb-vector result of a reference routine plus its work count."""

    limbs: list[int]
    work: WorkCount = field(default_factory=WorkCount)


def _check_same_length(a: list[int], b: list[int]) -> None:
    if len(a) != len(b):
        raise ParameterError(
            f"operand length mismatch: {len(a)} vs {len(b)} limbs"
        )


# ---------------------------------------------------------------------------
# Multiplication
# ---------------------------------------------------------------------------

def product_scanning_mul(
    radix: Radix, a: list[int], b: list[int]
) -> MpiResult:
    """Column-wise (product-scanning) multiplication.

    Computes the full ``2l``-limb product; each output limb is finalised
    once, exactly as the unrolled kernels do, with the accumulator
    playing the role of the paper's ``(e || h || l)`` registers.
    """
    _check_same_length(a, b)
    l = len(a)
    work = WorkCount()
    out = [0] * (2 * l)
    acc = 0
    for k in range(2 * l - 1):
        lo = max(0, k - l + 1)
        hi = min(k, l - 1)
        for i in range(lo, hi + 1):
            acc += a[i] * b[k - i]
            work.macs += 1
        out[k] = acc & radix.mask
        acc >>= radix.bits
        work.word_shifts += 1
    out[2 * l - 1] = acc
    return MpiResult(out, work)


def operand_scanning_mul(
    radix: Radix, a: list[int], b: list[int]
) -> MpiResult:
    """Row-wise (operand-scanning) multiplication."""
    _check_same_length(a, b)
    l = len(a)
    work = WorkCount()
    out = [0] * (2 * l)
    for i in range(l):
        carry = 0
        for j in range(l):
            total = out[i + j] + a[i] * b[j] + carry
            work.macs += 1
            work.word_adds += 1
            out[i + j] = total & radix.mask
            carry = total >> radix.bits
        out[i + l] = carry
    return MpiResult(out, work)


def karatsuba_mul(
    radix: Radix, a: list[int], b: list[int], *, threshold: int = 2
) -> MpiResult:
    """Subtractive Karatsuba multiplication over limb vectors.

    Uses the subtractive middle term ``|a_lo - a_hi| * |b_hi - b_lo|``
    so operands never grow a limb; recursion stops at *threshold* limbs
    and falls back to product scanning.  The work counter includes the
    split/recombination add/sub passes, which is what makes Karatsuba
    lose to product scanning at 8 limbs on RV64GC (the paper's E4
    observation: the extra carried additions are expensive without a
    carry flag).
    """
    _check_same_length(a, b)
    l = len(a)
    if l <= threshold:
        return product_scanning_mul(radix, a, b)

    half = l // 2
    size = l - half  # high half may be one limb longer for odd l

    def _pad(v: list[int]) -> list[int]:
        return v + [0] * (size - len(v))

    a_lo, a_hi = _pad(a[:half]), a[half:]
    b_lo, b_hi = _pad(b[:half]), b[half:]

    low = karatsuba_mul(radix, a_lo, b_lo, threshold=threshold)
    high = karatsuba_mul(radix, a_hi, b_hi, threshold=threshold)
    work = low.work + high.work

    # |a_lo - a_hi| and |b_hi - b_lo| stay within `size` limbs.
    da = radix.from_limbs(a_lo) - radix.from_limbs(a_hi)
    db = radix.from_limbs(b_hi) - radix.from_limbs(b_lo)
    work.word_adds += 4 * size  # two MPI subtractions with borrows
    diff_a = radix.to_limbs(abs(da), limbs=size)
    diff_b = radix.to_limbs(abs(db), limbs=size)
    middle = karatsuba_mul(radix, diff_a, diff_b, threshold=threshold)
    work = work + middle.work

    sign = 1 if (da >= 0) == (db >= 0) else -1
    low_value = radix.from_limbs(low.limbs)
    high_value = radix.from_limbs(high.limbs)
    middle_value = low_value + high_value + sign * radix.from_limbs(
        middle.limbs
    )
    value = (
        low_value
        + (middle_value << (radix.bits * half))
        + (high_value << (radix.bits * 2 * half))
    )
    work.word_adds += 6 * size  # recombination add/sub passes w/ carries
    out = radix.to_limbs(value, limbs=2 * l)
    return MpiResult(out, work)


def product_scanning_sqr(radix: Radix, a: list[int]) -> MpiResult:
    """Column-wise squaring using the cross-term doubling trick.

    Each off-diagonal product is computed once and doubled, so an
    ``l``-limb squaring needs ``l*(l+1)/2`` MACs instead of ``l^2``
    (the reason Table 4 squaring is cheaper than multiplication).
    """
    l = len(a)
    work = WorkCount()
    out = [0] * (2 * l)
    acc = 0
    for k in range(2 * l - 1):
        lo = max(0, k - l + 1)
        hi = min(k, l - 1)
        for i in range(lo, hi + 1):
            j = k - i
            if i > j:
                break
            term = a[i] * a[j]
            if i != j:
                term <<= 1
                work.word_shifts += 1
            acc += term
            work.macs += 1
        out[k] = acc & radix.mask
        acc >>= radix.bits
        work.word_shifts += 1
    out[2 * l - 1] = acc
    return MpiResult(out, work)


# ---------------------------------------------------------------------------
# Addition / subtraction
# ---------------------------------------------------------------------------

def mpi_add(radix: Radix, a: list[int], b: list[int]) -> MpiResult:
    """Limb-wise addition with full carry propagation; returns l+1 limbs."""
    _check_same_length(a, b)
    work = WorkCount()
    out = []
    carry = 0
    for x, y in zip(a, b):
        total = x + y + carry
        out.append(total & radix.mask)
        carry = total >> radix.bits
        work.word_adds += 2
    out.append(carry)
    return MpiResult(out, work)


def mpi_add_delayed(radix: Radix, a: list[int], b: list[int]) -> MpiResult:
    """Reduced-radix addition with *delayed* carries (limb-wise only).

    Valid only when each limb has headroom (bits < 64); this is the
    cheap Fp-addition path the paper credits to reduced radix.
    """
    _check_same_length(a, b)
    if radix.bits >= 64:
        raise ParameterError("delayed-carry addition needs limb headroom")
    work = WorkCount(word_adds=len(a))
    return MpiResult([x + y for x, y in zip(a, b)], work)


def mpi_sub(radix: Radix, a: list[int], b: list[int]) -> MpiResult:
    """Limb-wise subtraction; final limb of the output is the borrow
    indicator (0 if a >= b, else -1 folded into the top)."""
    _check_same_length(a, b)
    work = WorkCount()
    out = []
    borrow = 0
    for x, y in zip(a, b):
        total = x - y - borrow
        out.append(total & radix.mask)
        borrow = 1 if total < 0 else 0
        work.word_adds += 2
    out.append(-borrow)
    return MpiResult(out, work)


def compare(radix: Radix, a: list[int], b: list[int]) -> int:
    """Three-way comparison of two limb vectors: -1, 0, or +1."""
    va, vb = radix.from_limbs(a), radix.from_limbs(b)
    return (va > vb) - (va < vb)
