"""Fast modulo-p reduction: Algorithms 1 and 2 of the paper.

Both reduce an operand ``A`` in ``[0, 2p)`` to ``[0, p)`` in constant
time.  The first step is the MPI subtraction ``T = A - P``; the second
step selects ``A`` or ``T`` without branching:

* **Algorithm 1 (addition-based)** — mask the modulus with the borrow
  and add it back: ``R = T + (M & P)``;
* **Algorithm 2 (swap-based)** — mask the XOR difference and swap:
  ``R = T ^ (M & (A ^ T))``.

On RISC-V the addition in Algorithm 1's step 4 needs a full carry chain
(no carry flag), which is why the paper picks the swap-based variant for
full radix.  The :class:`WorkCount` tallies returned here expose that
difference at the word level; the cycle-level difference is measured on
the simulator (E5 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.mpi.arithmetic import WorkCount
from repro.mpi.representation import Radix


@dataclass
class FastReduceResult:
    """Result limbs, value, and word-level work of one fast reduction."""

    limbs: list[int]
    value: int
    work: WorkCount


def _subtract_with_borrow(
    radix: Radix, a: list[int], p: list[int], work: WorkCount
) -> tuple[list[int], int]:
    """Return (T = A - P mod 2^(w*l), borrow flag 0/1)."""
    t = []
    borrow = 0
    for x, y in zip(a, p):
        d = x - y - borrow
        t.append(d & radix.mask)
        borrow = 1 if d < 0 else 0
        work.word_adds += 2
    return t, borrow


def fast_reduce_addition_based(
    radix: Radix, a: list[int], p: list[int]
) -> FastReduceResult:
    """Algorithm 1: ``R = (A - P) + (mask(A < P) & P)``."""
    _validate(radix, a, p)
    work = WorkCount()
    t, borrow = _subtract_with_borrow(radix, a, p, work)
    mask = radix.mask if borrow else 0   # M = 0 - SLTU(A, P)
    work.word_adds += 1
    out = []
    carry = 0
    for ti, pi in zip(t, p):
        total = ti + (mask & pi) + carry  # the costly carried addition
        out.append(total & radix.mask)
        carry = total >> radix.bits
        work.word_adds += 2
        work.word_shifts += 1
    return _finish(radix, out, p, work)


def fast_reduce_swap_based(
    radix: Radix, a: list[int], p: list[int]
) -> FastReduceResult:
    """Algorithm 2: ``R = T ^ (mask(A < P) & (A ^ T))`` — carry-free."""
    _validate(radix, a, p)
    work = WorkCount()
    t, borrow = _subtract_with_borrow(radix, a, p, work)
    mask = radix.mask if borrow else 0
    work.word_adds += 1
    out = []
    for ai, ti in zip(a, t):
        out.append(ti ^ (mask & (ai ^ ti)))  # word-parallel select
        work.word_shifts += 2
    return _finish(radix, out, p, work)


def fast_reduce_subtraction(
    radix: Radix, a: list[int], b: list[int], p: list[int]
) -> FastReduceResult:
    """Fp-subtraction via the Algorithm 1 variant (Sect. 3.1):
    ``T = A - B``; if it borrows, add ``P`` back."""
    if len(a) != len(b):
        raise ParameterError("operand length mismatch")
    work = WorkCount()
    t, borrow = _subtract_with_borrow(radix, a, b, work)
    mask = radix.mask if borrow else 0
    work.word_adds += 1
    out = []
    carry = 0
    for ti, pi in zip(t, p):
        total = ti + (mask & pi) + carry
        out.append(total & radix.mask)
        carry = total >> radix.bits
        work.word_adds += 2
    return _finish_sub(radix, out, work)


def _validate(radix: Radix, a: list[int], p: list[int]) -> None:
    if len(a) != len(p):
        raise ParameterError(
            f"operand/modulus length mismatch: {len(a)} vs {len(p)}"
        )
    if not radix.is_canonical(a):
        raise ParameterError("fast reduction needs a canonical operand")
    value = radix.from_limbs(a)
    modulus = radix.from_limbs(p)
    if value >= 2 * modulus:
        raise ParameterError(
            "fast reduction requires A < 2p "
            f"(got {value.bit_length()}-bit A)"
        )


def _finish(
    radix: Radix, out: list[int], p: list[int], work: WorkCount
) -> FastReduceResult:
    value = radix.from_limbs(out)
    modulus = radix.from_limbs(p)
    if value >= modulus:
        raise ParameterError("fast reduction postcondition violated")
    return FastReduceResult(out, value, work)


def _finish_sub(
    radix: Radix, out: list[int], work: WorkCount
) -> FastReduceResult:
    return FastReduceResult(out, radix.from_limbs(out), work)
