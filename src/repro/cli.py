"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table3`` — regenerate the hardware-cost table;
* ``table4`` — regenerate the cycle table (runs the simulator);
* ``action`` — compose the CSIDH-512 group-action cycles/speedups;
* ``exchange`` — run a key exchange (mini params by default);
* ``report`` — full markdown reproduction report;
* ``kernel`` — dump one generated kernel's assembly;
* ``listings`` — print the MAC listings with instruction counts.
"""

from __future__ import annotations

import argparse
import sys

from repro.csidh.parameters import csidh_512, csidh_mini, csidh_toy

_PARAM_SETS = {
    "csidh-512": csidh_512,
    "mini": csidh_mini,
    "toy": csidh_toy,
}


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.eval.table3 import overhead_summary, render_table3

    print(render_table3(include_paper=not args.no_paper))
    for key, pct in overhead_summary().items():
        print(f"{key:8s} LUTs {pct['luts']:+5.1f}%  "
              f"Regs {pct['regs']:+5.1f}%  CMOS {pct['gates']:+5.1f}%")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.eval.table4 import measure_table4, render_table4

    params = _PARAM_SETS[args.params]()
    table = measure_table4(params.p)
    print(render_table4(table, include_paper=not args.no_paper))
    return 0


def _cmd_action(args: argparse.Namespace) -> int:
    from repro.eval.groupaction import evaluate_group_action
    from repro.eval.table4 import measure_table4

    params = _PARAM_SETS[args.params]()
    table = measure_table4(csidh_512().p)
    result = evaluate_group_action(table, params=params,
                                   keys=args.keys, seed=args.seed)
    print("\n".join(result.summary_lines(
        include_paper=not args.no_paper)))
    return 0


def _cmd_exchange(args: argparse.Namespace) -> int:
    from repro.csidh.protocol import key_exchange_demo

    params = _PARAM_SETS[args.params]()
    secret_a, secret_b = key_exchange_demo(params, seed=args.seed)
    agreed = secret_a == secret_b
    print(f"{params.name}: shared secret "
          f"{'AGREED' if agreed else 'MISMATCH'}: {secret_a:#x}")
    return 0 if agreed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import generate_report

    report = generate_report(keys=args.keys, seed=args.seed)
    text = report.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from repro.kernels.registry import cached_kernels

    kernels = cached_kernels(_PARAM_SETS[args.params]().p)
    if args.name not in kernels:
        print(f"unknown kernel {args.name!r}; available:",
              file=sys.stderr)
        for name in sorted(kernels):
            print(f"  {name}", file=sys.stderr)
        return 1
    kernel = kernels[args.name]
    print(kernel.source)
    total = sum(kernel.static_counts.values())
    print(f"# {total} static instructions "
          f"({dict(kernel.static_counts.most_common(6))} ...)")
    return 0


def _cmd_listings(args: argparse.Namespace) -> int:
    from repro.core.macros import (
        carry_propagate_isa,
        carry_propagate_ise,
        mac_full_radix_isa,
        mac_full_radix_ise,
        mac_reduced_radix_isa,
        mac_reduced_radix_ise,
    )

    sections = [
        ("Listing 1 - ISA-only full-radix MAC",
         mac_full_radix_isa("e", "h", "l", "a", "b", "y", "z")),
        ("Listing 2 - ISA-only reduced-radix MAC",
         mac_reduced_radix_isa("h", "l", "a", "b", "y", "z")),
        ("Listing 3 - ISE-supported full-radix MAC",
         mac_full_radix_ise("e", "h", "l", "a", "b", "z")),
        ("Listing 4 - ISE-supported reduced-radix MAC",
         mac_reduced_radix_ise("h", "l", "a", "b")),
        ("carry propagation, ISA-only",
         carry_propagate_isa("x", "y", "m", "z")),
        ("carry propagation, with sraiadd",
         carry_propagate_ise("x", "y", "m")),
    ]
    for title, lines in sections:
        print(f"{title} ({len(lines)} instructions)")
        for line in lines:
            print(f"    {line}")
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC'24 RISC-V MPI-ISE / CSIDH-512 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, *, params: bool = True) -> None:
        if params:
            p.add_argument("--params", choices=sorted(_PARAM_SETS),
                           default="csidh-512")
        p.add_argument("--no-paper", action="store_true",
                       help="omit the paper's reference numbers")
        p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("table3", help="hardware cost table")
    p.add_argument("--no-paper", action="store_true")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("table4", help="operation cycle table")
    common(p)
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("action", help="group-action cycles/speedups")
    common(p)
    p.add_argument("--keys", type=int, default=2)
    p.set_defaults(func=_cmd_action)

    p = sub.add_parser("exchange", help="run a key exchange")
    common(p)
    p.set_defaults(func=_cmd_exchange, params="mini")

    p = sub.add_parser("report", help="full markdown report")
    p.add_argument("--output", "-o", default=None)
    p.add_argument("--keys", type=int, default=2)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("kernel", help="dump a generated kernel")
    p.add_argument("name", help="e.g. fp_mul.reduced.ise")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="csidh-512")
    p.set_defaults(func=_cmd_kernel)

    p = sub.add_parser("listings", help="print Listings 1-4")
    p.set_defaults(func=_cmd_listings)

    p = sub.add_parser("validate",
                       help="validate every kernel against its oracle")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--constant-time", action="store_true",
                   help="also verify constant-time traces")
    p.set_defaults(func=_cmd_validate)

    return parser


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.kernels.validation import validate_kernels

    params = _PARAM_SETS[args.params]()
    report = validate_kernels(
        params.p, trials=args.trials,
        check_constant_time=args.constant_time)
    print(report.summary())
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
