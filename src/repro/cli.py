"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table3`` — regenerate the hardware-cost table;
* ``table4`` — regenerate the cycle table (runs the simulator);
* ``action`` — compose the CSIDH-512 group-action cycles/speedups;
* ``exchange`` — run a key exchange (mini params by default);
* ``report`` — full markdown reproduction report;
* ``kernel`` — dump one generated kernel's assembly;
* ``listings`` — print the MAC listings with instruction counts;
* ``profile`` — run an instrumented group action and print the
  cycle-attribution span tree (see ``docs/OBSERVABILITY.md``);
* ``faults`` — run a seeded fault-injection campaign against the
  hardened execution layer and print/export the detection-coverage
  report (see ``docs/ROBUSTNESS.md``); exits 1 if any fault escaped;
* ``bench`` — time one simulated group action per execution engine
  (interpreter / replay / jit / aot) plus the batched field API,
  verify the outputs agree, and optionally append the comparison to
  the ``BENCH_protocol.json`` perf trajectory; with the aot engine it
  also measures cold-vs-warm start against the artifact cache;
* ``cache`` — inspect or clear the persistent on-disk aot artifact
  cache (``stats`` / ``clear`` / ``dir``; see ``docs/SIMULATOR.md``);
* ``serve`` / ``load`` — the multi-tenant TCP service and its load
  harness (``load`` traces by default when it owns the service, and
  can drive a live server with ``--connect``);
* ``trace`` — record a traced load workload (or attach to a live
  server via ``--connect``) and export the span forest as Chrome
  ``trace_event`` JSON and/or collapsed-stack flamegraph text;
* ``shard`` — sharded multi-process execution: ``plan`` / ``run`` /
  ``resume`` / ``merge`` a group action decomposed across worker
  processes — the path that makes the full CSIDH-512 dynamic run
  feasible (see ``docs/SHARDING.md``); ``profile`` and ``faults``
  accept ``--shards N`` as a shortcut onto the same machinery;
* ``top`` — live dashboard over a running service's ``stats`` op;
* ``watchdog`` — perf-regression gate over ``BENCH_*.json``
  trajectories (exit 1 on regression, stable code ``regression``).

``action``, ``table4`` and ``report`` additionally accept
``--telemetry PATH`` to export spans and metrics (JSON, or JSONL when
the path ends in ``.jsonl``).

Any :class:`~repro.errors.ReproError` surfaces as a one-line
``error [<code>]: ...`` message on stderr and exit status 2 — never a
traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.csidh.parameters import csidh_512, csidh_mini, csidh_toy
from repro.errors import KernelError, ParameterError, ReproError

_PARAM_SETS = {
    "csidh-512": csidh_512,
    "mini": csidh_mini,
    "toy": csidh_toy,
}


def _export_telemetry(path: str, root, registry, extra=None) -> None:
    """Write spans+metrics to *path* (JSONL if so named, else JSON)."""
    from repro.telemetry import export

    if path.endswith(".jsonl"):
        export.write_jsonl(path, root, registry)
    else:
        export.write_json(path, root, registry, extra=extra)
    print(f"telemetry written to {path}")


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.eval.table3 import overhead_summary, render_table3

    print(render_table3(include_paper=not args.no_paper))
    for key, pct in overhead_summary().items():
        print(f"{key:8s} LUTs {pct['luts']:+5.1f}%  "
              f"Regs {pct['regs']:+5.1f}%  CMOS {pct['gates']:+5.1f}%")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.eval.table4 import measure_table4, render_table4

    params = _PARAM_SETS[args.params]()
    if args.telemetry:
        from repro import telemetry

        with telemetry.capture() as cap:
            table = measure_table4(params.p)
        print(render_table4(table, include_paper=not args.no_paper))
        _export_telemetry(args.telemetry, cap.root, cap.registry)
    else:
        table = measure_table4(params.p)
        print(render_table4(table, include_paper=not args.no_paper))
    return 0


def _cmd_action(args: argparse.Namespace) -> int:
    from repro.eval.groupaction import evaluate_group_action
    from repro.eval.table4 import measure_table4

    params = _PARAM_SETS[args.params]()
    table = measure_table4(csidh_512().p)
    result = evaluate_group_action(table, params=params,
                                   keys=args.keys, seed=args.seed)
    print("\n".join(result.summary_lines(
        include_paper=not args.no_paper)))
    if args.telemetry:
        # the analytic composition above models cycles; the telemetry
        # artifact *measures* them: one fully simulated group action
        # with spans across every protocol phase
        from repro.telemetry.profile import (
            profile_group_action,
            render_profile,
        )

        profile = profile_group_action(params, seed=args.seed)
        print()
        print(render_profile(profile))
        _export_telemetry(args.telemetry, profile.root,
                          profile.registry,
                          extra={"workload": profile.workload_dict()})
    return 0


def _cmd_exchange(args: argparse.Namespace) -> int:
    from repro.csidh.protocol import key_exchange_demo

    params = _PARAM_SETS[args.params]()
    secret_a, secret_b = key_exchange_demo(params, seed=args.seed)
    agreed = secret_a == secret_b
    print(f"{params.name}: shared secret "
          f"{'AGREED' if agreed else 'MISMATCH'}: {secret_a:#x}")
    return 0 if agreed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import generate_report

    if args.telemetry:
        from repro import telemetry

        with telemetry.capture() as cap:
            report = generate_report(keys=args.keys, seed=args.seed)
        _export_telemetry(args.telemetry, cap.root, cap.registry)
    else:
        report = generate_report(keys=args.keys, seed=args.seed)
    text = report.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from repro.kernels.registry import cached_kernels

    kernels = cached_kernels(_PARAM_SETS[args.params]().p)
    if args.name not in kernels:
        raise KernelError(
            f"unknown kernel {args.name!r}; available: "
            + ", ".join(sorted(kernels)))
    kernel = kernels[args.name]
    print(kernel.source)
    total = sum(kernel.static_counts.values())
    print(f"# {total} static instructions "
          f"({dict(kernel.static_counts.most_common(6))} ...)")
    return 0


def _cmd_listings(args: argparse.Namespace) -> int:
    from repro.core.macros import (
        carry_propagate_isa,
        carry_propagate_ise,
        mac_full_radix_isa,
        mac_full_radix_ise,
        mac_reduced_radix_isa,
        mac_reduced_radix_ise,
    )

    sections = [
        ("Listing 1 - ISA-only full-radix MAC",
         mac_full_radix_isa("e", "h", "l", "a", "b", "y", "z")),
        ("Listing 2 - ISA-only reduced-radix MAC",
         mac_reduced_radix_isa("h", "l", "a", "b", "y", "z")),
        ("Listing 3 - ISE-supported full-radix MAC",
         mac_full_radix_ise("e", "h", "l", "a", "b", "z")),
        ("Listing 4 - ISE-supported reduced-radix MAC",
         mac_reduced_radix_ise("h", "l", "a", "b")),
        ("carry propagation, ISA-only",
         carry_propagate_isa("x", "y", "m", "z")),
        ("carry propagation, with sraiadd",
         carry_propagate_ise("x", "y", "m")),
    ]
    for title, lines in sections:
        print(f"{title} ({len(lines)} instructions)")
        for line in lines:
            print(f"    {line}")
        print()
    return 0


def _print_plan_summary(plan) -> None:
    print(f"shard plan: {plan.params_name} seed={plan.seed} "
          f"variant={plan.variant} -> {plan.shards} shard(s) over "
          f"{plan.n_ops} field op(s) "
          f"(recorded in {plan.plan_wall_s:.2f}s, "
          f"digest {plan.stream_digest[:12]})")


def _print_merged_summary(merged, stats) -> None:
    scope = (f"{len(merged.completed)}/{merged.plan.shards} shard(s) "
             f"(partial)" if merged.partial
             else f"all {merged.plan.shards} shard(s)")
    print(f"sharded run: {scope} on {stats.workers} worker(s) in "
          f"{stats.exec_wall_s:.2f}s — {stats.steals} steal(s), "
          f"{stats.requeues} requeue(s), "
          f"{stats.worker_failures} worker failure(s)")
    print(f"merged: {merged.cycles} simulated cycle(s), "
          f"{merged.instructions} instruction(s), "
          f"coefficient {merged.coefficient:#x}")


def _profile_sharded(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.shard.merge import merge_records
    from repro.shard.plan import build_plan
    from repro.shard.scheduler import ShardExecutor, ShardRunStats
    from repro.telemetry.export import write_bench
    from repro.telemetry.spans import render_span_tree

    plan, _stream = build_plan(
        args.params, shards=args.shards, seed=args.seed,
        variant=args.variant)
    _print_plan_summary(plan)
    # executor construction pre-warms kernel/jit caches in the parent;
    # keep it outside the capture so warm-up stays out of the metrics
    executor = ShardExecutor(plan, workers=args.workers,
                             engine=args.engine)
    stats = ShardRunStats()
    with telemetry.capture(fresh=True) as cap:
        records = executor.run(stats=stats)
    merged = merge_records(plan, records, stats=stats,
                           engine=executor.engine)
    print(render_span_tree(merged.root, show_wall=False))
    _print_merged_summary(merged, stats)
    if args.output:
        _export_telemetry(args.output, merged.root, cap.registry)
    if args.bench_out:
        write_bench(args.bench_out, "shard", merged.bench_record())
        print(f"benchmark trajectory appended to {args.bench_out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry.export import write_bench
    from repro.telemetry.profile import (
        profile_group_action,
        render_profile,
    )

    if args.shards:
        return _profile_sharded(args)
    params = _PARAM_SETS[args.params]()
    result = profile_group_action(
        params, variant=args.variant, seed=args.seed,
        cross_check=args.cross_check,
    )
    print(render_profile(result, top=args.top))
    if args.output:
        _export_telemetry(args.output, result.root, result.registry,
                          extra={"workload": result.workload_dict()})
    if args.bench_out:
        write_bench(args.bench_out, "protocol",
                    result.bench_record())
        print(f"benchmark trajectory appended to {args.bench_out}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.fault import ALL_SITES, run_campaign
    from repro.fault.campaign import OUTCOMES
    from repro.telemetry.profile import MAX_SIMULATED_BITS

    if args.n < 1:
        raise ParameterError(
            f"--n must be at least 1 (got {args.n}); it is the number "
            f"of faults to inject")
    if args.check_interval < 1:
        raise ParameterError(
            f"--check-interval must be at least 1 (got "
            f"{args.check_interval})")
    if args.quiet and not args.json:
        raise ParameterError(
            "--quiet without --json would produce no output at all; "
            "add --json PATH or drop --quiet")
    params = _PARAM_SETS[args.params]()
    if params.p.bit_length() > MAX_SIMULATED_BITS and not args.shards:
        raise ParameterError(
            f"a {params.p.bit_length()}-bit campaign on the functional "
            f"simulator is infeasible in one process; use --params toy "
            f"or mini, or shard it across worker processes with "
            f"--shards N (see docs/SHARDING.md)")
    sites = (tuple(s.strip() for s in args.sites.split(","))
             if args.sites else ALL_SITES)

    if args.shards:
        from repro.shard.campaign import run_sharded_campaign

        report = run_sharded_campaign(
            params.p, seed=args.seed, n=args.n, shards=args.shards,
            workers=args.workers, variant=args.variant, sites=sites,
            check_interval=args.check_interval, engine=args.engine,
        )
    else:
        report = run_campaign(
            params.p, seed=args.seed, n=args.n, variant=args.variant,
            sites=sites, check_interval=args.check_interval,
            engine=args.engine,
        )

    if not args.quiet:
        width = max(len(site) for site in report.by_site)
        header = f"{'site':<{width}}  " + "  ".join(
            f"{outcome:>20}" for outcome in OUTCOMES)
        print(f"fault campaign: params={params.name} seed={report.seed} "
              f"n={report.n} variant={report.variant}")
        print(header)
        for site, row in sorted(report.by_site.items()):
            print(f"{site:<{width}}  " + "  ".join(
                f"{row[outcome]:>20}" for outcome in OUTCOMES))
        print(f"detected {report.detected}/{report.n}, recovery rate "
              f"{report.recovery_rate:.0%}, escaped {report.escaped}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        if not args.quiet:
            print(f"campaign report written to {args.json}")
    return 1 if report.escaped else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.chaos import ALL_KINDS, run_chaos_campaign
    from repro.chaos.campaign import OUTCOMES
    from repro.telemetry.export import write_bench

    if args.n < 1:
        raise ParameterError(
            f"--n must be at least 1 (got {args.n}); it is the number "
            f"of network faults to inject")
    if args.quiet and not args.json:
        raise ParameterError(
            "--quiet without --json would produce no output at all; "
            "add --json PATH or drop --quiet")
    params = _PARAM_SETS[args.params]()
    kinds = (tuple(k.strip() for k in args.kinds.split(","))
             if args.kinds else ALL_KINDS)
    report = run_chaos_campaign(
        params, seed=args.seed, n=args.n, kinds=kinds,
        engine=args.engine, variant=args.variant,
        timeout_s=args.timeout_s, retries=args.retries,
    )

    if not args.quiet:
        width = max(len(kind) for kind in report.by_kind)
        header = f"{'kind':<{width}}  " + "  ".join(
            f"{outcome:>18}" for outcome in OUTCOMES)
        print(f"chaos campaign: params={params.name} seed={report.seed} "
              f"n={report.n} timeout={report.timeout_s:g}s "
              f"retries={report.retries}")
        print(header)
        for kind, row in sorted(report.by_kind.items()):
            print(f"{kind:<{width}}  " + "  ".join(
                f"{row[outcome]:>18}" for outcome in OUTCOMES))
        print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        if not args.quiet:
            print(f"chaos report written to {args.json}")
    if args.bench_out:
        write_bench(args.bench_out, "protocol", report.to_record())
        if not args.quiet:
            print(f"benchmark trajectory appended to {args.bench_out}")
    # A hang is as disqualifying as an escape: resilience means every
    # injected fault ends in recovery or a clean typed error.
    return 1 if (report.escaped or report.hung) else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import random
    import time

    from repro.csidh.group_action import group_action
    from repro.field.simulated import SimulatedFieldContext
    from repro.rv64.machine import ENGINES
    from repro.telemetry.export import write_bench
    from repro.telemetry.profile import MAX_SIMULATED_BITS

    if args.rounds < 1:
        raise ParameterError(
            f"--rounds must be at least 1 (got {args.rounds})")
    if args.batch < 0:
        raise ParameterError(
            f"--batch must be non-negative (got {args.batch})")
    params = _PARAM_SETS[args.params]()
    if params.p.bit_length() > MAX_SIMULATED_BITS:
        raise ParameterError(
            f"a {params.p.bit_length()}-bit benchmark on the "
            f"functional simulator is infeasible in one process; use "
            f"--params toy or mini, or time the sharded path with "
            f"`repro shard run` (see docs/SHARDING.md)")
    engines = (ENGINES if args.engine == "all"
               else (args.engine,))
    p = params.p
    exponent_rng = random.Random(args.seed)
    exponents = tuple(exponent_rng.choice((-1, 0, 1)) or 1
                      for _ in params.ells)

    aot_start = None
    if "aot" in engines:
        # cold-vs-warm start: build the aot contexts twice from an
        # empty runner pool, reading the artifact-cache counters each
        # time.  Within one process the second phase always binds the
        # artifacts the first just wrote; across *invocations* sharing
        # REPRO_AOT_CACHE the first phase itself reports hits — the
        # warm-start acceptance the CI job asserts on.
        from repro import telemetry
        from repro.kernels.registry import clear_runner_pool

        aot_start = {}
        for phase in ("first", "second"):
            clear_runner_pool()
            with telemetry.capture() as cap:
                start = time.perf_counter()
                context = SimulatedFieldContext(
                    p, variant=args.variant, engine="aot")
                x = context.mul(2, 3)
                context.sqr(x)
                context.add(x, x)
                context.sub(x, 1)
                wall = time.perf_counter() - start
            counters = cap.registry.counter
            aot_start[phase] = {
                "wall_s": wall,
                "artifact_hits":
                    counters("aot_artifact_hits_total").total(),
                "artifact_misses":
                    counters("aot_artifact_misses_total").total(),
                "artifact_writes":
                    counters("aot_artifact_writes_total").total(),
                "compiles": counters("aot_compiles_total").total(),
            }
        clear_runner_pool()
        for phase, row in aot_start.items():
            print(f"aot {phase:6s} start: {row['wall_s'] * 1e3:6.1f} ms  "
                  f"(artifact hits {row['artifact_hits']}, misses "
                  f"{row['artifact_misses']}, writes "
                  f"{row['artifact_writes']})")

    results: dict[str, dict] = {}
    outputs: dict[str, int] = {}
    for engine in engines:
        context = SimulatedFieldContext(p, variant=args.variant,
                                        engine=engine)
        best = float("inf")
        for _ in range(args.rounds):
            start = time.perf_counter()
            out = group_action(params, context, 0, exponents,
                               random.Random(args.seed))
            best = min(best, time.perf_counter() - start)
        outputs[engine] = out
        results[engine] = {"wall_s": best, "output": out}
    if len(set(outputs.values())) > 1:
        raise KernelError(
            f"engines disagree on the group-action output: {outputs}")

    baseline = results[engines[0]]["wall_s"]
    for engine in engines:
        row = results[engine]
        row["speedup"] = baseline / row["wall_s"]
        print(f"{engine:12s} {row['wall_s'] * 1e3:8.1f} ms   "
              f"{row['speedup']:5.2f}x vs {engines[0]}")

    batch_report = None
    if args.batch:
        operand_rng = random.Random(args.seed + 1)
        pairs = [(operand_rng.randrange(p), operand_rng.randrange(p))
                 for _ in range(args.batch)]
        batch_report = {}
        for engine in engines:
            if engine == "interpreter":
                continue  # batches demote to the scalar loop there
            context = SimulatedFieldContext(p, variant=args.variant,
                                            engine=engine)
            context.mul_batch(pairs[:2])  # warm compile caches
            start = time.perf_counter()
            looped = [context.mul(a, b) for a, b in pairs]
            loop_s = time.perf_counter() - start
            start = time.perf_counter()
            batched = context.mul_batch(pairs)
            batch_s = time.perf_counter() - start
            if batched != looped:
                raise KernelError(
                    f"{engine}: mul_batch disagrees with looped mul")
            ratio = loop_s / batch_s if batch_s else float("inf")
            batch_report[engine] = {
                "n": args.batch, "loop_s": loop_s,
                "batch_s": batch_s, "speedup": ratio,
            }
            print(f"{engine:12s} mul_batch x{args.batch}: "
                  f"loop {loop_s * 1e3:6.1f} ms, batch "
                  f"{batch_s * 1e3:6.1f} ms   {ratio:5.2f}x")

    if args.bench_out:
        record = {
            "mode": "engine_comparison",
            "params": params.name,
            "variant": args.variant,
            "seed": args.seed,
            "rounds": args.rounds,
            "output": outputs[engines[0]],
            "engines": {
                engine: {"wall_s": row["wall_s"],
                         "speedup": row["speedup"]}
                for engine, row in results.items()
            },
        }
        if batch_report:
            record["batch"] = batch_report
        if aot_start is not None:
            record["aot_start"] = aot_start
        write_bench(args.bench_out, "protocol", record)
        print(f"benchmark trajectory appended to {args.bench_out}")
    return 0


def _service_configs(args: argparse.Namespace):
    from repro.service import default_tenant_configs
    from repro.telemetry.profile import MAX_SIMULATED_BITS

    params = _PARAM_SETS[args.params]()
    if params.p.bit_length() > MAX_SIMULATED_BITS:
        raise ParameterError(
            f"a {params.p.bit_length()}-bit service on the functional "
            f"simulator is infeasible; use --params toy or mini (for "
            f"full-size offline runs, see `repro shard` / "
            f"docs/SHARDING.md)")
    configs = default_tenant_configs(
        args.tenants, engine=args.engine, hardened=args.hardened,
        lanes=args.lanes, max_queue=args.max_queue,
        variant=args.variant)
    return params, configs


def _parse_endpoint(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``:PORT``) for ``--connect`` flags."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ParameterError(
            f"--connect expects HOST:PORT (got {value!r})")
    return host or "127.0.0.1", int(port)


def _print_trace_summary(summary: dict) -> None:
    print(f"trace: {summary['span_count']} span(s), "
          f"{summary['requests']} request(s), "
          f"{summary['batches']} batch(es), "
          f"{summary['total_cycles']} simulated cycle(s)")
    for row in summary["top_kernels"]:
        print(f"  {row['kernel']:<28} {row['cycles']:>12} cycles")


def _write_trace_exports(root, chrome_path: str | None,
                         flamegraph_path: str | None) -> None:
    """Chrome ``trace_event`` JSON / collapsed-stack flamegraph text."""
    import json as json_module

    from repro.telemetry import tracing

    if not (chrome_path or flamegraph_path):
        return
    if root is None:
        print("no trace recorded (is the server's telemetry on?); "
              "skipping trace export")
        return
    if chrome_path:
        with open(chrome_path, "w", encoding="utf-8") as handle:
            json_module.dump(tracing.to_chrome_trace(root), handle)
            handle.write("\n")
        print(f"chrome trace written to {chrome_path} "
              f"(load it in about://tracing or ui.perfetto.dev)")
    if flamegraph_path:
        with open(flamegraph_path, "w", encoding="utf-8") as handle:
            handle.write(tracing.to_collapsed(root))
        print(f"collapsed stacks written to {flamegraph_path} "
              f"(feed to flamegraph.pl or speedscope)")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro import telemetry
    from repro.service import KeyExchangeService, start_server

    params, configs = _service_configs(args)
    if args.grace_s < 0:
        raise ParameterError(
            f"--grace-s must be non-negative (got {args.grace_s})")
    if not args.no_telemetry:
        # Default-on: per-request traces cost little (spans only
        # materialise per request/kernel aggregate) and make the
        # trace_export op, `repro trace --connect` and `repro top`
        # useful against a live server.
        telemetry.enable()

    async def serve() -> None:
        service = KeyExchangeService(params, configs)
        server = await start_server(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"serving {params.name} key exchange on {host}:{port} "
              f"({args.tenants} tenant(s) x {args.lanes} lane(s), "
              f"engine {args.engine}"
              f"{', hardened' if args.hardened else ''}, telemetry "
              f"{'off' if args.no_telemetry else 'on'})")
        sigterm = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
            sigterm_wired = True
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal handlers just skip the
            # graceful-drain path; Ctrl-C still works via the
            # KeyboardInterrupt handler below.
            sigterm_wired = False
        try:
            async with server:
                forever = asyncio.ensure_future(server.serve_forever())
                stop = asyncio.ensure_future(sigterm.wait())
                await asyncio.wait(
                    {forever, stop},
                    return_when=asyncio.FIRST_COMPLETED)
                stop.cancel()
                forever.cancel()
                try:
                    await forever
                except asyncio.CancelledError:
                    pass
                if sigterm.is_set():
                    # Graceful drain: stop accepting, reject new
                    # requests with the stable "service" code, let
                    # in-flight work finish inside the grace budget.
                    print(f"SIGTERM: draining in-flight requests "
                          f"(grace {args.grace_s:g}s)")
                    server.close()
                    service.begin_drain()
                    if await service.wait_idle(grace_s=args.grace_s):
                        print("drained cleanly")
                    else:
                        print("grace period expired with requests "
                              "still in flight")
        finally:
            if sigterm_wired:
                loop.remove_signal_handler(signal.SIGTERM)
            await service.aclose()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ServiceError
    from repro.service import run_load, run_load_remote
    from repro.telemetry.export import write_bench

    if args.exchanges < 1:
        raise ParameterError(
            f"--exchanges must be at least 1 (got {args.exchanges})")
    if args.concurrency < 1:
        raise ParameterError(
            f"--concurrency must be at least 1 (got "
            f"{args.concurrency})")
    if args.timeout_s < 0:
        raise ParameterError(
            f"--timeout-s must be non-negative (got {args.timeout_s}; "
            f"0 disables the per-request deadline)")
    timeout_s = args.timeout_s if args.timeout_s > 0 else None

    if args.connect:
        host, port = _parse_endpoint(args.connect)
        params = _PARAM_SETS[args.params]()
        try:
            report = asyncio.run(run_load_remote(
                params, host, port,
                exchanges=args.exchanges,
                concurrency=args.concurrency,
                seed=args.seed,
                timeout_s=timeout_s,
            ))
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to {host}:{port}: {exc}") from exc
    else:
        params, configs = _service_configs(args)
        report = asyncio.run(run_load(
            params,
            exchanges=args.exchanges,
            concurrency=args.concurrency,
            tenant_configs=configs,
            engine=args.engine,
            hardened=args.hardened,
            seed=args.seed,
            trace=not args.no_trace,
            timeout_s=timeout_s,
        ))
    print(report.summary())
    if report.trace_summary is not None:
        _print_trace_summary(report.trace_summary)
    _write_trace_exports(report.trace_root, args.chrome_out,
                         args.flamegraph_out)
    if args.bench_out:
        write_bench(args.bench_out, "protocol", report.to_record())
        print(f"benchmark trajectory appended to {args.bench_out}")
    if report.divergences:
        # A divergence is an escape: a wrong result left the service.
        print(f"FAIL: {report.divergences} result(s) diverged from "
              f"the sequential pure-Python reference")
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from repro.errors import ServiceError
    from repro.telemetry import tracing
    from repro.telemetry.export import span_to_dict

    if args.connect:
        host, port = _parse_endpoint(args.connect)

        async def fetch() -> dict:
            from repro.service import ServiceClient

            async with await ServiceClient().connect(
                    host, port) as client:
                return await client.trace_export(
                    spans=True, reset=args.reset, op=args.op,
                    tenant=args.tenant, trace=args.trace_id)

        try:
            document = asyncio.run(fetch())
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        if not document.get("enabled", True):
            print("server telemetry is disabled "
                  "(start it without --no-telemetry)")
        print(tracing.render_trace_summary(document, limit=args.limit))
        root = (tracing.document_to_root(document)
                if document.get("traces") else None)
    else:
        if args.exchanges < 1:
            raise ParameterError(
                f"--exchanges must be at least 1 "
                f"(got {args.exchanges})")
        from repro.service import run_load

        params, configs = _service_configs(args)
        report = asyncio.run(run_load(
            params,
            exchanges=args.exchanges,
            concurrency=args.concurrency,
            tenant_configs=configs,
            engine=args.engine,
            hardened=args.hardened,
            seed=args.seed,
            trace=True,
        ))
        print(report.summary())
        root = report.trace_root
        document = None

    if root is not None:
        _print_trace_summary(tracing.summarize_root(root))
    if args.json:
        payload = document if document is not None else {
            "enabled": True,
            "spans": span_to_dict(root) if root is not None else None,
            "summary": (tracing.summarize_root(root)
                        if root is not None else None),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"trace document written to {args.json}")
    _write_trace_exports(root, args.chrome, args.flamegraph)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ServiceError
    from repro.telemetry.dashboard import poll_dashboard

    host, port = _parse_endpoint(args.connect)
    if args.interval <= 0:
        raise ParameterError(
            f"--interval must be positive (got {args.interval})")
    try:
        asyncio.run(poll_dashboard(
            host, port,
            interval_s=args.interval,
            iterations=args.iterations,
            plain=args.plain,
        ))
    except OSError as exc:
        raise ServiceError(
            f"cannot connect to {host}:{port}: {exc}") from exc
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_watchdog(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.telemetry import watchdog

    overrides = {
        name: value for name, value in (
            ("latency", args.latency_tolerance),
            ("throughput", args.throughput_tolerance),
            ("cycles", args.cycles_tolerance),
            ("recovery", args.recovery_tolerance),
        ) if value is not None
    }
    tolerances = watchdog.Tolerances(**overrides)
    report = watchdog.check_paths(args.paths, tolerances=tolerances)
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"watchdog report written to {args.json}")
    if not report.ok:
        # Exit 1, not 2: a regression is a *finding*, distinct from
        # usage/environment errors (which raise ReproError -> 2).
        print(f"error [regression]: {len(report.findings)} perf "
              f"regression(s) beyond tolerance", file=sys.stderr)
        return 1
    return 0


def _shard_plan_for(args: argparse.Namespace):
    from repro.shard.plan import build_plan, load_plan

    if getattr(args, "plan", None):
        return load_plan(args.plan)
    plan, _stream = build_plan(
        args.params, shards=args.shards, seed=args.seed,
        variant=args.variant)
    return plan


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from repro.shard.plan import build_plan, save_plan

    plan, _stream = build_plan(
        args.params, shards=args.shards, seed=args.seed,
        variant=args.variant)
    _print_plan_summary(plan)
    for index, (start, end) in enumerate(plan.boundaries[:args.show]):
        print(f"  shard {index:>4}: ops [{start}, {end})  "
              f"seed {plan.shard_seeds[index]:#018x}")
    if plan.shards > args.show:
        print(f"  ... {plan.shards - args.show} more shard(s)")
    if args.output:
        save_plan(args.output, plan)
        print(f"shard plan written to {args.output}")
    return 0


def _run_shard_backlog(args: argparse.Namespace, *,
                       resume: bool) -> int:
    import os

    from repro import telemetry
    from repro.shard.merge import merge_records, read_checkpoint
    from repro.shard.scheduler import ShardExecutor, ShardRunStats
    from repro.telemetry.export import write_bench
    from repro.telemetry.spans import render_span_tree

    plan = _shard_plan_for(args)
    _print_plan_summary(plan)
    completed: dict[int, dict] = {}
    if resume or args.resume:
        if not args.checkpoint:
            raise ParameterError(
                "resuming requires --checkpoint PATH (the file the "
                "interrupted run was writing)")
        if os.path.exists(args.checkpoint):
            completed = read_checkpoint(args.checkpoint, plan)
            if completed:
                print(f"resuming: {len(completed)}/{plan.shards} "
                      f"shard(s) already checkpointed")
    shard_ids = None
    if args.max_shards:
        # bounded smoke slice (CI runs csidh-512 this way): first K
        # shards only; the merge below is explicitly partial
        shard_ids = list(range(min(args.max_shards, plan.shards)))
    executor = ShardExecutor(plan, workers=args.workers,
                             engine=args.engine)
    stats = ShardRunStats()
    with telemetry.capture(fresh=True) as cap:
        records = executor.run(
            checkpoint_path=args.checkpoint,
            shard_ids=shard_ids,
            completed=completed,
            stats=stats,
        )
    partial = len(records) < plan.shards
    merged = merge_records(plan, records, stats=stats,
                           engine=executor.engine, partial=partial)
    if not args.quiet:
        print(render_span_tree(merged.root, show_wall=False))
    _print_merged_summary(merged, stats)
    if args.output:
        _export_telemetry(args.output, merged.root, cap.registry)
    if args.bench_out:
        if partial:
            print("partial run: BENCH append skipped (cycle totals "
                  "of a slice are not comparable across runs)")
        else:
            write_bench(args.bench_out, "shard",
                        merged.bench_record())
            print(f"benchmark trajectory appended to {args.bench_out}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    return _run_shard_backlog(args, resume=False)


def _cmd_shard_resume(args: argparse.Namespace) -> int:
    return _run_shard_backlog(args, resume=True)


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    from repro.shard.merge import merge_records, read_checkpoint
    from repro.shard.plan import load_plan
    from repro.telemetry.export import write_bench
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.spans import render_span_tree

    plan = load_plan(args.plan)
    records = read_checkpoint(args.checkpoint, plan)
    engines = {record.get("engine", "jit")
               for record in records.values()}
    merged = merge_records(
        plan, records, partial=args.partial,
        engine=engines.pop() if len(engines) == 1 else "mixed")
    if not args.quiet:
        print(render_span_tree(merged.root, show_wall=False))
    scope = (f"{len(merged.completed)}/{plan.shards} shard(s) "
             f"(partial)" if merged.partial
             else f"all {plan.shards} shard(s)")
    print(f"merged {scope} from {args.checkpoint}: "
          f"{merged.cycles} simulated cycle(s), "
          f"{merged.instructions} instruction(s), "
          f"coefficient {merged.coefficient:#x}")
    if args.output:
        _export_telemetry(args.output, merged.root, MetricsRegistry())
    if args.bench_out:
        if merged.partial:
            print("partial merge: BENCH append skipped")
        else:
            write_bench(args.bench_out, "shard",
                        merged.bench_record())
            print(f"benchmark trajectory appended to {args.bench_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC'24 RISC-V MPI-ISE / CSIDH-512 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, *, params: bool = True) -> None:
        if params:
            p.add_argument("--params", choices=sorted(_PARAM_SETS),
                           default="csidh-512")
        p.add_argument("--no-paper", action="store_true",
                       help="omit the paper's reference numbers")
        p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("table3", help="hardware cost table")
    p.add_argument("--no-paper", action="store_true")
    p.set_defaults(func=_cmd_table3)

    def telemetry_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry", metavar="PATH", default=None,
            help="export spans+metrics to PATH "
                 "(JSON, or JSONL for *.jsonl)")

    p = sub.add_parser("table4", help="operation cycle table")
    common(p)
    telemetry_flag(p)
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("action", help="group-action cycles/speedups")
    common(p)
    telemetry_flag(p)
    p.add_argument("--keys", type=int, default=2)
    p.set_defaults(func=_cmd_action)

    p = sub.add_parser("exchange", help="run a key exchange")
    common(p)
    p.set_defaults(func=_cmd_exchange, params="mini")

    p = sub.add_parser("report", help="full markdown report")
    p.add_argument("--output", "-o", default=None)
    p.add_argument("--keys", type=int, default=2)
    p.add_argument("--seed", type=int, default=7)
    telemetry_flag(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "profile",
        help="instrumented group action: cycle-attribution span tree")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--variant", default="reduced.ise",
                   help="kernel variant (e.g. reduced.ise, full.isa)")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--top", type=int, default=8,
                   help="hot kernels to list")
    p.add_argument("--cross-check", action="store_true",
                   help="interpreter path with golden verification")
    p.add_argument("--output", "-o", default=None,
                   help="telemetry export path (JSON/JSONL)")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="append a run record to the BENCH_*.json "
                        "perf trajectory")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="decompose the action into N shards and run "
                        "them on worker processes (enables "
                        "--params csidh-512; see docs/SHARDING.md)")
    p.add_argument("--workers", type=int, default=None, metavar="M",
                   help="worker processes for --shards "
                        "(default: one per CPU)")
    p.add_argument("--engine", default="jit",
                   choices=("interpreter", "replay", "jit", "aot"),
                   help="execution tier sharded workers run on "
                        "(with --shards; default jit)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign with coverage report")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--n", type=int, default=25,
                   help="faults to inject")
    p.add_argument("--variant", default="reduced.ise")
    p.add_argument("--check-interval", type=int, default=1,
                   help="verify one in N operations (campaign default "
                        "1: every operation)")
    p.add_argument("--sites", default=None,
                   help="comma-separated fault sites (default: all)")
    p.add_argument("--engine", default=None,
                   choices=("interpreter", "replay", "jit", "aot"),
                   help="execution tier the checked contexts run on "
                        "(default: replay)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full coverage report as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the table (requires --json)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="split the campaign into N trial ranges run "
                        "on worker processes (identical report; see "
                        "docs/SHARDING.md)")
    p.add_argument("--workers", type=int, default=None, metavar="M",
                   help="worker processes for --shards "
                        "(default: one per CPU)")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "chaos",
        help="seeded network-chaos campaign against a live wire "
             "server (drops, latency, corruption, reordering)")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--n", type=int, default=16,
                   help="network faults to inject (one per handshake)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated chaos kinds (default: all)")
    p.add_argument("--engine", default="replay",
                   choices=("interpreter", "replay", "jit", "aot"),
                   help="execution tier the chaos tenant runs on")
    p.add_argument("--variant", default="reduced.ise")
    p.add_argument("--timeout-s", type=float, default=0.75,
                   metavar="S",
                   help="per-request client timeout each trial runs "
                        "with")
    p.add_argument("--retries", type=int, default=3,
                   help="client retry budget per request (>= 1: "
                        "one-shot faults need a retry to recover)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full chaos report as JSON "
                        "(byte-identical across same-seed runs)")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="append a chaos_load record to the "
                        "BENCH_*.json perf trajectory")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the table (requires --json)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="time a group action per execution engine (+ batch API)")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--engine",
                   choices=("interpreter", "replay", "jit", "aot", "all"),
                   default="all")
    p.add_argument("--variant", default="reduced.ise")
    p.add_argument("--rounds", type=int, default=3,
                   help="timing repetitions per engine (best-of)")
    p.add_argument("--batch", type=int, default=64, metavar="N",
                   help="also time mul_batch over N pairs (0: skip)")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="append the engine comparison to the "
                        "BENCH_*.json perf trajectory")
    p.set_defaults(func=_cmd_bench)

    def service_knobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--params", choices=sorted(_PARAM_SETS),
                       default="toy")
        p.add_argument("--tenants", type=int, default=4,
                       help="number of isolated tenants")
        p.add_argument("--engine",
                       choices=("interpreter", "replay", "jit", "aot"),
                       default="jit",
                       help="preferred (fastest) execution tier")
        p.add_argument("--hardened", action="store_true",
                       help="checked contexts + output validation on "
                            "every tenant")
        p.add_argument("--lanes", type=int, default=2,
                       help="concurrent sessions per tenant")
        p.add_argument("--max-queue", type=int, default=16,
                       help="queued requests per tenant beyond its "
                            "lanes")
        p.add_argument("--variant", default="reduced.ise")

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant key-exchange service over TCP")
    service_knobs(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="skip telemetry.enable(): no request traces, "
                        "empty trace_export")
    p.add_argument("--grace-s", type=float, default=5.0, metavar="S",
                   help="graceful-drain budget on SIGTERM: stop "
                        "accepting, let in-flight requests finish")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "load",
        help="drive concurrent exchanges through the service and "
             "check every result against the sequential reference")
    service_knobs(p)
    p.add_argument("--exchanges", type=int, default=100,
                   help="full handshakes to run")
    p.add_argument("--concurrency", type=int, default=16,
                   help="handshakes in flight at once")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="drive a live `repro serve` instance over "
                        "the wire instead of an in-process service")
    p.add_argument("--no-trace", action="store_true",
                   help="skip request tracing (and the "
                        "cycle-conservation assertion) for the "
                        "in-process run")
    p.add_argument("--chrome-out", default=None, metavar="PATH",
                   help="write the traced run as Chrome trace_event "
                        "JSON")
    p.add_argument("--flamegraph-out", default=None, metavar="PATH",
                   help="write the traced run as collapsed stacks "
                        "(flamegraph.pl / speedscope input)")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="append a service_load record to the "
                        "BENCH_*.json perf trajectory")
    p.add_argument("--timeout-s", type=float, default=30.0,
                   metavar="S",
                   help="per-request deadline budget (0 disables; "
                        "expired requests are retried and counted "
                        "as deadline rejections)")
    p.set_defaults(func=_cmd_load)

    p = sub.add_parser(
        "trace",
        help="record a traced workload (or attach to a live server) "
             "and export Chrome trace / flamegraph artifacts")
    service_knobs(p)
    p.add_argument("--exchanges", type=int, default=10,
                   help="handshakes for the recorded workload")
    p.add_argument("--concurrency", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="fetch traces from a live server's "
                        "trace_export op instead of recording")
    p.add_argument("--op", default=None,
                   help="with --connect: only traces for this op")
    p.add_argument("--tenant", default=None,
                   help="with --connect: only traces for this tenant")
    p.add_argument("--trace-id", default=None,
                   help="with --connect: one specific trace")
    p.add_argument("--reset", action="store_true",
                   help="with --connect: clear the server's recorded "
                        "traces after exporting")
    p.add_argument("--limit", type=int, default=20,
                   help="rows in the per-trace summary table")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full trace document as JSON")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="write Chrome trace_event JSON")
    p.add_argument("--flamegraph", default=None, metavar="PATH",
                   help="write collapsed stacks")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "shard",
        help="sharded multi-process execution: plan / run / resume / "
             "merge a decomposed group action (docs/SHARDING.md)")
    shard_sub = p.add_subparsers(dest="shard_command", required=True)

    def shard_source(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--params", choices=sorted(_PARAM_SETS),
                        default="toy")
        sp.add_argument("--shards", type=int, default=8, metavar="N",
                        help="shard count when building a fresh plan")
        sp.add_argument("--seed", type=int, default=3)
        sp.add_argument("--variant", default="reduced.ise")

    sp = shard_sub.add_parser(
        "plan",
        help="record the action, cut it into shards, save the plan")
    shard_source(sp)
    sp.add_argument("--show", type=int, default=8, metavar="K",
                    help="shard boundaries to print")
    sp.add_argument("--output", "-o", default=None,
                    metavar="PLAN_JSON",
                    help="write the plan file (input to run/merge)")
    sp.set_defaults(func=_cmd_shard_plan)

    def shard_run_knobs(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--plan", default=None, metavar="PLAN_JSON",
                        help="run a saved plan instead of building "
                             "one from --params/--shards")
        shard_source(sp)
        sp.add_argument("--workers", type=int, default=None,
                        metavar="M",
                        help="worker processes (default: one per CPU)")
        sp.add_argument("--engine", default="jit",
                        choices=("interpreter", "replay", "jit", "aot"),
                        help="execution tier workers run on")
        sp.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSONL checkpoint file (append-only; "
                             "enables resume)")
        sp.add_argument("--max-shards", type=int, default=0,
                        metavar="K",
                        help="run only the first K shards (bounded "
                             "smoke slice; the merge is partial)")
        sp.add_argument("--resume", action="store_true",
                        help="skip shards already in --checkpoint")
        sp.add_argument("--quiet", action="store_true",
                        help="suppress the merged span tree")
        sp.add_argument("--output", "-o", default=None,
                        help="telemetry export path (JSON/JSONL)")
        sp.add_argument("--bench-out", default=None, metavar="PATH",
                        help="append a sharded_action record to the "
                             "BENCH_*.json perf trajectory")

    sp = shard_sub.add_parser(
        "run", help="execute a plan's shards on worker processes "
                    "and merge")
    shard_run_knobs(sp)
    sp.set_defaults(func=_cmd_shard_run)

    sp = shard_sub.add_parser(
        "resume", help="continue an interrupted run from its "
                       "checkpoint file")
    shard_run_knobs(sp)
    sp.set_defaults(func=_cmd_shard_resume)

    sp = shard_sub.add_parser(
        "merge", help="merge an existing checkpoint file offline "
                      "(no execution)")
    sp.add_argument("--plan", required=True, metavar="PLAN_JSON")
    sp.add_argument("--checkpoint", required=True, metavar="PATH")
    sp.add_argument("--partial", action="store_true",
                    help="allow missing shards (progress inspection)")
    sp.add_argument("--quiet", action="store_true",
                    help="suppress the merged span tree")
    sp.add_argument("--output", "-o", default=None,
                    help="telemetry export path (JSON/JSONL)")
    sp.add_argument("--bench-out", default=None, metavar="PATH")
    sp.set_defaults(func=_cmd_shard_merge)

    p = sub.add_parser(
        "top",
        help="live dashboard over a running service's stats op")
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between polls")
    p.add_argument("--iterations", type=int, default=None,
                   help="frames to draw (default: until ctrl-C)")
    p.add_argument("--plain", action="store_true",
                   help="append frames instead of clearing the "
                        "screen (for logs/pipes)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "watchdog",
        help="perf-regression gate over BENCH_*.json trajectories "
             "(exit 1 on regression)")
    p.add_argument("paths", nargs="+", metavar="BENCH_JSON",
                   help="trajectory files (e.g. BENCH_protocol.json "
                        "BENCH_service.json)")
    p.add_argument("--latency-tolerance", type=float, default=None,
                   help="allowed relative growth of wall-clock "
                        "metrics (default 0.5)")
    p.add_argument("--throughput-tolerance", type=float, default=None,
                   help="allowed relative drop of throughput "
                        "(default 0.35)")
    p.add_argument("--cycles-tolerance", type=float, default=None,
                   help="allowed relative growth of simulated cycle "
                        "counts (default 0.0: any increase fails)")
    p.add_argument("--recovery-tolerance", type=float, default=None,
                   help="allowed relative drop of chaos recovery "
                        "rates (default 0.0: any drop fails)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full report as JSON")
    p.set_defaults(func=_cmd_watchdog)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent aot artifact cache")
    p.add_argument("action", choices=("stats", "clear", "dir"),
                   help="stats: directory summary; clear: remove all "
                        "artifacts; dir: print the cache directory")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("kernel", help="dump a generated kernel")
    p.add_argument("name", help="e.g. fp_mul.reduced.ise")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="csidh-512")
    p.set_defaults(func=_cmd_kernel)

    p = sub.add_parser("listings", help="print Listings 1-4")
    p.set_defaults(func=_cmd_listings)

    p = sub.add_parser("validate",
                       help="validate every kernel against its oracle")
    p.add_argument("--params", choices=sorted(_PARAM_SETS),
                   default="toy")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--constant-time", action="store_true",
                   help="also verify constant-time traces")
    p.set_defaults(func=_cmd_validate)

    return parser


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.rv64.artifacts import cache_dir, cache_stats, clear_cache

    if args.action == "dir":
        print(cache_dir())
        return 0
    if args.action == "clear":
        removed = clear_cache()
        print(f"removed {removed} artifact(s) from {cache_dir()}")
        return 0
    stats = cache_stats()
    print(f"cache dir : {stats['dir']}")
    print(f"artifacts : {stats['artifacts']}")
    print(f"bytes     : {stats['bytes']}")
    for name in stats["files"]:
        print(f"  {name}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.kernels.validation import validate_kernels

    params = _PARAM_SETS[args.params]()
    report = validate_kernels(
        params.p, trials=args.trials,
        check_constant_time=args.constant_time)
    print(report.summary())
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # one actionable line, never a traceback (tests/test_cli.py)
        message = " ".join(str(exc).split())
        print(f"error [{exc.code}]: {message}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piped into `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
