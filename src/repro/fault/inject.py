"""Turn planned fault sites into armed corruptions of live runners.

:func:`arm_fault` resolves a :class:`~repro.fault.plan.FaultSite`'s raw
selectors against one :class:`~repro.kernels.runner.KernelRunner` and
installs the corruption:

* interpreter sites (``register_flip``, ``memory_flip``) attach a
  one-shot :meth:`Machine.add_trace_hook` that fires at a chosen
  retired-instruction index — attaching a hook also makes ``replay=True``
  requests fall back to the interpreter, so the flip lands mid-kernel
  exactly as a transient hardware fault would;
* replay-cache sites (``replay_step_skip``, ``replay_closure_corrupt``,
  ``replay_cycles_corrupt``) swap the cached
  :class:`~repro.rv64.replay.CompiledTrace` for a poisoned copy —
  *persistent* corruption that stays until recovery invalidates the
  cache entry.  When the machine also holds a **compiled jit
  function** for the same entry, the equivalent jit poisoning
  (:func:`~repro.rv64.jit.poisoned_skip` / ``poisoned_xor`` /
  ``poisoned_cycles``) is applied in the same arming step: the jit
  image is the same cached execution state in another form, so a fault
  that corrupts the trace must reach it too, or jit runs would sail
  straight past the armed fault.  A live **aot tier** is dropped in
  the same arming step (its liveness guard trips and runs demote onto
  the poisoned jit function), so the fault is observable from the top
  of the aot → jit → replay → interpreter ladder down;
* ``output_corrupt`` installs a one-shot hook on the runner's result
  read-out seam, perturbing what the caller sees independently of the
  engine.

Every armed fault is recorded as a telemetry event
(``faults_injected_total{site,kernel}``) and returns an
:class:`ArmedFault` whose ``disarm()`` restores the pristine state
(idempotent; campaigns call it in a ``finally``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro import telemetry
from repro.errors import FaultError
from repro.fault.plan import (
    FaultSite,
    SITE_MEMORY_FLIP,
    SITE_OUTPUT_CORRUPT,
    SITE_REGISTER_FLIP,
    SITE_REPLAY_CLOSURE,
    SITE_REPLAY_CYCLES,
    SITE_REPLAY_SKIP,
)
from repro.kernels.layout import RESULT_ADDR
from repro.kernels.runner import KernelRunner
from repro.rv64.jit import poisoned_cycles, poisoned_skip, poisoned_xor
from repro.rv64.replay import _is_terminal_ret


@dataclass(frozen=True)
class ArmedFault:
    """A live fault: what was armed, and how to take it back out."""

    site: FaultSite
    kernel: str
    description: str
    disarm: Callable[[], None]


def _write_candidates(runner: KernelRunner) -> list[tuple[int, int]]:
    """(retired-instruction index, rd) pairs of the kernel's register
    writes, excluding x0 (hard-wired) and ra/sp (control plumbing)."""
    program = runner.machine._program
    pc = runner.entry
    index = 0
    candidates: list[tuple[int, int]] = []
    while True:
        pair = program.get(pc)
        if pair is None:
            break
        ins, spec = pair
        if _is_terminal_ret(ins) or ins.mnemonic == "ebreak":
            break
        if getattr(spec, "writes_rd", False) and ins.rd not in (0, 1, 2):
            candidates.append((index, ins.rd))
        pc += 4
        index += 1
    return candidates


def _one_shot_hook(machine, fire_index: int, payload) -> Callable:
    """A trace hook calling *payload(state)* once, at *fire_index*."""
    counter = 0
    fired = False

    def hook(state, ins) -> None:
        nonlocal counter, fired
        if not fired and counter == fire_index:
            fired = True
            payload(state)
        counter += 1

    machine.add_trace_hook(hook)
    return hook


def _poisoned_trace(runner: KernelRunner):
    machine = runner.machine
    trace = machine._trace_for(runner.entry)
    if trace is None:
        raise FaultError(
            f"{runner.kernel.name} is not replayable under this "
            f"pipeline configuration; replay-cache faults need a "
            f"compiled trace"
        )
    return machine, trace


def _poison_jit(machine, entry: int, poison) -> Callable[[], None]:
    """Apply *poison* to a live compiled jit function, if one exists.

    Returns the restore callable (a no-op when the entry was never
    jit-compiled — interpreter/replay-only campaigns arm exactly as
    before)."""
    original = machine._jit_cache.get(entry)
    if original is None:
        return lambda: None
    machine._jit_cache[entry] = poison(original)

    def restore() -> None:
        machine._jit_cache[entry] = original

    return restore


def _ensure_demotion_jit(runner: KernelRunner) -> None:
    """Force-compile the jit rung for an aot runner before poisoning.

    aot runners skip eager jit compilation (it would re-trace and
    defeat the artifact warm start), but a poisoned aot tier demotes
    onto the jit rung — so the jit function must exist *now*, built
    from the still-healthy trace, for the poisoning below to reach it.
    """
    if runner.engine == "aot":
        runner.machine._jit_for(runner.entry)


def _poison_aot(machine, entry: int) -> Callable[[], None]:
    """Take the live aot tier for *entry* out while a fault is armed.

    The fused aot thunk computes results from the expression graph —
    it never consults ``trace.steps`` — so poisoning the trace cannot
    reach it; symmetry demands the tier be dropped instead: the entry
    thunk's liveness guard trips, runs demote onto the (poisoned) jit
    function, and the armed fault is visible from every tier.  The
    entry also joins ``_aot_rejected`` so nothing recompiles a
    *healthy* aot function from the untouched ``step_instructions``
    while the fault is armed."""
    entry_fn = machine._aot_entry_cache.pop(entry, None)
    aotfn = machine._aot_cache.pop(entry, None)
    was_rejected = entry in machine._aot_rejected
    machine._aot_rejected.add(entry)

    def restore() -> None:
        if entry_fn is not None:
            machine._aot_entry_cache[entry] = entry_fn
        if aotfn is not None:
            machine._aot_cache[entry] = aotfn
        if not was_rejected:
            machine._aot_rejected.discard(entry)

    return restore


def _restore_trace(machine, entry: int, original, restore_jit=None,
                   restore_aot=None):
    def disarm() -> None:
        # harmless if recovery already rebuilt the runner: the poisoned
        # machine is unreachable then, and restoring it changes nothing
        machine._trace_cache[entry] = original
        if restore_jit is not None:
            restore_jit()
        if restore_aot is not None:
            restore_aot()

    return disarm


def arm_fault(runner: KernelRunner, site: FaultSite) -> ArmedFault:
    """Arm *site* on *runner*; returns the disarm handle."""
    kind = site.site
    kernel = runner.kernel.name
    machine = runner.machine

    if kind == SITE_REGISTER_FLIP:
        candidates = _write_candidates(runner)
        if not candidates:
            raise FaultError(f"{kernel}: no register-write sites")
        index, reg = candidates[site.step % len(candidates)]
        mask = 1 << (site.bit % 64)

        def flip_register(state) -> None:
            state.regs._regs[reg] ^= mask

        hook = _one_shot_hook(machine, index, flip_register)
        return ArmedFault(
            site=site, kernel=kernel,
            description=(f"flip bit {site.bit % 64} of x{reg} after "
                         f"instruction {index}"),
            disarm=lambda: machine.remove_trace_hook(hook),
        )

    if kind == SITE_MEMORY_FLIP:
        candidates = _write_candidates(runner)
        index = (candidates[site.step % len(candidates)][0]
                 if candidates else 0)
        offset = site.lane % (8 * runner.kernel.output_limbs)
        address = RESULT_ADDR + offset
        mask = 1 << (site.bit % 8)

        def flip_byte(state) -> None:
            raw = state.mem.read_bytes(address, 1)
            state.mem.write_bytes(address, bytes((raw[0] ^ mask,)))

        hook = _one_shot_hook(machine, index, flip_byte)
        return ArmedFault(
            site=site, kernel=kernel,
            description=(f"flip bit {site.bit % 8} of result byte "
                         f"{offset} after instruction {index}"),
            disarm=lambda: machine.remove_trace_hook(hook),
        )

    if kind == SITE_REPLAY_SKIP:
        machine, trace = _poisoned_trace(runner)
        _ensure_demotion_jit(runner)
        k = site.step % len(trace.steps)
        steps = trace.steps[:k] + trace.steps[k + 1:]
        machine._trace_cache[runner.entry] = replace(trace, steps=steps)
        restore_jit = _poison_jit(
            machine, runner.entry,
            lambda jitfn: (poisoned_skip(jitfn, k)
                           if k < len(jitfn.blocks) else jitfn),
        )
        restore_aot = _poison_aot(machine, runner.entry)
        return ArmedFault(
            site=site, kernel=kernel,
            description=f"skip replay step {k}/{len(trace.steps)}",
            disarm=_restore_trace(machine, runner.entry, trace,
                                  restore_jit, restore_aot),
        )

    if kind == SITE_REPLAY_CLOSURE:
        machine, trace = _poisoned_trace(runner)
        _ensure_demotion_jit(runner)
        candidates = _write_candidates(runner)
        if not candidates:
            raise FaultError(f"{kernel}: no register-write sites")
        reg = candidates[site.lane % len(candidates)][1]
        mask = 1 << (site.bit % 64)
        k = site.step % len(trace.steps)
        regs = machine.state.regs._regs
        original_step = trace.steps[k]

        def corrupted_step() -> None:
            original_step()
            regs[reg] ^= mask

        steps = trace.steps[:k] + (corrupted_step,) + trace.steps[k + 1:]
        machine._trace_cache[runner.entry] = replace(trace, steps=steps)
        restore_jit = _poison_jit(
            machine, runner.entry,
            lambda jitfn: (poisoned_xor(jitfn, k, reg, mask)
                           if k < len(jitfn.blocks) else jitfn),
        )
        restore_aot = _poison_aot(machine, runner.entry)
        return ArmedFault(
            site=site, kernel=kernel,
            description=(f"replay step {k} additionally flips bit "
                         f"{site.bit % 64} of x{reg}"),
            disarm=_restore_trace(machine, runner.entry, trace,
                                  restore_jit, restore_aot),
        )

    if kind == SITE_REPLAY_CYCLES:
        machine, trace = _poisoned_trace(runner)
        _ensure_demotion_jit(runner)
        if trace.cycles is None:
            raise FaultError(
                f"{kernel}: trace has no static cycle count to corrupt"
            )
        corrupted = max(1, trace.cycles + (site.delta if site.bit % 2
                                           else -site.delta))
        if corrupted == trace.cycles:
            corrupted += 1
        machine._trace_cache[runner.entry] = replace(trace,
                                                     cycles=corrupted)
        restore_jit = _poison_jit(
            machine, runner.entry,
            lambda jitfn: poisoned_cycles(jitfn, corrupted),
        )
        restore_aot = _poison_aot(machine, runner.entry)
        return ArmedFault(
            site=site, kernel=kernel,
            description=(f"static cycle count {trace.cycles} -> "
                         f"{corrupted}"),
            disarm=_restore_trace(machine, runner.entry, trace,
                                  restore_jit, restore_aot),
        )

    if kind == SITE_OUTPUT_CORRUPT:
        fired = False
        bit = site.bit % 57  # within every radix's limb width

        def perturb(limbs):
            nonlocal fired
            if fired:
                return limbs
            fired = True
            i = site.lane % len(limbs)
            return (limbs[:i] + (limbs[i] ^ (1 << bit),)
                    + limbs[i + 1:])

        runner.set_fault_hook(perturb)
        return ArmedFault(
            site=site, kernel=kernel,
            description=(f"flip bit {bit} of output limb "
                         f"{site.lane % runner.kernel.output_limbs}"),
            disarm=runner.clear_fault_hook,
        )

    raise FaultError(f"unknown fault site {kind!r}")


def arm_and_record(runner: KernelRunner, site: FaultSite) -> ArmedFault:
    """:func:`arm_fault` plus the telemetry injection event."""
    armed = arm_fault(runner, site)
    telemetry.record_fault_injected(site.site, armed.kernel)
    return armed
