"""Seeded, reproducible fault plans.

A :class:`FaultPlan` expands a seed into a sequence of
:class:`FaultSite` records.  Sites carry *raw* selector integers
(``step``, ``bit``, ``lane``, ``delta``) rather than resolved targets:
the injector maps them onto the concrete kernel (modulo the number of
candidate instructions, trace steps, result limbs, ...) at arm time.
This keeps the plan independent of kernel shape — the same seed names
the same abstract faults for every variant — while staying fully
deterministic, which is what makes a campaign debuggable: re-running
with the seed from a failing report reproduces the exact fault
sequence, telemetry stream and report (asserted by a Hypothesis
property in ``tests/test_fault_plan.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultError

#: Mid-kernel register bit flip, injected by an interpreter trace hook
#: (hooks force the interpreter engine, modelling a transient fault).
SITE_REGISTER_FLIP = "register_flip"
#: Mid-kernel bit flip in the result buffer in data memory.
SITE_MEMORY_FLIP = "memory_flip"
#: A compiled replay trace loses one closure (instruction skip).
SITE_REPLAY_SKIP = "replay_step_skip"
#: A compiled replay trace closure gains a register-corrupting payload.
SITE_REPLAY_CLOSURE = "replay_closure_corrupt"
#: A compiled replay trace's precomputed static cycle count is altered.
SITE_REPLAY_CYCLES = "replay_cycles_corrupt"
#: The KernelRunner's result read-out is perturbed (engine-agnostic).
SITE_OUTPUT_CORRUPT = "output_corrupt"

ALL_SITES = (
    SITE_REGISTER_FLIP,
    SITE_MEMORY_FLIP,
    SITE_REPLAY_SKIP,
    SITE_REPLAY_CLOSURE,
    SITE_REPLAY_CYCLES,
    SITE_OUTPUT_CORRUPT,
)

#: Field operations a campaign drives faults through.
FAULT_OPERATIONS = ("mul", "sqr", "add", "sub")


@dataclass(frozen=True)
class FaultSite:
    """One planned fault: a site kind plus raw target selectors."""

    index: int       # trial number within the campaign
    site: str        # one of ALL_SITES
    operation: str   # one of FAULT_OPERATIONS
    step: int        # raw instruction / trace-step selector
    bit: int         # raw bit selector (mapped mod 64 / mod 8)
    lane: int        # raw register / limb / byte selector
    delta: int       # raw cycle-count perturbation (>= 1)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "site": self.site,
            "operation": self.operation,
            "step": self.step,
            "bit": self.bit,
            "lane": self.lane,
            "delta": self.delta,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded generator of reproducible fault sequences."""

    seed: int
    sites: tuple[str, ...] = ALL_SITES
    operations: tuple[str, ...] = FAULT_OPERATIONS

    def __post_init__(self) -> None:
        unknown = [s for s in self.sites if s not in ALL_SITES]
        if unknown:
            raise FaultError(
                f"unknown fault site(s) {unknown}; choose from "
                f"{', '.join(ALL_SITES)}"
            )
        bad_ops = [o for o in self.operations
                   if o not in FAULT_OPERATIONS]
        if bad_ops:
            raise FaultError(
                f"unknown operation(s) {bad_ops}; choose from "
                f"{', '.join(FAULT_OPERATIONS)}"
            )
        if not self.sites:
            raise FaultError("a fault plan needs at least one site")

    def generate(self, n: int) -> tuple[FaultSite, ...]:
        """The first *n* planned faults (pure function of the seed)."""
        if n < 1:
            raise FaultError(f"need at least one fault, got {n}")
        rng = random.Random(self.seed)
        out = []
        for index in range(n):
            out.append(FaultSite(
                index=index,
                site=self.sites[rng.randrange(len(self.sites))],
                operation=self.operations[
                    rng.randrange(len(self.operations))],
                step=rng.getrandbits(16),
                bit=rng.getrandbits(8),
                lane=rng.getrandbits(16),
                delta=1 + rng.getrandbits(5),
            ))
        return tuple(out)

    def operand_rng(self) -> random.Random:
        """The campaign's operand stream (independent of site draws so
        adding a site kind does not reshuffle operands)."""
        return random.Random(self.seed ^ 0x0FA0175EED)
