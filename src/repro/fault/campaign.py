"""Seeded fault-injection campaigns with a detection-coverage report.

:func:`run_campaign` expands a :class:`~repro.fault.plan.FaultPlan`
into N trials.  Each trial builds a *checked*
:class:`~repro.field.simulated.SimulatedFieldContext` (sampling every
operation, ``check_interval=1`` by default), arms exactly one planned
fault on the runner behind the targeted field operation, executes that
operation on seeded operands, and classifies the outcome:

``detected_recovered``
    the hardening layer raised/absorbed a divergence and the final
    value matches the fault-free expectation (interpreter fallback on a
    freshly assembled runner succeeded);
``detected_unrecovered``
    detected, but recovery was exhausted or the value still diverged;
``masked``
    the corruption had no observable effect — the final value equals
    the fault-free expectation and no detector fired (e.g. a flipped
    bit overwritten before use);
``escaped``
    wrong value *and* no detector fired — the outcome a campaign
    exists to prove impossible (CI fails on any escape).

Everything is a pure function of the plan seed: operands come from the
plan's dedicated operand stream, no wall-clock values enter the report,
and the attached telemetry block is filtered to the fault-layer metric
families so cache warmth cannot perturb it.  Identical seed ⇒ identical
report (a Hypothesis property in ``tests/test_fault_plan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import RecoveryExhaustedError
from repro.fault.inject import arm_and_record
from repro.fault.plan import ALL_SITES, FAULT_OPERATIONS, FaultPlan, FaultSite
from repro.field.simulated import (
    DEFAULT_RECOVERY_ATTEMPTS,
    SimulatedFieldContext,
)
from repro.kernels import registry
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG

OUTCOME_RECOVERED = "detected_recovered"
OUTCOME_UNRECOVERED = "detected_unrecovered"
OUTCOME_MASKED = "masked"
OUTCOME_ESCAPED = "escaped"

OUTCOMES = (OUTCOME_RECOVERED, OUTCOME_UNRECOVERED,
            OUTCOME_MASKED, OUTCOME_ESCAPED)

#: Which runner slot of the context each operation executes on.
_RUNNER_SLOTS = {"mul": "_mul", "sqr": "_mul", "add": "_add",
                 "sub": "_sub"}

#: Metric families included in the report — the fault layer's own, so
#: the block is identical across runs regardless of pool/cache warmth.
_REPORT_METRICS = (
    "faults_injected_total",
    "faults_detected_total",
    "fault_recoveries_total",
    "checked_runs_total",
    "runner_evictions_total",
    "trace_invalidations_total",
)


@dataclass(frozen=True)
class TrialResult:
    """One injected fault and what became of it."""

    index: int
    site: str
    operation: str
    description: str
    outcome: str
    detections: int   # detector firings within the trial
    recoveries: int   # completed interpreter-fallback recoveries

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "site": self.site,
            "operation": self.operation,
            "description": self.description,
            "outcome": self.outcome,
            "detections": self.detections,
            "recoveries": self.recoveries,
        }


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate detection coverage of one campaign."""

    seed: int
    n: int
    modulus: int
    variant: str
    check_interval: int
    trials: tuple[TrialResult, ...]
    metrics: dict = field(default_factory=dict)
    engine: str = "replay"

    @property
    def outcomes(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for trial in self.trials:
            counts[trial.outcome] += 1
        return counts

    @property
    def by_site(self) -> dict[str, dict[str, int]]:
        table: dict[str, dict[str, int]] = {}
        for trial in self.trials:
            row = table.setdefault(
                trial.site, {outcome: 0 for outcome in OUTCOMES})
            row[trial.outcome] += 1
        return table

    @property
    def detected(self) -> int:
        counts = self.outcomes
        return counts[OUTCOME_RECOVERED] + counts[OUTCOME_UNRECOVERED]

    @property
    def escaped(self) -> int:
        return self.outcomes[OUTCOME_ESCAPED]

    @property
    def recovery_rate(self) -> float:
        """Recovered fraction of detected faults (1.0 when none)."""
        detected = self.detected
        if not detected:
            return 1.0
        return self.outcomes[OUTCOME_RECOVERED] / detected

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n": self.n,
            "modulus": self.modulus,
            "variant": self.variant,
            "check_interval": self.check_interval,
            "engine": self.engine,
            "outcomes": self.outcomes,
            "by_site": self.by_site,
            "detected": self.detected,
            "escaped": self.escaped,
            "recovery_rate": self.recovery_rate,
            "trials": [trial.to_dict() for trial in self.trials],
            "metrics": self.metrics,
        }


def _run_trial(
    context: SimulatedFieldContext,
    reference,
    site: FaultSite,
    a: int,
    b: int,
) -> TrialResult:
    runner = getattr(context, _RUNNER_SLOTS[site.operation])
    armed = arm_and_record(runner, site)
    try:
        if site.operation == "mul":
            expected, run = reference.mul(a, b), lambda: context.mul(a, b)
        elif site.operation == "sqr":
            expected, run = reference.sqr(a), lambda: context.sqr(a)
        elif site.operation == "add":
            expected, run = reference.add(a, b), lambda: context.add(a, b)
        else:
            expected, run = reference.sub(a, b), lambda: context.sub(a, b)
        try:
            value = run()
        except RecoveryExhaustedError:
            outcome = OUTCOME_UNRECOVERED
        else:
            if context.fault_detections:
                recovered = (context.fault_recoveries
                             and value == expected)
                outcome = (OUTCOME_RECOVERED if recovered
                           else OUTCOME_UNRECOVERED)
            else:
                outcome = (OUTCOME_MASKED if value == expected
                           else OUTCOME_ESCAPED)
    finally:
        armed.disarm()
    return TrialResult(
        index=site.index,
        site=site.site,
        operation=site.operation,
        description=armed.description,
        outcome=outcome,
        detections=context.fault_detections,
        recoveries=context.fault_recoveries,
    )


def run_trial_range(
    p: int,
    *,
    seed: int,
    n: int,
    start: int = 0,
    end: int | None = None,
    variant: str = "reduced.ise",
    sites: tuple[str, ...] = ALL_SITES,
    operations: tuple[str, ...] = FAULT_OPERATIONS,
    check_interval: int = 1,
    max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    engine: str | None = None,
) -> tuple[list[TrialResult], dict]:
    """Run trials ``[start, end)`` of the *n*-trial plan for *seed*.

    Each trial starts from a **cold runner pool**, making it a pure
    function of its planned site and operands — trial ``i`` behaves
    identically whether executed in one process or as part of any
    contiguous sub-range on any worker.  That property is what lets
    fault campaigns shard across processes and concatenate exactly
    (``tests/shard/test_campaign_shard.py``); the operand stream is
    fast-forwarded over the skipped trials (two draws each), so a
    range sees the very operands the full run would have used.

    Returns the trial list plus the fault-layer metric families
    captured over just this range (summable across disjoint ranges).
    """
    plan = FaultPlan(seed=seed, sites=sites, operations=operations)
    planned = plan.generate(n)
    end = n if end is None else end
    if not 0 <= start <= end <= n:
        raise ValueError(
            f"trial range [{start}, {end}) outside campaign [0, {n})")
    operands = plan.operand_rng()
    for _skipped in range(2 * start):
        operands.randrange(p)

    trials = []
    with telemetry.capture(fresh=True) as cap:
        for site in planned[start:end]:
            # cold pool per trial: runner clocks, machine state and
            # replay caches never leak between trials, so outcomes are
            # position-independent (the sharding invariant)
            registry.clear_runner_pool()
            context = SimulatedFieldContext(
                p, variant=variant, pipeline_config=pipeline_config,
                checked=True, check_interval=check_interval,
                max_recovery_attempts=max_recovery_attempts,
                engine=engine,
            )
            if engine == "jit":
                # compile the jit functions *before* arming, so
                # replay-cache faults corrupt a live compiled image
                # (the scenario the jit campaign exists to cover)
                for slot in ("_mul", "_sqr", "_add", "_sub"):
                    runner = getattr(context, slot)
                    runner.machine.jit_supported(runner.entry)
            reference = context._reference
            a = operands.randrange(p)
            b = operands.randrange(p)
            trials.append(_run_trial(context, reference, site, a, b))
        metrics = {
            name: samples
            for name, samples in cap.registry.to_dict().items()
            if name in _REPORT_METRICS
        }
    return trials, metrics


def run_campaign(
    p: int,
    *,
    seed: int,
    n: int,
    variant: str = "reduced.ise",
    sites: tuple[str, ...] = ALL_SITES,
    operations: tuple[str, ...] = FAULT_OPERATIONS,
    check_interval: int = 1,
    max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    engine: str | None = None,
) -> CampaignReport:
    """Inject *n* planned faults into checked contexts over F_p.

    *engine* selects the execution tier the checked contexts run on
    (``None`` keeps the context default, replay); ``engine="jit"``
    campaigns prove that replay-cache corruption reaches a live
    compiled jit function and that recovery evicts it."""
    trials, metrics = run_trial_range(
        p,
        seed=seed,
        n=n,
        variant=variant,
        sites=sites,
        operations=operations,
        check_interval=check_interval,
        max_recovery_attempts=max_recovery_attempts,
        pipeline_config=pipeline_config,
        engine=engine,
    )

    return CampaignReport(
        seed=seed,
        n=n,
        modulus=p,
        variant=variant,
        check_interval=check_interval,
        trials=tuple(trials),
        metrics=metrics,
        engine=engine if engine is not None else "replay",
    )
