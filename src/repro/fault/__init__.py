"""Deterministic fault injection and the campaign harness.

Three layers (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.fault.plan` — :class:`FaultPlan`: a seeded, reproducible
  generator of :class:`FaultSite` descriptions (what to corrupt, where,
  which bit);
* :mod:`repro.fault.inject` — :func:`arm_fault`: turns a site into an
  armed corruption of a live :class:`~repro.kernels.runner.KernelRunner`
  (trace-hook bit flips, replay-cache poisoning, output perturbation),
  returning a disarm handle;
* :mod:`repro.fault.campaign` — :func:`run_campaign`: injects N planned
  faults into checked :class:`~repro.field.simulated.SimulatedFieldContext`
  operations and classifies every trial as detected/recovered, masked,
  or escaped, emitting a JSON-able :class:`CampaignReport` (the artifact
  behind ``repro faults`` and the CI smoke job).
"""

from __future__ import annotations

from repro.fault.campaign import CampaignReport, TrialResult, run_campaign
from repro.fault.inject import ArmedFault, arm_fault
from repro.fault.plan import (
    ALL_SITES,
    FAULT_OPERATIONS,
    FaultPlan,
    FaultSite,
    SITE_MEMORY_FLIP,
    SITE_OUTPUT_CORRUPT,
    SITE_REGISTER_FLIP,
    SITE_REPLAY_CLOSURE,
    SITE_REPLAY_CYCLES,
    SITE_REPLAY_SKIP,
)

__all__ = [
    "ALL_SITES", "FAULT_OPERATIONS", "FaultPlan", "FaultSite",
    "SITE_MEMORY_FLIP", "SITE_OUTPUT_CORRUPT", "SITE_REGISTER_FLIP",
    "SITE_REPLAY_CLOSURE", "SITE_REPLAY_CYCLES", "SITE_REPLAY_SKIP",
    "ArmedFault", "arm_fault",
    "CampaignReport", "TrialResult", "run_campaign",
]
