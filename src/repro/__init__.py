"""repro — reproduction of the DAC'24 paper "RISC-V Instruction Set
Extensions for Multi-Precision Integer Arithmetic: A Case Study on
Post-Quantum Key Exchange Using CSIDH-512".

Public API highlights:

* ``repro.core`` — the proposed ISEs (semantics, encodings, MAC macros);
* ``repro.rv64`` — RV64 functional simulator + Rocket-like timing model;
* ``repro.mpi`` — reference multi-precision arithmetic;
* ``repro.kernels`` — generated assembly kernels (4 variants);
* ``repro.field`` — F_p layer with operation counters;
* ``repro.csidh`` — CSIDH-512 group action and key exchange;
* ``repro.hw`` — hardware area model (Table 3);
* ``repro.eval`` — table/figure regeneration harness.
"""

__version__ = "1.0.0"
