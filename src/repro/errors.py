"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch a single base class at the API boundary while tests can
assert on the precise failure mode.  Each class carries a stable,
machine-readable ``code`` string — CLI error reporting, telemetry labels
and the campaign report all key on ``code`` rather than on class names,
so renames stay non-breaking.  ``tests/test_errors.py`` asserts that
every exception defined anywhere in the package derives from
:class:`ReproError` and has a unique code: new subsystems extend this
hierarchy, they do not fork their own bases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Stable machine-readable identifier for this failure mode.
    code = "repro"


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""

    code = "encoding"


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, operand, or label)."""

    code = "assembler"


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad fetch, trap, limits)."""

    code = "simulation"


class MemoryAccessError(SimulationError):
    """An out-of-range, misaligned, or otherwise invalid memory access."""

    code = "memory_access"


class KernelError(ReproError):
    """A generated assembly kernel was misused or failed verification."""

    code = "kernel"


class ParameterError(ReproError):
    """Invalid cryptographic or micro-architectural parameters."""

    code = "parameter"


class ProtocolError(ReproError):
    """A CSIDH protocol-level failure (invalid public key, etc.)."""

    code = "protocol"


class FaultError(ReproError):
    """Misuse of the fault-injection subsystem (bad site, bad plan)."""

    code = "fault"


class FaultDetectedError(FaultError):
    """A checked execution diverged from its pure-Python reference.

    Raised by the ``checked`` mode of
    :class:`~repro.kernels.runner.KernelRunner` /
    :class:`~repro.field.simulated.SimulatedFieldContext` when a
    sampled cross-validation observes a wrong value or an impossible
    cycle count.  Catching it and re-executing on the interpreter is
    the recovery protocol (see ``docs/ROBUSTNESS.md``).
    """

    code = "fault_detected"


class ServiceError(ReproError):
    """A key-exchange service failure (unknown tenant, bad request,
    malformed wire message; see ``docs/SERVICE.md``)."""

    code = "service"


class AdmissionError(ServiceError):
    """A request was rejected by admission control.

    Raised (and reported over the wire with this stable ``code``) when
    a tenant's bounded queue — or the service-wide in-flight bound —
    is full.  Rejection is immediate and stateless: the request was
    never enqueued, so the client may safely retry after backoff.
    """

    code = "admission"


class DeadlineError(ServiceError):
    """A request ran out of its deadline budget.

    Raised (and reported over the wire with this stable ``code``) when
    a request's ``deadline`` budget expires — while still queued for a
    lane (the work is never started) or while executing (the response
    is withheld and the late work drains in the background).  The
    operations are stateless and idempotent, so the client may safely
    retry with the same idempotency key.
    """

    code = "deadline"


class CircuitOpenError(ServiceError):
    """A request was rejected by an open per-tenant circuit breaker.

    After a run of consecutive execution failures the tenant's breaker
    opens and requests are rejected immediately with this stable
    ``code`` — shedding load instead of queueing doomed work.  After
    the cool-down one half-open probe is admitted; its outcome closes
    or re-opens the circuit (see ``docs/ROBUSTNESS.md``).
    """

    code = "circuit_open"


class TransportError(ServiceError):
    """A wire-level transport fault (client side, retryable).

    Raised by :class:`~repro.service.wire.ServiceClient` when the
    connection drops mid-request, a response frame fails its checksum,
    or no response arrives within the attempt budget.  Unlike the
    in-band service errors, a transport fault says nothing about the
    request's validity — the client retries it (same idempotency key)
    up to its retry budget before letting this error surface.
    """

    code = "transport"


class ChaosError(ReproError):
    """Misuse of the network-chaos subsystem (bad site, bad plan)."""

    code = "chaos"


class RegressionError(ReproError):
    """A benchmark trajectory regressed beyond the watchdog tolerance.

    Raised by :func:`repro.telemetry.watchdog.enforce` (and reported by
    ``repro watchdog`` with this stable ``code`` and exit status 1)
    when the latest run of a ``BENCH_*.json`` trajectory is slower, less
    throughput-y, or more cycle-hungry than its own baseline by more
    than the configured tolerance.
    """

    code = "regression"


class ShardError(ReproError):
    """Misuse or failure of the sharded execution subsystem.

    Covers malformed shard plans, checkpoint files that belong to a
    different plan (digest mismatch), and merges attempted over
    incomplete shard sets (see ``docs/SHARDING.md``).
    """

    code = "shard"


class ShardExhaustedError(ShardError):
    """The shard scheduler ran out of workers or re-queue budget.

    Raised by :class:`~repro.shard.scheduler.ShardExecutor` when one
    shard has crashed more workers than ``max_requeues`` allows, or the
    worker pool burned through its restart budget without draining the
    backlog.  Completed shards remain in the checkpoint file, so a
    ``repro shard resume`` after fixing the environment loses no work.
    """

    code = "shard_exhausted"


class ShardDivergenceError(ShardError):
    """A sharded execution produced a value its reference refutes.

    Every worker verifies each simulated operation against the
    pure-Python expectation recorded in the plan; the merge step
    refuses to produce a result when any shard reported a divergence
    (the sharded analogue of a service-layer escape — CI fails on it).
    """

    code = "shard_divergence"


class RecoveryExhaustedError(FaultError):
    """Bounded retry-with-fallback failed to restore a correct result.

    After a :class:`FaultDetectedError` the hardened execution layer
    evicts the poisoned runner, invalidates its replay trace and
    re-executes on the interpreter; this error means every permitted
    attempt still diverged from the reference — state corruption is not
    transient, and the caller must treat the computation as lost.
    """

    code = "recovery_exhausted"
