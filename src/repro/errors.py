"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch a single base class at the API boundary while tests can
assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, operand, or label)."""


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad fetch, trap, limits)."""


class MemoryAccessError(SimulationError):
    """An out-of-range, misaligned, or otherwise invalid memory access."""


class KernelError(ReproError):
    """A generated assembly kernel was misused or failed verification."""


class ParameterError(ReproError):
    """Invalid cryptographic or micro-architectural parameters."""


class ProtocolError(ReproError):
    """A CSIDH protocol-level failure (invalid public key, etc.)."""
