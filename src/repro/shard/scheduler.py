"""Work-stealing shard scheduler over a pool of worker processes.

The :class:`ShardExecutor` owns the control plane: per-worker bounded
inboxes, one shared result outbox, a contiguous-backlog split with
work stealing, JSONL checkpointing and the failure ladder (re-queue a
dead worker's in-flight shards, respawn the worker, give up with a
stable error code once budgets are burned).

Two decisions keep it deterministic enough to test hard:

* **Shards carry the state, workers carry none.**  A shard record is
  a pure function of ``(plan, shard index)`` — workers regenerate the
  op stream from the plan seed and verify the digest — so it never
  matters *which* worker ran a shard, how often it was stolen, or how
  many times it was re-queued after a crash.  Scheduling is free to be
  racy because the merged result cannot be.
* **Fork-and-inherit warm-up.**  The parent pre-compiles the kernels
  (and, for the action, a JIT warm-up context) before forking, so
  every worker inherits the warm pool copy-on-write instead of paying
  per-process compilation.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from queue import Empty

from repro import telemetry
from repro.errors import ShardError, ShardExhaustedError
from repro.kernels.registry import cached_kernels
from repro.shard.worker import worker_main

#: In-flight shards a worker may hold (its own queue depth).  Small, so
#: a crash loses little and stealing stays effective near the tail.
DEFAULT_QUEUE_DEPTH = 2

#: Times one shard may be re-queued after worker deaths before the run
#: aborts with ``shard_exhausted`` (a shard that kills every host it
#: lands on is a bug, not bad luck).
DEFAULT_MAX_REQUEUES = 2


@dataclass
class ShardRunStats:
    """Scheduler-side counters for one execution (BENCH + metrics)."""

    workers: int = 0
    shards_completed: int = 0
    steals: int = 0
    requeues: int = 0
    worker_failures: int = 0
    worker_restarts: int = 0
    exec_wall_s: float = 0.0


class _Worker:
    """Bookkeeping for one live worker process."""

    __slots__ = ("process", "inbox", "ready", "inflight")

    def __init__(self, process, inbox) -> None:
        self.process = process
        self.inbox = inbox
        self.ready = False
        self.inflight: list[int] = []


class ShardExecutor:
    """Runs a plan's shards across forked worker processes."""

    def __init__(
        self,
        plan,
        *,
        workers: int | None = None,
        engine: str = "jit",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        fail_injection: dict | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ShardError(
                f"--workers must be at least 1 (got {workers})")
        self.plan = plan
        self.engine = engine
        self.workers = min(
            plan.shards, workers or max(os.cpu_count() or 1, 1))
        self.queue_depth = max(1, queue_depth)
        self.max_requeues = max(0, max_requeues)
        #: ``{shard_index: kills}`` — the next *kills* assignments of
        #: that shard carry a die order (recovery tests only).
        self.fail_injection = dict(fail_injection or {})
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = multiprocessing.get_context()
        self._spec = {"kind": plan.kind, "plan": plan.to_dict()}
        self._prewarm()

    def _prewarm(self) -> None:
        """Warm the kernel and compiled-tier caches before forking.

        For the aot tier this also populates the persistent on-disk
        artifact cache (:mod:`repro.rv64.artifacts`): the forked
        workers' runners then bind the persisted thunk sources instead
        of re-tracing per process.
        """
        cached_kernels(self.plan.p)
        if self.plan.kind == "action" and self.engine in ("jit", "aot"):
            from repro.field.simulated import SimulatedFieldContext

            field = SimulatedFieldContext(
                self.plan.p, variant=self.plan.variant,
                engine=self.engine)
            one = field.mul(2, 3)
            field.sqr(one)
            field.add(one, one)
            field.sub(one, 1)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        *,
        checkpoint_path: str | None = None,
        shard_ids=None,
        completed: dict | None = None,
        stats: ShardRunStats | None = None,
    ) -> dict:
        """Execute the backlog; return ``{shard_index: record}``.

        *shard_ids* restricts the run to a subset (bounded smoke
        slices); *completed* seeds already-finished records (resume) —
        they are skipped, not re-run.  Every finished shard is
        appended to *checkpoint_path* (with a plan header when the
        file is new) and flushed before it counts as done.
        """
        todo = list(range(self.plan.shards)) if shard_ids is None \
            else sorted(set(shard_ids))
        for index in todo:
            if index < 0 or index >= self.plan.shards:
                raise ShardError(
                    f"shard {index} out of range for a "
                    f"{self.plan.shards}-shard plan")
        records: dict[int, dict] = dict(completed or {})
        todo = [index for index in todo if index not in records]
        stats = stats if stats is not None else ShardRunStats()
        self._active_stats = stats
        began = time.perf_counter()
        checkpoint = None
        self._workers: list[_Worker] = []
        try:
            if checkpoint_path is not None:
                fresh = not os.path.exists(checkpoint_path) \
                    or os.path.getsize(checkpoint_path) == 0
                checkpoint = open(
                    checkpoint_path, "a", encoding="utf-8")
                if fresh:
                    header = {
                        "type": "plan",
                        "schema": 1,
                        "kind": self.plan.kind,
                        "digest": self.plan.stream_digest,
                        "params": getattr(self.plan, "params_key",
                                          None),
                        "seed": self.plan.seed,
                        "variant": self.plan.variant,
                        "shards": self.plan.shards,
                        "n_ops": getattr(self.plan, "n_ops", None),
                    }
                    checkpoint.write(json.dumps(header) + "\n")
                    checkpoint.flush()
            if not todo:
                return records

            nworkers = min(self.workers, len(todo))
            stats.workers = max(stats.workers, nworkers)
            self._outbox = self._mp.Queue()
            # contiguous split: worker w gets todo[w*len/n : (w+1)*len/n],
            # preserving stream locality; stealing rebalances the tail
            self._backlogs = [
                deque(todo[worker * len(todo) // nworkers:
                           (worker + 1) * len(todo) // nworkers])
                for worker in range(nworkers)
            ]
            self._requeue_counts: dict[int, int] = {}
            self._restarts_left = nworkers * (self.max_requeues + 2)
            for worker_id in range(nworkers):
                self._spawn(worker_id)

            pending = len(todo)
            while pending:
                self._assign_all()
                try:
                    message = self._outbox.get(timeout=0.1)
                except Empty:
                    self._reap(stats)
                    continue
                tag = message[0]
                if tag == "ready":
                    self._workers[message[1]].ready = True
                elif tag == "done":
                    _tag, worker_id, record = message
                    index = record["shard"]
                    worker = self._workers[worker_id]
                    if index in worker.inflight:
                        worker.inflight.remove(index)
                    if index in records:
                        continue  # duplicate after a requeue race
                    records[index] = record
                    pending -= 1
                    stats.shards_completed += 1
                    telemetry.record_shard_completed(
                        worker_id,
                        int(record.get("cycles", 0)),
                        int(record.get("instructions", 0)))
                    if checkpoint is not None:
                        checkpoint.write(json.dumps(record) + "\n")
                        checkpoint.flush()
                        telemetry.record_shard_checkpoint()
                else:  # ("error", id, code, message)
                    _tag, worker_id, code, text = message
                    self._fail_worker(
                        worker_id, stats,
                        reason=f"worker {worker_id} reported "
                               f"[{code}]: {text}")
            return records
        finally:
            stats.exec_wall_s += time.perf_counter() - began
            if checkpoint is not None:
                checkpoint.close()
            self._shutdown()

    # -- scheduling internals ------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        inbox = self._mp.Queue(self.queue_depth + 1)
        process = self._mp.Process(
            target=worker_main,
            args=(worker_id, self._spec, self.engine, inbox,
                  self._outbox),
            daemon=True,
        )
        process.start()
        if worker_id < len(self._workers):
            self._workers[worker_id] = _Worker(process, inbox)
        else:
            self._workers.append(_Worker(process, inbox))

    def _assign_all(self) -> None:
        for worker_id, worker in enumerate(self._workers):
            if not worker.ready or not worker.process.is_alive():
                continue
            while len(worker.inflight) < self.queue_depth:
                index = self._take_work(worker_id)
                if index is None:
                    break
                die = False
                kills = self.fail_injection.get(index, 0)
                if kills > 0:
                    self.fail_injection[index] = kills - 1
                    die = True
                worker.inflight.append(index)
                worker.inbox.put(("shard", index, die))

    def _take_work(self, worker_id: int) -> int | None:
        """Own backlog first; then steal from the longest peer."""
        own = self._backlogs[worker_id]
        if own:
            return own.popleft()
        victim = max(
            (backlog for backlog in self._backlogs if backlog),
            key=len, default=None)
        if victim is None:
            return None
        telemetry.record_shard_steal(worker_id)
        self._stats_steal()
        return victim.pop()

    def _stats_steal(self) -> None:
        self._active_stats.steals += 1

    def _reap(self, stats: ShardRunStats) -> None:
        for worker_id, worker in enumerate(self._workers):
            if worker.process is not None \
                    and not worker.process.is_alive():
                code = worker.process.exitcode
                self._fail_worker(
                    worker_id, stats,
                    reason=f"worker {worker_id} died "
                           f"(exit code {code})")

    def _fail_worker(self, worker_id: int, stats: ShardRunStats,
                     *, reason: str) -> None:
        worker = self._workers[worker_id]
        stats.worker_failures += 1
        telemetry.record_shard_worker_failure(worker_id)
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        orphans = list(worker.inflight)
        worker.inflight = []
        for index in orphans:
            count = self._requeue_counts.get(index, 0) + 1
            self._requeue_counts[index] = count
            if count > self.max_requeues:
                raise ShardExhaustedError(
                    f"shard {index} was re-queued {count} times "
                    f"(limit {self.max_requeues}) after worker "
                    f"failures; last failure: {reason}")
            stats.requeues += 1
            telemetry.record_shard_requeue(index)
            shortest = min(self._backlogs, key=len)
            shortest.appendleft(index)
        if self._restarts_left <= 0:
            raise ShardExhaustedError(
                f"worker restart budget exhausted after "
                f"{stats.worker_failures} failures; last failure: "
                f"{reason}")
        self._restarts_left -= 1
        stats.worker_restarts += 1
        self._spawn(worker_id)

    def _shutdown(self) -> None:
        for worker in getattr(self, "_workers", []):
            try:
                worker.inbox.put_nowait(("stop",))
            except Exception:  # noqa: BLE001 - full queue, dying proc
                pass
        for worker in getattr(self, "_workers", []):
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
